//! # MPN — Meeting Point Notification via Independent Safe Regions
//!
//! This is the facade crate of a reproduction of
//! *"Efficient Notification of Meeting Points for Moving Groups via Independent Safe Regions"*
//! (Li, Thomsen, Yiu, Mamoulis; ICDE 2013 / TKDE 2015).
//!
//! A group of moving users wants continuous notification of the optimal meeting point among a
//! set of points of interest (POIs).  To avoid reporting every location update to the server,
//! the server hands each user an *independent safe region*: as long as every user stays inside
//! her own region, the meeting point provably does not change.
//!
//! The workspace is organised as follows and re-exported here for convenience:
//!
//! * [`geom`] — planar geometry primitives (points, rectangles, circles, tiles).
//! * [`index`] — an R-tree over the POI set and group nearest-neighbour (GNN) search.
//! * [`core`] — the safe-region algorithms (circular and tile-based, MAX and SUM objectives).
//! * [`mobility`] — trajectory and POI workload generators.
//! * [`proto`] — the wire-shaped client/server protocol (requests, responses, binary codec).
//! * [`sim`] — owned, message-driven monitoring sessions, the sharded engine, the
//!   `ServerCore`/`MonitoringServer` protocol front-end and message/packet accounting.
//! * [`net`] — the network front-ends over that core: a blocking per-connection loop and
//!   the readiness-driven multiplexed event loop (one thread, thousands of sockets).
//!
//! ## Quickstart
//!
//! ```
//! use mpn::core::{MpnServer, Method, Objective};
//! use mpn::geom::Point;
//! use mpn::index::RTree;
//!
//! // A few points of interest and three users.
//! let pois = vec![
//!     Point::new(2.0, 2.0),
//!     Point::new(8.0, 3.0),
//!     Point::new(5.0, 9.0),
//! ];
//! let tree = RTree::bulk_load(&pois);
//! let users = vec![Point::new(1.0, 1.0), Point::new(3.0, 2.0), Point::new(2.0, 4.0)];
//!
//! let server = MpnServer::new(&tree, Objective::Max, Method::circle());
//! let answer = server.compute(&users);
//! assert_eq!(answer.optimal_index, 0); // (2,2) is the MAX-optimal meeting point
//! assert!(answer.regions.iter().all(|r| !r.is_empty()));
//! ```

pub use mpn_core as core;
pub use mpn_geom as geom;
pub use mpn_index as index;
pub use mpn_mobility as mobility;
pub use mpn_net as net;
pub use mpn_proto as proto;
pub use mpn_sim as sim;
