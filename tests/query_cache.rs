//! Property tests for the fleet-wide shared query cache (`mpn_index::QueryCache`).
//!
//! Soundness contract, exercised through the engine against a *mutating* world:
//!
//! * a cached candidate list is **bit-identical** to a fresh query at the same world
//!   generation (results and `QueryStats` replayed verbatim),
//! * a cached entry is **never served across generations** — after
//!   `apply_world_change` bumps the generation, every query behaves exactly as if the
//!   cache were cold for the new world,
//! * therefore an engine with the cache attached produces the same tick summaries,
//!   invalidation summaries and per-group protocol counters as one without it, for any
//!   interleaving of ticks and world mutations.
//!
//! Uses the offline `proptest` shim: cases are deterministic (seeded from the test name).

use std::sync::Arc;

use mpn::core::{ComputeStats, Method, Objective};
use mpn::geom::Point;
use mpn::index::{Aggregate, QueryCache, RTree};
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{random_waypoint, WaypointConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{
    MonitorConfig, MonitoringEngine, MonitoringMetrics, TickExecutor, Traffic, TrajectoryFeed,
    WorldChange,
};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

const HORIZON: usize = 16;
const DOMAIN: f64 = 500.0;
/// Distinct trajectories; each is shared by two groups, so every tick re-asks identical
/// questions and the cache is guaranteed traffic at every generation.
const DISTINCT: usize = 3;

fn world() -> (Arc<RTree>, Vec<Vec<Trajectory>>) {
    let pois =
        clustered_pois(&PoiConfig { count: 150, domain: DOMAIN, ..PoiConfig::default() }, 92);
    let tree = Arc::new(RTree::bulk_load(&pois));
    let config = WaypointConfig { domain: DOMAIN, speed_limit: 6.0, timestamps: HORIZON };
    let distinct: Vec<Vec<Trajectory>> = (0..DISTINCT)
        .map(|g| (0..2).map(|i| random_waypoint(&config, (g * 53 + i) as u64)).collect())
        .collect();
    // Flash-crowd fleet: two groups per trajectory set.
    let fleet = (0..DISTINCT * 2).map(|g| distinct[g % DISTINCT].clone()).collect();
    (tree, fleet)
}

#[derive(Debug, PartialEq, Eq)]
struct Counters {
    timestamps: usize,
    updates: usize,
    traffic: Traffic,
    stats: ComputeStats,
}

fn counters_of(metrics: &MonitoringMetrics) -> Counters {
    Counters {
        timestamps: metrics.timestamps,
        updates: metrics.updates,
        traffic: metrics.traffic,
        stats: metrics.stats,
    }
}

/// An [`mpn::sim::InvalidationSummary`] minus its `generation` field: generation numbers
/// are allocated from a process-global counter, so two engines applying the same change
/// legitimately hold different stamps — everything else must match exactly.
fn invalidation_shape(
    summary: &mpn::sim::InvalidationSummary,
) -> (bool, Option<usize>, usize, usize, Vec<usize>, bool) {
    (
        summary.applied,
        summary.poi,
        summary.groups_checked,
        summary.invalidated,
        summary.affected.clone(),
        summary.compacted,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_queries_are_bit_identical_and_never_cross_generations(
        ops in prop_vec((0usize..4, 0usize..1_000), 6..28),
    ) {
        let (tree, fleet) = world();
        let config = MonitorConfig::new(Objective::Max, Method::circle())
            .with_max_timestamps(HORIZON);

        // Single shard on both sides: ticks are serial, so within a tick the first group of
        // each duplicated trajectory inserts and its twin *deterministically* hits.
        let mut cached = MonitoringEngine::with_executor(
            Arc::clone(&tree),
            1,
            TickExecutor::work_stealing(),
        )
        .with_query_cache(QueryCache::new());
        let mut plain =
            MonitoringEngine::with_executor(Arc::clone(&tree), 1, TickExecutor::ScopedThreads);
        for group in &fleet {
            cached.register(TrajectoryFeed::from_group(group), config);
            plain.register(TrajectoryFeed::from_group(group), config);
        }

        // Fixed probe group for the view-level bit-identity check below.
        let probe: Vec<Point> = fleet[0].iter().map(|t| t.at(0)).collect();
        let mut inserted: Vec<usize> = Vec::new();

        for (kind, value) in ops {
            match kind {
                // Ticks are twice as likely as either mutation, so most interleavings
                // actually exercise hits between generation bumps.
                0 | 1 => {
                    if cached.is_finished() {
                        continue;
                    }
                    let a = cached.tick();
                    let b = plain.tick();
                    prop_assert_eq!(a, b, "a cached tick diverged from the uncached engine");
                }
                2 => {
                    // Insert a POI at a value-derived location; both engines see the same
                    // change and must invalidate the same groups.
                    let location = Point::new(
                        (value % 100) as f64 * (DOMAIN / 100.0),
                        (value / 100) as f64 * (DOMAIN / 10.0),
                    );
                    let a = cached.apply_world_change(WorldChange::PoiInsert { location });
                    let b = plain.apply_world_change(WorldChange::PoiInsert { location });
                    prop_assert_eq!(
                        invalidation_shape(&a),
                        invalidation_shape(&b),
                        "insert invalidation diverged under the cache"
                    );
                    if let Some(poi) = a.poi {
                        inserted.push(poi);
                    }
                }
                _ => {
                    // Delete a previously inserted POI — or attempt an unknown id, which
                    // both engines must reject identically.
                    let poi = if inserted.is_empty() {
                        usize::MAX - value
                    } else {
                        inserted.swap_remove(value % inserted.len())
                    };
                    let a = cached.apply_world_change(WorldChange::PoiDelete { poi });
                    let b = plain.apply_world_change(WorldChange::PoiDelete { poi });
                    prop_assert_eq!(
                        invalidation_shape(&a),
                        invalidation_shape(&b),
                        "delete invalidation diverged under the cache"
                    );
                }
            }

            // View-level bit-identity at the *current* generation: the cached view (warm or
            // cold — a stale cross-generation entry would surface here as a mismatch) must
            // equal the uncached view verbatim, results and stats alike.
            let cache = Arc::clone(cached.query_cache().expect("cache attached"));
            let fresh_view = cached.world().view();
            let cached_view = cached.world().view().with_cache(&cache);
            let fresh = fresh_view.top_k(&probe, Aggregate::Max, 4);
            prop_assert_eq!(
                cached_view.top_k(&probe, Aggregate::Max, 4),
                fresh.clone(),
                "first cached probe diverged from the fresh query"
            );
            // And a second time, now guaranteed warm: the replay must stay verbatim.
            prop_assert_eq!(
                cached_view.top_k(&probe, Aggregate::Max, 4),
                fresh,
                "warm cache replay diverged from the fresh query"
            );
        }

        for id in 0..fleet.len() {
            prop_assert_eq!(
                counters_of(cached.group_metrics(id)),
                counters_of(plain.group_metrics(id)),
                "group {} counters diverged under the cache", id
            );
        }
        // The duplicated trajectories guarantee deterministic hits on a serial shard: at
        // every generation each twin group replays its partner's insertions.
        let stats = cached.query_cache().expect("cache attached").stats();
        prop_assert!(stats.hits > 0, "duplicate groups must hit the shared cache");
        prop_assert!(stats.misses > 0, "generation bumps must miss and recompute");
        prop_assert_eq!(stats.lookups(), stats.hits + stats.misses);
    }
}
