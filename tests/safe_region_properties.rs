//! Property-based tests of the central safe-region invariant (Definition 3) across the whole
//! stack: for randomly generated POI sets, user groups and methods, no location instance drawn
//! from the computed safe regions may change the optimal meeting point.

use mpn::core::{Method, MpnServer, Objective, SafeRegion};
use mpn::geom::Point;
use mpn::index::RTree;
use proptest::prelude::*;

fn arb_point(domain: f64) -> impl Strategy<Value = Point> {
    (0.0..domain, 0.0..domain).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_pois(domain: f64) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(domain), 2..40)
}

fn arb_users(domain: f64) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(domain), 2..5)
}

/// Samples a location inside a safe region using two unit parameters.
fn sample_in_region(region: &SafeRegion, u: f64, v: f64) -> Point {
    match region {
        SafeRegion::Circle(c) => {
            let angle = u * std::f64::consts::TAU;
            let radius = c.radius * v.sqrt();
            Point::new(c.center.x + radius * angle.cos(), c.center.y + radius * angle.sin())
        }
        SafeRegion::Tiles(tiles) => {
            let squares = tiles.squares();
            let idx = ((u * squares.len() as f64) as usize).min(squares.len() - 1);
            let rect = squares[idx].to_rect();
            Point::new(rect.lo.x + rect.width() * v, rect.lo.y + rect.height() * (1.0 - u))
        }
    }
}

fn check_invariant(
    pois: &[Point],
    users: &[Point],
    objective: Objective,
    method: Method,
    samples: &[(f64, f64)],
) -> Result<(), TestCaseError> {
    let tree = RTree::bulk_load(pois);
    let server = MpnServer::new(&tree, objective, method);
    let answer = server.compute(users);
    prop_assert_eq!(answer.regions.len(), users.len());
    prop_assert!(answer.all_inside(users));

    for &(u, v) in samples {
        let instance: Vec<Point> =
            answer.regions.iter().map(|region| sample_in_region(region, u, v)).collect();
        for (region, l) in answer.regions.iter().zip(&instance) {
            prop_assert!(region.contains(*l), "sampled location escaped its region");
        }
        let agg = |p: Point| objective.aggregate().point_dist(p, &instance);
        let best = pois.iter().map(|p| agg(*p)).fold(f64::INFINITY, f64::min);
        prop_assert!(
            agg(answer.optimal_point) <= best + 1e-6,
            "optimum changed for a location instance inside the safe regions"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn circle_regions_uphold_definition_3(
        pois in arb_pois(1_000.0),
        users in arb_users(1_000.0),
        samples in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8),
    ) {
        for objective in [Objective::Max, Objective::Sum] {
            check_invariant(&pois, &users, objective, Method::circle(), &samples)?;
        }
    }

    #[test]
    fn tile_regions_uphold_definition_3(
        pois in arb_pois(1_000.0),
        users in arb_users(1_000.0),
        samples in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8),
    ) {
        for objective in [Objective::Max, Objective::Sum] {
            check_invariant(&pois, &users, objective, Method::tile(), &samples)?;
        }
    }

    #[test]
    fn directed_and_buffered_tiles_uphold_definition_3(
        pois in arb_pois(1_000.0),
        users in arb_users(1_000.0),
        samples in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 6),
    ) {
        check_invariant(
            &pois,
            &users,
            Objective::Max,
            Method::tile_directed(std::f64::consts::FRAC_PI_4),
            &samples,
        )?;
        check_invariant(
            &pois,
            &users,
            Objective::Max,
            Method::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 10),
            &samples,
        )?;
    }

    #[test]
    fn compression_round_trips_arbitrary_tile_regions(
        pois in arb_pois(1_000.0),
        users in arb_users(1_000.0),
    ) {
        let tree = RTree::bulk_load(&pois);
        let answer = MpnServer::new(&tree, Objective::Max, Method::tile()).compute(&users);
        for region in &answer.regions {
            if let SafeRegion::Tiles(tiles) = region {
                let encoded = mpn::core::CompressedTileRegion::encode(tiles).unwrap();
                let decoded = encoded.decode();
                prop_assert_eq!(decoded.cells(), tiles.cells());
                prop_assert!(encoded.value_count() <= 4 + tiles.len().div_ceil(2));
            }
        }
    }
}
