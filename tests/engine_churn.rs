//! Property tests for dynamic fleet membership: random interleavings of
//! `register` / `deregister` / `tick` over a 16-group fleet must leave every group's protocol
//! counters identical to that group replayed solo — churn bookkeeping (the directory
//! free-list, `swap_remove` slot fixups, least-loaded placement, retired-metrics records)
//! must never corrupt or cross-wire a session.
//!
//! Uses the offline `proptest` shim: cases are deterministic (seeded from the test name), so
//! a failing case index reproduces exactly.

use std::sync::Arc;

use mpn::core::{ComputeStats, Method, Objective};
use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{random_waypoint, WaypointConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{
    GroupId, GroupSession, MonitorConfig, MonitoringEngine, MonitoringMetrics, Traffic,
    TrajectoryFeed,
};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

/// Size of the candidate fleet each interleaving draws from.
const GROUPS: usize = 16;
/// Horizon of every session (registration + 11 monitored timestamps).
const HORIZON: usize = 12;

fn world() -> (Arc<RTree>, Vec<Vec<Trajectory>>) {
    let pois = clustered_pois(&PoiConfig { count: 150, domain: 500.0, ..PoiConfig::default() }, 71);
    let tree = Arc::new(RTree::bulk_load(&pois));
    let config = WaypointConfig { domain: 500.0, speed_limit: 7.0, timestamps: HORIZON };
    let fleet = (0..GROUPS)
        .map(|g| (0..2).map(|i| random_waypoint(&config, (g * 31 + i) as u64)).collect())
        .collect();
    (tree, fleet)
}

fn feed(group: &[Trajectory]) -> TrajectoryFeed {
    TrajectoryFeed::from_group(group)
}

fn config() -> MonitorConfig {
    MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(HORIZON)
}

/// The deterministic protocol counters of a run (wall-clock timings excluded).
#[derive(Debug, PartialEq, Eq)]
struct Counters {
    timestamps: usize,
    updates: usize,
    traffic: Traffic,
    stats: ComputeStats,
}

fn counters_of(metrics: &MonitoringMetrics) -> Counters {
    Counters {
        timestamps: metrics.timestamps,
        updates: metrics.updates,
        traffic: metrics.traffic,
        stats: metrics.stats,
    }
}

/// One registration epoch of a group: which group, its engine id, how many ticks it saw, and
/// the metrics the engine reported for it (taken at deregistration or at the end).
struct Epoch {
    gidx: usize,
    advances: usize,
    metrics: Option<MonitoringMetrics>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn churn_interleavings_match_solo_replays(
        ops in prop_vec((0usize..4, 0usize..GROUPS), 4..48),
    ) {
        let (tree, fleet) = world();
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 3);

        // Model state: which epoch (if any) each group is currently registered under, the
        // engine id it got, and the set of ids the model expects to be free.
        let mut active: Vec<Option<(GroupId, usize)>> = vec![None; GROUPS];
        let mut epochs: Vec<Epoch> = Vec::new();
        let mut freed: Vec<GroupId> = Vec::new();
        let mut next_fresh: GroupId = 0;

        for (kind, g) in ops {
            match kind {
                // Ticks are twice as likely as either membership op, so most interleavings
                // actually advance the fleet between joins and leaves.
                0 | 1 => {
                    engine.tick();
                    for slot in active.iter().flatten() {
                        epochs[slot.1].advances += 1;
                    }
                }
                2 => {
                    if active[g].is_none() {
                        let id = engine.register(feed(&fleet[g]), config());
                        // Pin the free-list: a freed id must be reused before a fresh one
                        // is allocated.
                        if let Some(pos) = freed.iter().position(|&f| f == id) {
                            freed.swap_remove(pos);
                        } else {
                            prop_assert_eq!(id, next_fresh, "fresh ids are dense");
                            next_fresh += 1;
                        }
                        active[g] = Some((id, epochs.len()));
                        epochs.push(Epoch { gidx: g, advances: 0, metrics: None });
                    }
                }
                _ => {
                    if let Some((id, epoch)) = active[g].take() {
                        let metrics = engine.deregister(id);
                        prop_assert!(metrics.is_some(), "active ids deregister exactly once");
                        epochs[epoch].metrics = metrics;
                        freed.push(id);
                    }
                }
            }
            prop_assert_eq!(
                engine.group_count(),
                active.iter().flatten().count(),
                "group_count tracks the active set"
            );
            prop_assert_eq!(engine.retired_count(), freed.len());
        }

        // Snapshot the groups that are still registered at the end of the interleaving.
        for slot in active.iter().flatten() {
            epochs[slot.1].metrics = Some(engine.group_metrics(slot.0).clone());
        }

        // Every epoch must match its group replayed solo for the same number of advances.
        for (i, epoch) in epochs.iter().enumerate() {
            let mut solo = GroupSession::replay(feed(&fleet[epoch.gidx]), config());
            for _ in 0..epoch.advances {
                let _ = solo.advance(&tree);
            }
            let engine_counters =
                counters_of(epoch.metrics.as_ref().expect("every epoch ends with metrics"));
            prop_assert_eq!(
                &engine_counters,
                &counters_of(solo.metrics()),
                "epoch {} (group {}, {} advances) diverged from its solo replay",
                i,
                epoch.gidx,
                epoch.advances
            );
        }
    }

    #[test]
    fn registration_always_lands_on_a_least_loaded_shard(
        ops in prop_vec((0usize..2, 0usize..GROUPS), 4..64),
    ) {
        // With uniform horizons and no ticking, every session weighs the same, so the
        // horizon-aware placement degenerates to the historical occupancy rule — this is
        // the least-loaded pin the weighted test below generalises.
        let (tree, fleet) = world();
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 5);
        let mut active: Vec<Option<GroupId>> = vec![None; GROUPS];

        for (kind, g) in ops {
            if kind == 0 {
                if active[g].is_none() {
                    let before: Vec<usize> =
                        engine.shard_loads().iter().map(|l| l.occupancy).collect();
                    let min = *before.iter().min().expect("at least one shard");
                    active[g] = Some(engine.register(feed(&fleet[g]), config()));
                    let after: Vec<usize> =
                        engine.shard_loads().iter().map(|l| l.occupancy).collect();
                    let grown: Vec<usize> = (0..before.len())
                        .filter(|&s| after[s] != before[s])
                        .collect();
                    prop_assert_eq!(grown.len(), 1, "a registration fills exactly one shard");
                    prop_assert_eq!(
                        before[grown[0]],
                        min,
                        "placement must pick a least-loaded shard (occupancies {:?})",
                        before
                    );
                }
            } else if let Some(id) = active[g].take() {
                prop_assert!(engine.deregister(id).is_some());
            }
        }
    }

    #[test]
    fn registration_always_lands_on_a_least_weighted_shard(
        ops in prop_vec((0usize..4, 0usize..GROUPS, 2usize..HORIZON), 4..48),
    ) {
        // Heterogeneous horizons, ticking interleaved with churn: placement must pick a
        // shard minimising the remaining-horizon *weight*, and the reported per-shard
        // weights must track the sessions' actual remaining epochs.
        let (tree, fleet) = world();
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 4);
        let mut active: Vec<Option<GroupId>> = vec![None; GROUPS];

        for (kind, g, horizon) in ops {
            match kind {
                0 | 1 => {
                    engine.tick();
                }
                2 => {
                    if active[g].is_none() {
                        let before: Vec<usize> =
                            engine.shard_loads().iter().map(|l| l.weight).collect();
                        let min = *before.iter().min().expect("at least one shard");
                        let config = MonitorConfig::new(Objective::Max, Method::circle())
                            .with_max_timestamps(horizon);
                        active[g] = Some(engine.register(feed(&fleet[g]), config));
                        let after: Vec<usize> =
                            engine.shard_loads().iter().map(|l| l.weight).collect();
                        let grown: Vec<usize> =
                            (0..before.len()).filter(|&s| after[s] != before[s]).collect();
                        prop_assert_eq!(grown.len(), 1, "a registration fills exactly one shard");
                        prop_assert_eq!(
                            before[grown[0]],
                            min,
                            "placement must pick a least-weighted shard (weights {:?})",
                            before
                        );
                        prop_assert_eq!(
                            after[grown[0]],
                            min + horizon,
                            "a fresh session weighs its whole horizon"
                        );
                    }
                }
                _ => {
                    if let Some(id) = active[g].take() {
                        prop_assert!(engine.deregister(id).is_some());
                    }
                }
            }
            let loads = engine.shard_loads();
            prop_assert!(
                loads.iter().all(|l| l.weight <= l.occupancy * HORIZON),
                "weights are bounded by occupancy x the longest horizon"
            );
            prop_assert!(
                loads.iter().filter(|l| l.live == 0).all(|l| l.weight == 0),
                "shards with no live session have no remaining work"
            );
        }
    }
}
