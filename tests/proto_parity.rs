//! Pins the `mpn-proto` wire accounting to the simulation's `Message` cost model.
//!
//! The paper's evaluation counts communication in §7.1 packets of 67 double-precision
//! values.  `mpn-sim` has always accounted for the Fig. 3 messages through `Message` /
//! `Traffic`; `mpn-proto` makes the same messages wire-real.  The two layers must charge
//! **identical** values and packets for every data-plane message, or the network front-end
//! would silently drift from every figure the simulation reproduces:
//!
//! * a single-user `Request::Report` ↔ `Message::location_report` / `Message::probe_reply`,
//! * a multi-user `Request::Report` ↔ its constituent per-user reports,
//! * `Response::ProbeRequest` ↔ `Message::probe`,
//! * `Response::SafeRegion` ↔ `Message::result_notification`, compressed and plain, for
//!   circle regions and for real tile regions produced by the server.

use mpn::core::{Method, MpnServer, Objective, SafeRegion};
use mpn::geom::{Circle, Point};
use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::proto::{AdminRequest, Request, Response};
use mpn::sim::Message;

fn report(positions: Vec<Point>) -> Request {
    Request::Report { group: 9, positions }
}

fn safe_region(region: SafeRegion) -> Response {
    Response::SafeRegion { group: 9, user: 0, meeting_point: Point::new(1.0, 2.0), region }
}

#[test]
fn single_user_reports_match_location_reports_and_probe_replies() {
    let wire = report(vec![Point::new(3.0, 4.0)]);
    for message in [Message::location_report(), Message::probe_reply()] {
        assert_eq!(wire.values(), message.values);
        assert_eq!(wire.packets(), message.packets());
    }
}

#[test]
fn batched_reports_cost_their_constituent_per_user_reports() {
    for users in 1..=40 {
        let wire = report((0..users).map(|i| Point::new(i as f64, 0.0)).collect());
        let per_user = Message::location_report();
        assert_eq!(wire.values(), users * per_user.values);
        assert_eq!(
            wire.packets(),
            users * per_user.packets(),
            "a {users}-user batch is {users} separate uplink transmissions"
        );
    }
}

#[test]
fn probe_requests_match_probe_messages() {
    let wire = Response::ProbeRequest { group: 9, user: 3 };
    let message = Message::probe();
    assert_eq!(wire.values(true), message.values);
    assert_eq!(wire.packets(true), message.packets());
}

#[test]
fn circle_safe_regions_match_result_notifications() {
    let region = SafeRegion::Circle(Circle::new(Point::new(5.0, 5.0), 2.0));
    for compress in [true, false] {
        let wire = safe_region(region.clone());
        let message = Message::result_notification(&region, compress);
        assert_eq!(wire.values(compress), message.values);
        assert_eq!(wire.packets(compress), message.packets());
    }
}

/// The control-plane additions of the mutable world stay inside the §7.1 packet model:
/// every admin message and the unsolicited world-update push each cost exactly one packet,
/// with the value counts pinned so the accounting can never drift silently.
#[test]
fn admin_and_world_update_costs_are_pinned() {
    let insert = Request::Admin(AdminRequest::PoiInsert { location: Point::new(1.0, 2.0) });
    assert_eq!(insert.values(), 2, "a POI insert ships one coordinate pair");
    assert_eq!(insert.packets(), 1);

    let delete = Request::Admin(AdminRequest::PoiDelete { poi: 42 });
    assert_eq!(delete.values(), 1, "a POI delete ships one id");
    assert_eq!(delete.packets(), 1);

    for compress in [true, false] {
        let update = Response::WorldUpdate { group: 9, generation: 7, revised: 3 };
        assert_eq!(update.values(compress), 2, "a push ships a generation and a region count");
        assert_eq!(update.packets(compress), 1, "the announcement always fits one packet");
    }
}

#[test]
fn real_tile_regions_match_result_notifications_compressed_and_plain() {
    // Regions straight out of the server, so the parity covers realistic tile counts (and
    // the compressed encoding path), not hand-built toys.
    let pois =
        clustered_pois(&PoiConfig { count: 2_000, domain: 3_000.0, ..PoiConfig::default() }, 31);
    let tree = RTree::bulk_load(&pois);
    let users = vec![Point::new(900.0, 900.0), Point::new(1_400.0, 1_100.0)];

    for objective in [Objective::Max, Objective::Sum] {
        let answer = MpnServer::new(&tree, objective, Method::tile()).compute(&users);
        assert!(!answer.regions.is_empty());
        for region in &answer.regions {
            for compress in [true, false] {
                let wire = safe_region(region.clone());
                let message = Message::result_notification(region, compress);
                assert_eq!(
                    wire.values(compress),
                    message.values,
                    "{objective:?}/compress={compress} value accounting diverged"
                );
                assert_eq!(wire.packets(compress), message.packets());
            }
        }
    }
}
