//! Regression tests for concrete inputs that once exposed bugs (found by the property tests),
//! and for behaviors whose documentation once disagreed with the code.

use std::sync::Arc;

use mpn::core::{Method, MpnServer, Objective, SafeRegion};
use mpn::geom::Point;
use mpn::index::RTree;
use mpn::mobility::waypoint::{random_waypoint, WaypointConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{EpochUpdate, MonitorConfig, MonitoringEngine, TrajectoryFeed};

/// `TickSummary::finished` was documented as a fleet-wide total but its relationship to
/// deregistration was implicit: a deregistered group silently vanished from the total, which
/// looked like a lost session.  The contract is now explicit — `finished` totals the
/// **currently registered** sessions past their horizon, deregistered groups move to
/// `retired` — and fleet metrics keep including the retired groups' counters.
#[test]
fn finished_total_excludes_deregistered_groups_which_move_to_retired() {
    let pois: Vec<Point> =
        (0..80).map(|i| Point::new(f64::from(i % 10) * 60.0, f64::from(i / 10) * 70.0)).collect();
    let tree = RTree::bulk_load(&pois);
    let traj = WaypointConfig { domain: 600.0, speed_limit: 6.0, timestamps: 40 };
    let fleet: Vec<Vec<Trajectory>> = (0..3)
        .map(|g| (0..2).map(|i| random_waypoint(&traj, (g * 7 + i) as u64)).collect())
        .collect();

    let horizons = [10usize, 10, 30];
    let mut engine = MonitoringEngine::new(tree, 2);
    let ids: Vec<_> = fleet
        .iter()
        .zip(horizons)
        .map(|(group, horizon)| {
            let config =
                MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(horizon);
            engine.register(TrajectoryFeed::from_group(group), config)
        })
        .collect();

    let mut summary = engine.tick();
    for _ in 1..12 {
        summary = engine.tick();
    }
    assert_eq!(summary.finished, 2, "after 12 ticks the two 10-timestamp groups are done");
    assert_eq!(summary.retired, 0);

    // Deregistering a finished group moves it from `finished` to `retired`.
    let departed = engine.deregister(ids[0]).expect("group 0 is registered");
    assert_eq!(departed.timestamps, 9, "10-timestamp horizon = registration + 9 timestamps");
    let summary = engine.tick();
    assert_eq!(summary.finished, 1, "only registered sessions count as finished");
    assert_eq!(summary.retired, 1, "the deregistered group is accounted explicitly");

    // Fleet accounting must not shrink when a group leaves.
    engine.run_to_completion();
    let fleet_metrics = engine.fleet_metrics();
    assert_eq!(fleet_metrics.group_size, 6, "all three 2-user groups stay in the fleet totals");
    let per_group_updates: usize = (0..3).map(|id| engine.group_metrics(id).updates).sum();
    assert_eq!(fleet_metrics.updates, per_group_updates);

    // And the consuming accessor still reports every group in id order.
    let all = engine.into_group_metrics();
    assert_eq!(all.len(), 3);
    assert_eq!(all[0].timestamps, 9, "the retired record survives into_group_metrics");
    assert_eq!(all[2].timestamps, 29);
}

/// `MonitoringEngine::horizon()` used to be `max().unwrap_or(0)` over per-session horizons
/// (each of which was `min()` over the group's trajectory lengths) — a streaming session
/// with no pre-known horizon had no honest representation and an empty fleet looked
/// "finished at 0".  The contract is now explicit: `horizon()` is `Some(max)`
/// only when every registered session is bounded, `None` as soon as any session is
/// open-horizon; open sessions never count into `TickSummary::finished` (they have nothing
/// to finish) and starve visibly (`TickSummary::starved`) instead of advancing on missing
/// data.
#[test]
fn open_horizon_streams_have_no_finish_line_and_never_count_as_finished() {
    let pois: Vec<Point> =
        (0..80).map(|i| Point::new(f64::from(i % 10) * 60.0, f64::from(i / 10) * 70.0)).collect();
    let tree = Arc::new(RTree::bulk_load(&pois));
    let traj = WaypointConfig { domain: 600.0, speed_limit: 6.0, timestamps: 40 };
    let group: Vec<Trajectory> = (0..2).map(|i| random_waypoint(&traj, 100 + i as u64)).collect();

    let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
    let bounded = engine.register(
        TrajectoryFeed::from_group(&group),
        MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(5),
    );
    assert_eq!(engine.horizon(), Some(5), "an all-bounded fleet reports its longest horizon");

    let open = engine.register_stream(2, MonitorConfig::new(Objective::Max, Method::circle()));
    assert_eq!(engine.horizon(), None, "one open session makes the fleet horizon open");
    assert_eq!(engine.group(open).horizon(), None);
    assert_eq!(engine.group(open).remaining_horizon(), None);

    // Drive the bounded replay to its end while feeding the stream only occasionally.
    for t in 0..8 {
        if t % 2 == 0 {
            let positions: Vec<Point> = group.iter().map(|traj| traj.at(t)).collect();
            engine.submit(EpochUpdate { group_id: open, positions }).unwrap();
        }
        let summary = engine.tick();
        assert_eq!(summary.starved, usize::from(t % 2 != 0), "unfed epochs starve visibly");
        assert_eq!(
            summary.finished,
            usize::from(engine.group(bounded).is_finished()),
            "only the bounded session can ever count as finished"
        );
    }
    assert!(engine.group(bounded).is_finished());
    assert!(!engine.group(open).is_finished(), "open sessions never finish on their own");
    assert!(!engine.is_finished());
    assert_eq!(engine.group_metrics(open).timestamps, 3, "4 fed epochs = registration + 3");

    // Deregistration is the only way out for an open session — and restores boundedness.
    engine.deregister(open).unwrap();
    assert_eq!(engine.horizon(), Some(5));
    assert!(engine.is_finished());
}

/// Three almost-collinear POIs with two users on opposite sides: found by proptest as a case
/// where an over-eager tile acceptance changed the optimum.
#[test]
fn proptest_shrink_three_pois_two_users() {
    let pois = vec![
        Point::new(349.4986285023622, 609.9421413229721),
        Point::new(515.9105723892488, 538.6541063647203),
        Point::new(632.605792614647, 589.7641942564205),
    ];
    let users = vec![
        Point::new(130.31996032774566, 964.2313484724282),
        Point::new(891.0914317358817, 330.375238791278),
    ];
    let tree = RTree::bulk_load(&pois);

    for objective in [Objective::Max, Objective::Sum] {
        let answer = MpnServer::new(&tree, objective, Method::tile()).compute(&users);
        eprintln!(
            "{objective:?}: optimal {} regions sizes {:?}",
            answer.optimal_index,
            answer
                .regions
                .iter()
                .map(|r| match r {
                    SafeRegion::Tiles(t) => t.len(),
                    SafeRegion::Circle(_) => 0,
                })
                .collect::<Vec<_>>()
        );
        // Exhaustively sample a fine grid of every region pair and assert the optimum holds.
        let regions: Vec<&SafeRegion> = answer.regions.iter().collect();
        let grids: Vec<Vec<Point>> = regions
            .iter()
            .map(|r| {
                let SafeRegion::Tiles(tiles) = r else { panic!("expected tiles") };
                let mut pts = Vec::new();
                for sq in tiles.squares() {
                    let rect = sq.to_rect();
                    for i in 0..=4 {
                        for j in 0..=4 {
                            pts.push(Point::new(
                                rect.lo.x + rect.width() * f64::from(i) / 4.0,
                                rect.lo.y + rect.height() * f64::from(j) / 4.0,
                            ));
                        }
                    }
                }
                pts
            })
            .collect();
        for l0 in &grids[0] {
            for l1 in &grids[1] {
                let instance = [*l0, *l1];
                let agg = |p: Point| objective.aggregate().point_dist(p, &instance);
                let best = pois.iter().map(|p| agg(*p)).fold(f64::INFINITY, f64::min);
                assert!(
                    agg(answer.optimal_point) <= best + 1e-6,
                    "{objective:?}: optimum changed at instance ({l0}, {l1}): held {} vs best {}",
                    agg(answer.optimal_point),
                    best
                );
            }
        }
    }
}
