//! Regression tests for concrete inputs that once exposed bugs (found by the property tests).

use mpn::core::{Method, MpnServer, Objective, SafeRegion};
use mpn::geom::Point;
use mpn::index::RTree;

/// Three almost-collinear POIs with two users on opposite sides: found by proptest as a case
/// where an over-eager tile acceptance changed the optimum.
#[test]
fn proptest_shrink_three_pois_two_users() {
    let pois = vec![
        Point::new(349.4986285023622, 609.9421413229721),
        Point::new(515.9105723892488, 538.6541063647203),
        Point::new(632.605792614647, 589.7641942564205),
    ];
    let users = vec![
        Point::new(130.31996032774566, 964.2313484724282),
        Point::new(891.0914317358817, 330.375238791278),
    ];
    let tree = RTree::bulk_load(&pois);

    for objective in [Objective::Max, Objective::Sum] {
        let answer = MpnServer::new(&tree, objective, Method::tile()).compute(&users);
        eprintln!(
            "{objective:?}: optimal {} regions sizes {:?}",
            answer.optimal_index,
            answer
                .regions
                .iter()
                .map(|r| match r {
                    SafeRegion::Tiles(t) => t.len(),
                    SafeRegion::Circle(_) => 0,
                })
                .collect::<Vec<_>>()
        );
        // Exhaustively sample a fine grid of every region pair and assert the optimum holds.
        let regions: Vec<&SafeRegion> = answer.regions.iter().collect();
        let grids: Vec<Vec<Point>> = regions
            .iter()
            .map(|r| {
                let SafeRegion::Tiles(tiles) = r else { panic!("expected tiles") };
                let mut pts = Vec::new();
                for sq in tiles.squares() {
                    let rect = sq.to_rect();
                    for i in 0..=4 {
                        for j in 0..=4 {
                            pts.push(Point::new(
                                rect.lo.x + rect.width() * f64::from(i) / 4.0,
                                rect.lo.y + rect.height() * f64::from(j) / 4.0,
                            ));
                        }
                    }
                }
                pts
            })
            .collect();
        for l0 in &grids[0] {
            for l1 in &grids[1] {
                let instance = [*l0, *l1];
                let agg = |p: Point| objective.aggregate().point_dist(p, &instance);
                let best = pois.iter().map(|p| agg(*p)).fold(f64::INFINITY, f64::min);
                assert!(
                    agg(answer.optimal_point) <= best + 1e-6,
                    "{objective:?}: optimum changed at instance ({l0}, {l1}): held {} vs best {}",
                    agg(answer.optimal_point),
                    best
                );
            }
        }
    }
}
