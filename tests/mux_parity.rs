//! Front-end parity: the blocking TCP path and the multiplexed event loop must produce
//! **byte-identical** downlinks for the same lock-step request trace.
//!
//! Both transports frame responses produced by the same transport-agnostic `ServerCore`
//! (applied in request order, ticked identically, enveloped with the same count prefix), so
//! any divergence — ordering, framing, extra or missing batches — shows up here as a raw
//! byte mismatch.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mpn::index::RTree;
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::net::{serve_blocking, MuxConfig, MuxServer};
use mpn::proto::{
    DecodeError, NotificationKind, Request, Response, WireConfig, WireMethod, WireObjective,
};
use mpn::sim::{ServerCore, TrajectoryFeed};

const EPOCHS: usize = 40;

fn test_core() -> ServerCore {
    let pois = clustered_pois(
        &PoiConfig { count: 800, domain: 3_000.0, clusters: 5, ..PoiConfig::default() },
        17,
    );
    ServerCore::new(Arc::new(RTree::bulk_load(&pois)), 3)
}

/// The identical uplink trace both paths replay: one group registering, streaming epochs in
/// lock-step, and deregistering.
fn trace() -> (WireConfig, TrajectoryFeed) {
    let config = WireConfig {
        objective: WireObjective::Max,
        method: WireMethod::TileDirectedBuffered { theta: std::f64::consts::FRAC_PI_4, buffer: 60 },
        compress_regions: true,
        persist_buffers: true,
        max_timestamps: None,
    };
    let taxi = TaxiConfig {
        domain: 3_000.0,
        speed_limit: 9.0,
        timestamps: EPOCHS,
        ..TaxiConfig::default()
    };
    let group: Vec<Trajectory> = (0..3).map(|i| taxi_trajectory(&taxi, 4_400 + i)).collect();
    (config, TrajectoryFeed::new(group))
}

/// A blocking lock-step client that keeps every raw downlink byte it ever read.
struct LockStep {
    stream: TcpStream,
    raw: Vec<u8>,
    pos: usize,
}

impl LockStep {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
        Self { stream, raw: Vec::new(), pos: 0 }
    }

    /// Reads exactly one count-prefixed batch, appending the raw bytes to the transcript.
    fn next_batch(&mut self) -> Vec<Response> {
        loop {
            if let Some((batch, consumed)) = parse_batch(&self.raw[self.pos..]) {
                self.pos += consumed;
                return batch;
            }
            let mut scratch = [0u8; 4096];
            let n = self.stream.read(&mut scratch).expect("downlink read");
            assert!(n > 0, "server closed mid-batch");
            self.raw.extend_from_slice(&scratch[..n]);
        }
    }

    fn send(&mut self, request: &Request) {
        self.stream.write_all(&request.encoded()).expect("uplink write");
    }
}

/// Parses one whole batch from the front of `bytes`, returning it and the bytes consumed.
fn parse_batch(bytes: &[u8]) -> Option<(Vec<Response>, usize)> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let mut at = 4;
    let mut batch = Vec::with_capacity(count);
    for _ in 0..count {
        match Response::decode(&bytes[at..]) {
            Ok((response, consumed)) => {
                batch.push(response);
                at += consumed;
            }
            Err(DecodeError::Incomplete) => return None,
            Err(e) => panic!("undecodable downlink: {e}"),
        }
    }
    Some((batch, at))
}

/// Replays the trace through an already-listening front-end, returning the raw downlink.
fn run_client(addr: std::net::SocketAddr) -> Vec<u8> {
    let (config, mut feed) = trace();
    let mut client = LockStep::connect(addr);

    client.send(&Request::Register { group_size: feed.group_size() as u32, config });
    let ack = client.next_batch();
    let id = ack
        .iter()
        .find_map(|r| match r {
            Response::Notification { group, kind: NotificationKind::Registered } => Some(*group),
            _ => None,
        })
        .expect("registration ack");

    let mut regions = 0usize;
    for _ in 0..EPOCHS {
        let positions = feed.next_epoch().expect("the recording covers every epoch");
        client.send(&Request::Report { group: id, positions });
        regions +=
            client.next_batch().iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count();
    }
    assert!(regions > 0, "the trace must exercise real safe-region traffic");

    client.send(&Request::Deregister { group: id });
    let farewell = client.next_batch();
    assert!(farewell
        .contains(&Response::Notification { group: id, kind: NotificationKind::Deregistered }));

    assert_eq!(client.pos, client.raw.len(), "no trailing unparsed downlink");
    client.raw
}

#[test]
fn blocking_and_multiplexed_downlinks_are_byte_identical() {
    // Path 1: the legacy blocking loop.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind blocking");
    let addr = listener.local_addr().expect("addr");
    let server = thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut core = test_core();
        serve_blocking(&mut stream, &mut core, 7).expect("serve");
        assert_eq!(core.engine().group_count(), 0, "EOF deregisters whatever is left");
    });
    let blocking_bytes = run_client(addr);
    server.join().expect("blocking server thread");

    // Path 2: the multiplexed event loop, same core construction.
    let mut mux =
        MuxServer::bind("127.0.0.1:0", test_core(), MuxConfig::default()).expect("bind mux");
    let addr = mux.local_addr().expect("addr");
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            mux.run(&stop, Duration::from_millis(1)).expect("event loop");
            mux
        })
    };
    let mux_bytes = run_client(addr);
    stop.store(true, Ordering::Relaxed);
    let mux = server.join().expect("mux server thread");
    assert_eq!(mux.core().engine().group_count(), 0);

    assert_eq!(
        blocking_bytes, mux_bytes,
        "the two TCP front-ends must frame identical bytes for the same trace"
    );
}
