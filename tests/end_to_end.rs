//! Cross-crate integration tests: the full pipeline from workload generation through the
//! monitoring protocol, checking the paper's qualitative claims end to end.

use mpn::core::{Method, MpnServer, Objective};
use mpn::index::RTree;
use mpn::mobility::network::{NetworkConfig, RoadNetwork};
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{run_monitoring, MonitorConfig};

fn poi_tree(count: usize, domain: f64, seed: u64) -> RTree {
    let pois = clustered_pois(&PoiConfig { count, domain, ..PoiConfig::default() }, seed);
    RTree::bulk_load(&pois)
}

fn taxi_group(m: usize, domain: f64, timestamps: usize, seed: u64) -> Vec<Trajectory> {
    let config = TaxiConfig { domain, speed_limit: 8.0, timestamps, ..TaxiConfig::default() };
    (0..m).map(|i| taxi_trajectory(&config, seed + i as u64)).collect()
}

#[test]
fn monitoring_never_misses_a_meeting_point_change() {
    // Replays a workload under every method and re-derives the optimum by brute force at every
    // timestamp where the users are still inside their safe regions: the stored answer must
    // still be optimal (within floating-point tolerance).  This is the end-to-end version of
    // Definition 3.
    let tree = poi_tree(400, 2_000.0, 5);
    let pois: Vec<_> = tree.iter().map(|e| e.location).collect();
    let group = taxi_group(3, 2_000.0, 250, 40);

    for objective in [Objective::Max, Objective::Sum] {
        for method in [Method::circle(), Method::tile(), Method::tile_directed(0.8)] {
            let server = MpnServer::new(&tree, objective, method);
            let mut locations: Vec<_> = group.iter().map(|t| t.at(0)).collect();
            let mut answer = server.compute(&locations);
            for t in 1..250 {
                locations.clear();
                locations.extend(group.iter().map(|traj| traj.at(t)));
                if answer.all_inside(&locations) {
                    // No update is triggered: the old answer must still be optimal.
                    let agg = |p| objective.aggregate().point_dist(p, &locations);
                    let best = pois.iter().map(|p| agg(*p)).fold(f64::INFINITY, f64::min);
                    let held = agg(answer.optimal_point);
                    assert!(
                        held <= best + 1e-6,
                        "{objective:?}/{}: stale answer at t={t} ({held} > {best})",
                        method.name()
                    );
                } else {
                    answer = server.compute(&locations);
                }
            }
        }
    }
}

#[test]
fn tile_methods_send_fewer_updates_than_circle_on_both_workload_kinds() {
    let tree = poi_tree(1_000, 4_000.0, 9);

    // GeoLife-like workload.
    let taxi = taxi_group(3, 4_000.0, 400, 60);
    // Oldenburg-like workload.
    let net = RoadNetwork::generate(
        &NetworkConfig { domain: 4_000.0, timestamps: 400, ..NetworkConfig::default() },
        3,
    );
    let network_group: Vec<Trajectory> =
        (0..3).map(|i| net.trajectory(800 + i, i as usize)).collect();

    for group in [&taxi, &network_group] {
        let circle =
            run_monitoring(&tree, group, &MonitorConfig::new(Objective::Max, Method::circle()));
        let tile =
            run_monitoring(&tree, group, &MonitorConfig::new(Objective::Max, Method::tile()));
        let tile_d = run_monitoring(
            &tree,
            group,
            &MonitorConfig::new(Objective::Max, Method::tile_directed(std::f64::consts::FRAC_PI_4)),
        );
        assert!(
            tile.updates <= circle.updates,
            "Tile should not need more updates than Circle ({} vs {})",
            tile.updates,
            circle.updates
        );
        assert!(
            tile_d.updates <= circle.updates,
            "Tile-D should not need more updates than Circle ({} vs {})",
            tile_d.updates,
            circle.updates
        );
        // Communication cost follows update frequency thanks to compression.
        assert!(tile.packets() <= circle.packets() * 3);
    }
}

#[test]
fn buffering_cuts_index_work_but_barely_changes_update_frequency() {
    let tree = poi_tree(1_500, 4_000.0, 21);
    let group = taxi_group(3, 4_000.0, 300, 11);
    let theta = std::f64::consts::FRAC_PI_4;

    let plain = run_monitoring(
        &tree,
        &group,
        &MonitorConfig::new(Objective::Max, Method::tile_directed(theta)),
    );
    let buffered = run_monitoring(
        &tree,
        &group,
        &MonitorConfig::new(Objective::Max, Method::tile_directed_buffered(theta, 100)),
    );

    let plain_q = plain.stats.rtree_queries as f64 / plain.updates as f64;
    let buffered_q = buffered.stats.rtree_queries as f64 / buffered.updates as f64;
    assert!(
        buffered_q < plain_q / 2.0,
        "buffering should cut R-tree queries per update at least in half ({buffered_q:.1} vs {plain_q:.1})"
    );
    // With b = 100 the update frequency should stay in the same ballpark (the paper reports it
    // converging to the unbuffered frequency).
    assert!(
        buffered.updates as f64 <= plain.updates as f64 * 2.0 + 5.0,
        "buffered update count exploded: {} vs {}",
        buffered.updates,
        plain.updates
    );
}

#[test]
fn sum_and_max_objectives_can_disagree_and_are_both_served() {
    let tree = poi_tree(600, 3_000.0, 33);
    // A skewed group: three users clustered, one far away, which is where MAX and SUM optima
    // typically diverge.
    let users = vec![
        mpn::geom::Point::new(500.0, 500.0),
        mpn::geom::Point::new(620.0, 540.0),
        mpn::geom::Point::new(480.0, 650.0),
        mpn::geom::Point::new(2_700.0, 2_500.0),
    ];
    let max_answer = MpnServer::new(&tree, Objective::Max, Method::tile()).compute(&users);
    let sum_answer = MpnServer::new(&tree, Objective::Sum, Method::tile()).compute(&users);

    // Verify each optimum against brute force on its own objective.
    let pois: Vec<_> = tree.iter().map(|e| e.location).collect();
    let best_max = pois
        .iter()
        .map(|p| Objective::Max.aggregate().point_dist(*p, &users))
        .fold(f64::INFINITY, f64::min);
    let best_sum = pois
        .iter()
        .map(|p| Objective::Sum.aggregate().point_dist(*p, &users))
        .fold(f64::INFINITY, f64::min);
    assert!((max_answer.optimal_dist - best_max).abs() < 1e-6);
    assert!((sum_answer.optimal_dist - best_sum).abs() < 1e-6);
}

#[test]
fn compressed_and_uncompressed_runs_agree_on_updates() {
    let tree = poi_tree(500, 2_000.0, 71);
    let group = taxi_group(3, 2_000.0, 200, 19);
    let base = MonitorConfig::new(Objective::Max, Method::tile());
    let compressed = run_monitoring(&tree, &group, &base);
    let plain = run_monitoring(&tree, &group, &MonitorConfig { compress_regions: false, ..base });
    // Compression only affects packet counts, never the protocol behaviour.
    assert_eq!(compressed.updates, plain.updates);
    assert!(compressed.packets() <= plain.packets());
}
