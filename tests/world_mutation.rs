//! The mutable world, end to end: the generation-stamped [`WorldView`] overlay must answer
//! queries exactly like a tree rebuilt from scratch, the invalidation predicates must be
//! *sound* (a safe region that survives a world change still upholds Definition 3 against
//! the **new** world), the engine must force-recompute exactly the affected groups, and a
//! breaking POI delete must reach the affected client as an unsolicited push over the
//! multiplexed TCP front-end while unaffected tenants hear nothing.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mpn::core::{Method, MpnServer, Objective, SafeRegion};
use mpn::geom::Point;
use mpn::index::{IndexView, RTree, WorldView};
use mpn::net::{MuxConfig, MuxServer};
use mpn::proto::{
    AdminRequest, DecodeError, NotificationKind, Request, Response, WireConfig, WireMethod,
    WireObjective,
};
use mpn::sim::{
    EpochUpdate, GroupSession, MonitorConfig, MonitoringEngine, ServerCore, WorldChange,
};
use proptest::prelude::*;

fn arb_point(domain: f64) -> impl Strategy<Value = Point> {
    (0.0..domain, 0.0..domain).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_pois(domain: f64) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(domain), 10..40)
}

fn arb_users(domain: f64) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(domain), 2..5)
}

/// One randomized mutation: `true` inserts at the point, `false` deletes the live POI
/// selected by the unit fraction.
type Op = (bool, Point, f64);

fn arb_ops(domain: f64) -> impl Strategy<Value = Vec<Op>> {
    let coin = (0.0f64..1.0).prop_map(|f| f < 0.5);
    proptest::collection::vec((coin, arb_point(domain), 0.0f64..1.0), 1..8)
}

/// Applies `op` to both the overlay world and the plain id → location mirror model.
fn apply_op(world: &mut WorldView, model: &mut HashMap<usize, Point>, op: &Op) {
    let &(insert, location, pick) = op;
    if insert {
        let id = world.insert(location);
        assert!(model.insert(id, location).is_none(), "insert ids are never reused");
    } else {
        let mut ids: Vec<usize> = model.keys().copied().collect();
        ids.sort_unstable();
        let id = ids[((pick * ids.len() as f64) as usize).min(ids.len() - 1)];
        let removed = world.delete(id).expect("live POIs are deletable");
        assert_eq!(Some(removed), model.remove(&id), "the overlay forgot where the POI was");
    }
}

/// Aggregate distances of every live model POI to `users`, best first.
fn brute_dists(model: &HashMap<usize, Point>, users: &[Point], objective: Objective) -> Vec<f64> {
    let mut dists: Vec<f64> =
        model.values().map(|p| objective.aggregate().point_dist(*p, users)).collect();
    dists.sort_by(f64::total_cmp);
    dists
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    // The overlay answers every query the engines issue exactly like a tree rebuilt from
    // the surviving POIs, and an id-preserving compaction changes neither results nor the
    // generation stamp.
    #[test]
    fn overlay_queries_match_a_rebuilt_tree(
        pois in arb_pois(1_000.0),
        ops in arb_ops(1_000.0),
        users in arb_users(1_000.0),
    ) {
        let base = RTree::bulk_load(&pois);
        let mut model: HashMap<usize, Point> =
            base.iter().map(|e| (e.id, e.location)).collect();
        let mut world = WorldView::new(base);
        let generation = world.generation();

        for op in &ops {
            apply_op(&mut world, &mut model, op);
        }
        prop_assert!(world.generation() > generation, "every mutation bumps the generation");
        prop_assert_eq!(world.view().len(), model.len());

        let live: Vec<Point> = {
            let mut ids: Vec<usize> = model.keys().copied().collect();
            ids.sort_unstable();
            ids.iter().map(|id| model[id]).collect()
        };
        let rebuilt = RTree::bulk_load(&live);
        for objective in [Objective::Max, Objective::Sum] {
            // Top-k parity, against both brute force and the rebuilt tree.
            let k = 3.min(model.len());
            let (top, _) = world.view().top_k(&users, objective.aggregate(), k);
            let brute = brute_dists(&model, &users, objective);
            prop_assert_eq!(top.len(), k);
            for (n, want) in top.iter().zip(&brute) {
                prop_assert!((n.dist - want).abs() <= 1e-9, "overlay top-k diverged");
            }
            let (rebuilt_top, _) = IndexView::from(&rebuilt).top_k(&users, objective.aggregate(), k);
            for (a, b) in top.iter().zip(&rebuilt_top) {
                prop_assert!((a.dist - b.dist).abs() <= 1e-9, "rebuilt tree disagrees");
            }

            // Whole-answer parity: same optimum cost, valid regions, for both methods.
            for method in [Method::circle(), Method::tile()] {
                let over = MpnServer::new(&world, objective, method).compute(&users);
                let flat = MpnServer::new(&rebuilt, objective, method).compute(&users);
                let cost = |p: Point| objective.aggregate().point_dist(p, &users);
                prop_assert!((cost(over.optimal_point) - cost(flat.optimal_point)).abs() <= 1e-9);
                prop_assert!(over.all_inside(&users));
            }
        }

        // Compaction folds the overlay into a fresh base without renumbering or restamping.
        let (before, _) = world.view().top_k(&users, Objective::Max.aggregate(), model.len());
        let stamp = world.generation();
        world.compact();
        prop_assert_eq!(world.generation(), stamp, "compaction must not restamp the content");
        prop_assert_eq!(world.overlay_len(), 0);
        let (after, _) = world.view().top_k(&users, Objective::Max.aggregate(), model.len());
        prop_assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            prop_assert_eq!(a.entry.id, b.entry.id, "compaction must preserve POI ids");
            prop_assert!((a.dist - b.dist).abs() <= 1e-12);
        }
    }
}

/// Samples a location inside a safe region using two unit parameters.
fn sample_in_region(region: &SafeRegion, u: f64, v: f64) -> Point {
    match region {
        SafeRegion::Circle(c) => {
            let angle = u * std::f64::consts::TAU;
            let radius = c.radius * v.sqrt();
            Point::new(c.center.x + radius * angle.cos(), c.center.y + radius * angle.sin())
        }
        SafeRegion::Tiles(tiles) => {
            let squares = tiles.squares();
            let idx = ((u * squares.len() as f64) as usize).min(squares.len() - 1);
            let rect = squares[idx].to_rect();
            Point::new(rect.lo.x + rect.width() * v, rect.lo.y + rect.height() * (1.0 - u))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    // Soundness of the invalidation predicates: when the engine decides a world change does
    // *not* break a group, the group's stale safe regions must still uphold Definition 3
    // against the new world — no location instance drawn from them may beat the stale
    // optimum.  When it does break the group, the recomputation must leave a fresh answer
    // stamped with the new generation.
    #[test]
    fn surviving_regions_uphold_definition_3_against_the_new_world(
        pois in arb_pois(1_000.0),
        users in arb_users(1_000.0),
        insert in (0.0f64..1.0).prop_map(|f| f < 0.5),
        location in arb_point(1_000.0),
        pick in 0.0f64..1.0,
        samples in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8),
    ) {
        for objective in [Objective::Max, Objective::Sum] {
            let tree = Arc::new(RTree::bulk_load(&pois));
            let mut engine = MonitoringEngine::new(Arc::clone(&tree), 1);
            let session = GroupSession::streaming(
                users.len(),
                MonitorConfig::new(objective, Method::circle()),
            );
            let id = engine.register_session(session);
            engine.submit(EpochUpdate { group_id: id, positions: users.clone() }).expect("submit");
            engine.tick();
            let stale = engine.group(id).session_state().last_answer().expect("answered").clone();
            let stale_generation = engine.group(id).session_state().answer_generation();

            let change = if insert {
                WorldChange::PoiInsert { location }
            } else {
                WorldChange::PoiDelete {
                    poi: ((pick * pois.len() as f64) as usize).min(pois.len() - 1),
                }
            };
            let summary = engine.apply_world_change(change);
            prop_assert!(summary.applied);
            prop_assert_eq!(summary.groups_checked, 1);

            if summary.invalidated == 0 {
                // The stale regions survived: the stale optimum must still be optimal in
                // the new world for every location instance inside them.
                prop_assert!(summary.affected.is_empty());
                prop_assert_eq!(
                    engine.group(id).session_state().answer_generation(),
                    stale_generation,
                    "an unaffected group must not recompute"
                );
                let live: Vec<Point> =
                    engine.world().view().iter().map(|e| e.location).collect();
                for &(u, v) in &samples {
                    let instance: Vec<Point> = stale
                        .regions
                        .iter()
                        .map(|region| sample_in_region(region, u, v))
                        .collect();
                    let agg = |p: Point| objective.aggregate().point_dist(p, &instance);
                    let best = live.iter().map(|p| agg(*p)).fold(f64::INFINITY, f64::min);
                    prop_assert!(
                        agg(stale.optimal_point) <= best + 1e-6,
                        "a stale region outlived a change that broke it"
                    );
                }
            } else {
                prop_assert_eq!(summary.invalidated, 1);
                prop_assert_eq!(summary.affected.as_slice(), &[id]);
                let state = engine.group(id).session_state();
                prop_assert_eq!(
                    state.answer_generation(),
                    Some(summary.generation),
                    "a recomputed answer is stamped with the new generation"
                );
                if let WorldChange::PoiDelete { poi } = change {
                    prop_assert!(
                        state.last_answer().expect("recomputed").optimal_index != poi,
                        "the recomputation still serves the deleted POI"
                    );
                }
            }
        }
    }
}

/// Precision of the fan-out: a targeted delete recomputes exactly the groups it broke, and
/// a delete of a POI nobody's answer or §5.4 buffer references recomputes nothing.
#[test]
fn world_changes_recompute_exactly_the_affected_groups() {
    let pois: Vec<Point> = (0..200)
        .map(|i| {
            let (cx, cy) = if i % 2 == 0 { (100.0, 100.0) } else { (900.0, 900.0) };
            Point::new(cx + (i / 2 % 10) as f64, cy + (i / 20) as f64)
        })
        .collect();
    let tree = Arc::new(RTree::bulk_load(&pois));
    let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
    let config = MonitorConfig::new(Objective::Max, Method::circle());
    let near = engine.register_session(GroupSession::streaming(2, config));
    let far = engine.register_session(GroupSession::streaming(2, config));
    for (id, corner) in [(near, 100.0), (far, 900.0)] {
        let positions = vec![Point::new(corner - 5.0, corner), Point::new(corner + 5.0, corner)];
        engine.submit(EpochUpdate { group_id: id, positions }).expect("submit");
    }
    engine.tick();
    let near_optimal =
        engine.group(near).session_state().last_answer().expect("answered").optimal_index;
    let far_generation = engine.group(far).session_state().answer_generation();

    // Deleting the near group's optimum breaks exactly that group.
    let summary = engine.apply_world_change(WorldChange::PoiDelete { poi: near_optimal });
    assert!(summary.applied);
    assert_eq!(summary.poi, Some(near_optimal));
    assert_eq!(summary.groups_checked, 2);
    assert_eq!(summary.invalidated, 1);
    assert_eq!(summary.affected, vec![near]);
    assert_eq!(summary.generation, engine.world().generation());
    assert_eq!(
        engine.group(far).session_state().answer_generation(),
        far_generation,
        "the far group recomputed although the delete could not touch it"
    );

    // A POI inserted where nobody looks is deletable without recomputing anything.
    let summary =
        engine.apply_world_change(WorldChange::PoiInsert { location: Point::new(500.0, 10.0) });
    assert!(summary.applied);
    assert_eq!(summary.invalidated, 0, "a far insert cannot undercut either optimum");
    let orphan = summary.poi.expect("inserted");
    let summary = engine.apply_world_change(WorldChange::PoiDelete { poi: orphan });
    assert!(summary.applied);
    assert_eq!(summary.invalidated, 0, "nobody referenced the orphan POI");

    // Unknown (and double-deleted) POIs are rejected without touching any session.
    let generation = engine.world().generation();
    for poi in [usize::MAX, near_optimal] {
        let summary = engine.apply_world_change(WorldChange::PoiDelete { poi });
        assert!(!summary.applied);
        assert_eq!(summary.groups_checked, 0);
        assert_eq!(engine.world().generation(), generation, "rejected changes leave no trace");
    }
}

/// A blocking lock-step client that reads one count-prefixed batch at a time.
struct LockStep {
    stream: TcpStream,
    raw: Vec<u8>,
    pos: usize,
}

impl LockStep {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
        Self { stream, raw: Vec::new(), pos: 0 }
    }

    fn next_batch(&mut self) -> Vec<Response> {
        loop {
            if let Some((batch, consumed)) = parse_batch(&self.raw[self.pos..]) {
                self.pos += consumed;
                return batch;
            }
            let mut scratch = [0u8; 4096];
            let n = self.stream.read(&mut scratch).expect("downlink read");
            assert!(n > 0, "server closed mid-batch");
            self.raw.extend_from_slice(&scratch[..n]);
        }
    }

    fn send(&mut self, request: &Request) {
        self.stream.write_all(&request.encoded()).expect("uplink write");
    }
}

fn parse_batch(bytes: &[u8]) -> Option<(Vec<Response>, usize)> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let mut at = 4;
    let mut batch = Vec::with_capacity(count);
    for _ in 0..count {
        match Response::decode(&bytes[at..]) {
            Ok((response, consumed)) => {
                batch.push(response);
                at += consumed;
            }
            Err(DecodeError::Incomplete) => return None,
            Err(e) => panic!("undecodable downlink: {e}"),
        }
    }
    Some((batch, at))
}

/// The acceptance path of the mutable world: an operator console deletes a POI over TCP and
/// the affected tenant — **idle**, nothing in flight — receives an unsolicited multiplexed
/// push announcing the new world generation followed by its revised safe regions.
#[test]
fn poi_delete_reaches_the_affected_client_as_an_unsolicited_mux_push() {
    // Two POI clusters; the monitored group sits in the near one, so its answer and §5.4
    // buffer can only reference near POIs.
    let pois: Vec<Point> = (0..40)
        .map(|i| {
            let (cx, cy) = if i < 20 { (100.0, 100.0) } else { (900.0, 900.0) };
            Point::new(cx + (i % 5) as f64 * 3.0, cy + (i / 5 % 4) as f64 * 3.0)
        })
        .collect();
    let users = vec![Point::new(95.0, 103.0), Point::new(110.0, 100.0)];
    let tree = Arc::new(RTree::bulk_load(&pois));
    let expected = MpnServer::new(tree.as_ref(), Objective::Max, Method::circle())
        .compute(&users)
        .optimal_index;

    let core = ServerCore::new(Arc::clone(&tree), 2);
    let mut mux = MuxServer::bind("127.0.0.1:0", core, MuxConfig::default()).expect("bind mux");
    let addr = mux.local_addr().expect("addr");
    // Connections are numbered from 1 in accept order: the operator console connects first,
    // so its grant can be issued before the event loop even starts.
    mux.core_mut().grant_admin(1);
    let stop = Arc::new(AtomicBool::new(false));
    let server = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            mux.run(&stop, Duration::from_millis(1)).expect("event loop");
            mux
        })
    };

    // The console completes a round-trip before the tenant connects, pinning accept order
    // (and proving the grant landed: an ungranted console would read AdminDenied here).
    let mut console = LockStep::connect(addr);
    console.send(&Request::Admin(AdminRequest::PoiDelete { poi: u64::MAX }));
    assert_eq!(
        console.next_batch(),
        vec![Response::Notification { group: u64::MAX, kind: NotificationKind::UnknownPoi }]
    );

    let mut tenant = LockStep::connect(addr);
    let config = WireConfig {
        objective: WireObjective::Max,
        method: WireMethod::Circle,
        ..WireConfig::default()
    };
    tenant.send(&Request::Register { group_size: users.len() as u32, config });
    let ack = tenant.next_batch();
    let group = ack
        .iter()
        .find_map(|r| match r {
            Response::Notification { group, kind: NotificationKind::Registered } => Some(*group),
            _ => None,
        })
        .expect("registration ack");
    tenant.send(&Request::Report { group, positions: users.clone() });
    let first = tenant.next_batch();
    assert_eq!(
        first.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count(),
        users.len(),
        "the first report assigns every member a region"
    );

    // The tenant now goes idle; the console deletes the group's optimal POI.
    console.send(&Request::Admin(AdminRequest::PoiDelete { poi: expected as u64 }));
    assert_eq!(
        console.next_batch(),
        vec![Response::Notification {
            group: expected as u64,
            kind: NotificationKind::AdminApplied
        }]
    );

    // The unsolicited push: the generation announcement first, then the revised regions.
    let push = tenant.next_batch();
    match push.first() {
        Some(&Response::WorldUpdate { group: g, generation, revised }) => {
            assert_eq!(g, group);
            assert_eq!(revised, users.len() as u32);
            assert!(generation > 0, "the push names the generation that broke the answer");
        }
        other => panic!("expected a WorldUpdate heading the push, got {other:?}"),
    }
    assert_eq!(
        push.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count(),
        users.len(),
        "the push carries the full set of revised regions"
    );

    tenant.send(&Request::Deregister { group });
    let farewell = tenant.next_batch();
    assert!(
        farewell.contains(&Response::Notification { group, kind: NotificationKind::Deregistered })
    );

    stop.store(true, Ordering::Relaxed);
    let mux = server.join().expect("mux server thread");
    assert_eq!(mux.core().engine().world().len(), pois.len() - 1, "the world shrank by one");
    assert_eq!(mux.core().engine().group_count(), 0);
}
