//! Parity and concurrency tests for the stateful monitoring engine.
//!
//! The refactor to `GroupSession` / `MonitoringEngine` must not change what the paper
//! measures: this file replays the *legacy* stateless monitoring loop (the exact algorithm of
//! the original `run_monitoring`, re-implemented here as the baseline) and asserts that
//!
//! * the compatibility wrapper — now an owned [`mpn::sim::TrajectoryFeed`] replay session —
//!   reproduces its updates, packets and work counters exactly,
//! * a parallel multi-group tick equals the serial single-group replays,
//! * the message-driven streaming path (`register_stream` + `EpochUpdate` submission)
//!   produces the same counters as the feed replay, epoch for epoch,
//! * the persistent worker-pool executor produces the same fleet `TickSummary` sequence as
//!   the legacy scoped-thread executor (pinning the executor swap),
//! * the hot/cold split engine — dense per-shard `HotEntry` arrays, slot-stable session
//!   slabs, active-set skip paths — matches a serial walk-everything oracle tick for tick
//!   across churn, starvation, batch sizes and world mutation (pinning the memory-layout
//!   overhaul),
//! * persistent §5.4 buffers strictly reduce R-tree queries per update for `Tile-D-b`.

use std::sync::Arc;

use mpn::core::{Method, MpnServer, Objective};
use mpn::geom::{HeadingPredictor, Point};
use mpn::index::WorldView;
use mpn::index::{QueryCache, RTree};
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{random_waypoint, taxi_trajectory, TaxiConfig, WaypointConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{
    run_monitoring, EpochUpdate, GroupSession, Message, MonitorConfig, MonitoringEngine,
    MonitoringMetrics, StepOutcome, TickExecutor, TickSummary, Traffic, TrajectoryFeed,
    WorldChange,
};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

fn world(groups: usize, seed: u64) -> (Arc<RTree>, Vec<Vec<Trajectory>>) {
    let pois =
        clustered_pois(&PoiConfig { count: 900, domain: 2_000.0, ..PoiConfig::default() }, seed);
    let tree = Arc::new(RTree::bulk_load(&pois));
    let taxi =
        TaxiConfig { domain: 2_000.0, speed_limit: 8.0, timestamps: 220, ..TaxiConfig::default() };
    let fleet = (0..groups)
        .map(|g| (0..3).map(|i| taxi_trajectory(&taxi, seed + (g * 17 + i) as u64)).collect())
        .collect();
    (tree, fleet)
}

/// The protocol counters a monitoring run produces (everything except wall-clock times).
#[derive(Debug, PartialEq, Eq)]
struct Counters {
    timestamps: usize,
    updates: usize,
    traffic: Traffic,
    stats: mpn::core::ComputeStats,
}

/// The original stateless monitoring loop, verbatim from the pre-refactor implementation:
/// per-update heading prediction, violation detection, step 1–3 message accounting, with the
/// server recomputing from scratch every time.  This is the parity baseline.
fn legacy_run_monitoring(tree: &RTree, group: &[Trajectory], config: &MonitorConfig) -> Counters {
    let horizon = group.iter().map(Trajectory::len).min().unwrap_or(0);
    let horizon = config.max_timestamps.map_or(horizon, |cap| horizon.min(cap));
    let server = MpnServer::new(tree, config.objective, config.method);

    let mut timestamps = 0usize;
    let mut updates = 0usize;
    let mut stats = mpn::core::ComputeStats::default();
    let mut traffic = Traffic::default();
    let mut predictors: Vec<HeadingPredictor> =
        group.iter().map(|_| HeadingPredictor::new(config.heading_smoothing)).collect();

    let mut locations: Vec<Point> = group.iter().map(|t| t.at(0)).collect();
    for (predictor, location) in predictors.iter_mut().zip(&locations) {
        predictor.observe(*location);
    }
    for _ in group {
        traffic.record(Message::location_report());
    }
    let headings: Vec<Option<f64>> = predictors.iter().map(HeadingPredictor::predicted).collect();
    let mut answer = server.compute_with_headings(&locations, Some(&headings));
    updates += 1;
    stats.absorb(&answer.stats);
    for region in &answer.regions {
        traffic.record(Message::result_notification(region, config.compress_regions));
    }

    for t in 1..horizon {
        timestamps += 1;
        locations.clear();
        locations.extend(group.iter().map(|traj| traj.at(t)));
        for (predictor, location) in predictors.iter_mut().zip(&locations) {
            predictor.observe(*location);
        }

        let violators = answer.violators(&locations);
        if violators.is_empty() {
            continue;
        }
        for _ in &violators {
            traffic.record(Message::location_report());
        }
        let others = group.len() - violators.len();
        for _ in 0..others {
            traffic.record(Message::probe());
            traffic.record(Message::probe_reply());
        }
        let headings: Vec<Option<f64>> =
            predictors.iter().map(HeadingPredictor::predicted).collect();
        answer = server.compute_with_headings(&locations, Some(&headings));
        updates += 1;
        stats.absorb(&answer.stats);
        for region in &answer.regions {
            traffic.record(Message::result_notification(region, config.compress_regions));
        }
    }

    Counters { timestamps, updates, traffic, stats }
}

fn counters_of(metrics: &mpn::sim::MonitoringMetrics) -> Counters {
    Counters {
        timestamps: metrics.timestamps,
        updates: metrics.updates,
        traffic: metrics.traffic,
        stats: metrics.stats,
    }
}

#[test]
fn wrapper_reproduces_the_legacy_loop_exactly_for_every_method() {
    let (tree, fleet) = world(1, 3);
    let group = &fleet[0];
    let theta = std::f64::consts::FRAC_PI_4;
    for objective in [Objective::Max, Objective::Sum] {
        for method in [
            Method::circle(),
            Method::tile(),
            Method::tile_directed(theta),
            Method::tile_directed_buffered(theta, 60),
        ] {
            let config = MonitorConfig::new(objective, method).with_max_timestamps(150);
            let legacy = legacy_run_monitoring(&tree, group, &config);
            let session = run_monitoring(&tree, group, &config);
            assert_eq!(
                legacy,
                counters_of(&session),
                "{objective:?}/{} diverged from the legacy loop",
                method.name()
            );
        }
    }
}

#[test]
fn engine_path_matches_the_wrapper_for_a_single_group() {
    let (tree, fleet) = world(1, 9);
    let config =
        MonitorConfig::new(Objective::Max, Method::tile_directed(0.8)).with_max_timestamps(120);
    let wrapper = run_monitoring(&tree, &fleet[0], &config);

    let mut engine = MonitoringEngine::new(Arc::clone(&tree), 4);
    let id = engine.register(TrajectoryFeed::from_group(&fleet[0]), config);
    engine.run_to_completion();
    assert_eq!(counters_of(&wrapper), counters_of(engine.group_metrics(id)));
}

#[test]
fn streaming_submission_matches_the_feed_replay_epoch_for_epoch() {
    // The message-driven path — owned `EpochUpdate` batches submitted into a streaming
    // session — must be protocol-equivalent to the `TrajectoryFeed` replay of the same
    // recording: identical counters after every tick, for the legacy baseline too.
    let (tree, fleet) = world(1, 77);
    let group = &fleet[0];
    let config = MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(120);
    let legacy = legacy_run_monitoring(&tree, group, &config);

    let mut replay = MonitoringEngine::new(Arc::clone(&tree), 2);
    let replay_id = replay.register(TrajectoryFeed::from_group(group), config);
    let mut stream = MonitoringEngine::new(Arc::clone(&tree), 2);
    let stream_id = stream.register_stream(group.len(), config);

    let mut source = TrajectoryFeed::from_group(group);
    for _ in 0..120 {
        let positions = source.next_epoch().expect("the recording covers the horizon");
        stream.submit(EpochUpdate { group_id: stream_id, positions }).expect("live group");
        let fed = replay.tick();
        let submitted = stream.tick();
        assert_eq!(fed, submitted, "feed and stream must produce identical tick summaries");
        assert_eq!(
            counters_of(replay.group_metrics(replay_id)),
            counters_of(stream.group_metrics(stream_id)),
        );
    }
    assert!(replay.is_finished() && stream.is_finished());
    assert_eq!(legacy, counters_of(stream.group_metrics(stream_id)));
}

#[test]
fn parallel_eight_group_tick_matches_eight_serial_runs() {
    let (tree, fleet) = world(8, 21);
    let config = MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(100);

    let serial: Vec<Counters> =
        fleet.iter().map(|g| counters_of(&run_monitoring(&tree, g, &config))).collect();

    let mut engine = MonitoringEngine::new(Arc::clone(&tree), 8);
    assert_eq!(engine.shard_count(), 8);
    let ids: Vec<_> =
        fleet.iter().map(|g| engine.register(TrajectoryFeed::from_group(g), config)).collect();
    assert!(engine.group_count() >= 8, "the fleet must exercise at least 8 concurrent groups");

    // Drive the fleet tick by tick (each tick advances all 8 groups on 8 shard threads).
    let mut ticks = 0;
    while !engine.is_finished() {
        let summary = engine.tick();
        assert!(summary.advanced <= 8);
        ticks += 1;
    }
    assert_eq!(ticks, 100);

    for (id, expected) in ids.iter().zip(&serial) {
        assert_eq!(expected, &counters_of(engine.group_metrics(*id)), "group {id} diverged");
    }

    // Fleet aggregation is the sum of the parts.
    let fleet_metrics = engine.fleet_metrics();
    assert_eq!(fleet_metrics.updates, serial.iter().map(|c| c.updates).sum::<usize>());
    assert_eq!(
        fleet_metrics.traffic.packets,
        serial.iter().map(|c| c.traffic.packets).sum::<usize>()
    );
}

#[test]
fn pool_executor_matches_the_scoped_thread_executor_tick_for_tick() {
    let (tree, fleet) = world(8, 57);
    let config = MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(100);

    let mut pool = MonitoringEngine::with_executor(Arc::clone(&tree), 4, TickExecutor::WorkerPool);
    let mut scoped =
        MonitoringEngine::with_executor(Arc::clone(&tree), 4, TickExecutor::ScopedThreads);
    assert_eq!(pool.executor(), TickExecutor::WorkerPool);
    assert_eq!(scoped.executor(), TickExecutor::ScopedThreads);
    for group in &fleet {
        pool.register(TrajectoryFeed::from_group(group), config);
        scoped.register(TrajectoryFeed::from_group(group), config);
    }

    let mut pool_summaries: Vec<TickSummary> = Vec::new();
    while !pool.is_finished() {
        pool_summaries.push(pool.tick());
    }
    let mut scoped_summaries: Vec<TickSummary> = Vec::new();
    while !scoped.is_finished() {
        scoped_summaries.push(scoped.tick());
    }

    assert_eq!(pool_summaries.len(), 100);
    assert_eq!(
        pool_summaries, scoped_summaries,
        "the executor swap must not change any fleet tick summary"
    );
    for id in 0..fleet.len() {
        assert_eq!(
            counters_of(pool.group_metrics(id)),
            counters_of(scoped.group_metrics(id)),
            "group {id} diverged between executors"
        );
    }
}

/// Small-world fleet for the steal-path property test: `sizes[g]` users per group, all with
/// the same short bounded horizon, over a modest clustered POI set.
fn skewed_fleet(sizes: &[usize], horizon: usize) -> (Arc<RTree>, Vec<Vec<Trajectory>>) {
    let pois = clustered_pois(&PoiConfig { count: 150, domain: 500.0, ..PoiConfig::default() }, 71);
    let tree = Arc::new(RTree::bulk_load(&pois));
    let config = WaypointConfig { domain: 500.0, speed_limit: 7.0, timestamps: horizon };
    let fleet = sizes
        .iter()
        .enumerate()
        .map(|(g, &size)| {
            (0..size).map(|i| random_waypoint(&config, (g * 31 + i) as u64)).collect()
        })
        .collect();
    (tree, fleet)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The work-stealing executor — session batches, stolen across workers, through the
    // shared query cache — must produce the *exact* tick-summary sequence and per-group
    // counters of the scoped-thread executor, for any shard count, any (skewed) batch size
    // and any skewed mix of group sizes.  Stealing and caching may only change the
    // schedule, never a counter.
    #[test]
    fn stealing_ticks_match_scoped_threads_for_any_skew(
        shards in 1usize..=8,
        batch in 1usize..=8,
        sizes in prop_vec(1usize..=4, 1..11),
    ) {
        const HORIZON: usize = 12;
        let (tree, fleet) = skewed_fleet(&sizes, HORIZON);
        let config = MonitorConfig::new(Objective::Max, Method::circle())
            .with_max_timestamps(HORIZON);

        let mut stealing = MonitoringEngine::with_executor(
            Arc::clone(&tree),
            shards,
            TickExecutor::WorkStealing { batch },
        )
        .with_query_cache(QueryCache::new());
        let mut scoped =
            MonitoringEngine::with_executor(Arc::clone(&tree), shards, TickExecutor::ScopedThreads);
        for group in &fleet {
            stealing.register(TrajectoryFeed::from_group(group), config);
            scoped.register(TrajectoryFeed::from_group(group), config);
        }

        let mut guard = 0usize;
        while !stealing.is_finished() {
            let a = stealing.tick();
            let b = scoped.tick();
            prop_assert_eq!(a, b, "tick {} diverged under stealing", guard);
            guard += 1;
            prop_assert!(guard <= HORIZON, "bounded fleets finish within their horizon");
        }
        prop_assert!(scoped.is_finished());
        for id in 0..fleet.len() {
            prop_assert_eq!(
                counters_of(stealing.group_metrics(id)),
                counters_of(scoped.group_metrics(id)),
                "group {} diverged between executors", id
            );
        }
        // The cache saw every query of the run (each tick's lookups are hits + misses).
        let totals = stealing.exec_totals();
        prop_assert!(totals.cache_misses > 0, "a fresh cache cannot serve only hits");
        prop_assert!(totals.batches > 0, "every live tick dispatches at least one batch");
    }
}

/// A serial "walk everything" oracle: the pre-split engine semantics, re-implemented as the
/// plainest possible loop — one [`WorldView`], one `Vec<Option<GroupSession>>` indexed by
/// group id, every session asked (and advanced when live) on every tick.  No hot mirrors,
/// no vacancy/finished/starved skip paths, no executor, no query cache.  The hot/cold
/// split and active-set scheduling may only change which memory a tick touches, never a
/// counter; this oracle is what "never a counter" is measured against.
struct WalkEverythingOracle {
    world: WorldView,
    sessions: Vec<Option<GroupSession>>,
    retired: Vec<MonitoringMetrics>,
    clock: usize,
}

impl WalkEverythingOracle {
    fn new(tree: &Arc<RTree>) -> Self {
        Self {
            world: WorldView::new(Arc::clone(tree)),
            sessions: Vec::new(),
            retired: Vec::new(),
            clock: 0,
        }
    }

    /// Mirrors an engine registration: the engine assigned `id`, the oracle stores the twin
    /// session under the same index (reusing the slot of a deregistered id exactly like the
    /// engine's free-list does).
    fn register(&mut self, id: usize, session: GroupSession) {
        if id == self.sessions.len() {
            self.sessions.push(Some(session));
        } else {
            let slot = &mut self.sessions[id];
            assert!(slot.is_none(), "the engine only reuses deregistered ids");
            *slot = Some(session);
        }
    }

    fn deregister(&mut self, id: usize) -> bool {
        match self.sessions[id].take() {
            Some(session) => {
                self.retired.push(session.retire());
                true
            }
            None => false,
        }
    }

    fn tick(&mut self) -> TickSummary {
        let mut tally = TickSummary::default();
        let view = self.world.view();
        for slot in &mut self.sessions {
            let Some(session) = slot else { continue };
            if session.is_finished() {
                tally.finished += 1;
                continue;
            }
            match session.advance(view) {
                StepOutcome::Finished => {}
                StepOutcome::Starved => tally.starved += 1,
                StepOutcome::Registered => {
                    tally.advanced += 1;
                    tally.registered += 1;
                }
                StepOutcome::Quiet => tally.advanced += 1,
                StepOutcome::Updated { violators } => {
                    tally.advanced += 1;
                    tally.updated += 1;
                    tally.violators += violators;
                }
            }
            if session.is_finished() {
                tally.finished += 1;
            }
        }
        tally.retired = self.sessions.iter().filter(|s| s.is_none()).count();
        tally.tick = self.clock;
        self.clock += 1;
        tally
    }

    /// Mirrors `apply_world_change`: `(applied, groups checked, affected ids)`.
    fn apply(&mut self, change: WorldChange) -> (bool, usize, Vec<usize>) {
        let applied = match change {
            WorldChange::PoiInsert { location } => {
                self.world.insert(location);
                true
            }
            WorldChange::PoiDelete { poi } => self.world.delete(poi).is_some(),
        };
        if !applied {
            return (false, 0, Vec::new());
        }
        let view = self.world.view();
        let mut checked = 0usize;
        let mut affected = Vec::new();
        for (id, slot) in self.sessions.iter_mut().enumerate() {
            let Some(session) = slot else { continue };
            checked += 1;
            if session.world_change_invalidates(&change) && session.force_recompute(view) {
                affected.push(id);
            }
        }
        self.world.maybe_compact();
        (true, checked, affected)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The memory-locality overhaul — hot/cold session split, slot-stable slabs with
    // free-list reuse, active-set skip paths (vacant / finished / starved), per-worker
    // query scratch — must be invisible in every protocol counter.  A scripted fleet mixing
    // bounded replays (which finish mid-run), open-horizon streams (which starve whenever
    // the script withholds their epoch), churn (deregister + id reuse) and POI world
    // mutation runs side by side with the serial walk-everything oracle; every tick
    // summary, every invalidation result and every per-group counter must be identical.
    #[test]
    fn hot_cold_engine_matches_the_walk_everything_oracle(
        shards in 1usize..=4,
        batch in 1usize..=8,
        replay_sizes in prop_vec(1usize..=3, 1..6),
        stream_sizes in prop_vec(1usize..=3, 0..3),
        script in prop_vec(0usize..256, 10..17),
    ) {
        const HORIZON: usize = 8;
        let (tree, fleet) = skewed_fleet(&replay_sizes, 24);
        let replay_config = MonitorConfig::new(Objective::Max, Method::circle())
            .with_max_timestamps(HORIZON);
        let stream_config = MonitorConfig::new(Objective::Max, Method::circle());

        let mut engine = MonitoringEngine::with_executor(
            Arc::clone(&tree),
            shards,
            TickExecutor::WorkStealing { batch },
        )
        .with_query_cache(QueryCache::new());
        let mut oracle = WalkEverythingOracle::new(&tree);

        for group in &fleet {
            let id = engine.register(TrajectoryFeed::from_group(group), replay_config);
            oracle.register(id, GroupSession::replay(TrajectoryFeed::from_group(group), replay_config));
        }
        let mut stream_ids = Vec::new();
        for &size in &stream_sizes {
            let id = engine.register_stream(size, stream_config);
            oracle.register(id, GroupSession::streaming(size, stream_config));
            stream_ids.push((id, size));
        }

        for (t, &op) in script.iter().enumerate() {
            // Feed roughly half the streams' ticks: the withheld ticks starve the streams,
            // exercising the active-set starve-skip against the oracle's full advance.
            for (i, &(id, size)) in stream_ids.iter().enumerate() {
                if (op >> (i % 8)) & 1 == 0 {
                    let positions: Vec<Point> = (0..size)
                        .map(|u| Point::new(
                            40.0 + ((t * 13 + u * 7 + i * 3) % 400) as f64,
                            60.0 + ((t * 29 + u * 11) % 400) as f64,
                        ))
                        .collect();
                    engine
                        .submit(EpochUpdate { group_id: id, positions: positions.clone() })
                        .expect("streams are never deregistered by the script");
                    oracle.sessions[id]
                        .as_mut()
                        .expect("oracle mirrors the engine's membership")
                        .submit(positions);
                }
            }

            // Churn: deregister one replay group, then maybe re-register over the freed id.
            if op % 7 == 0 {
                let id = (op / 7) % oracle.sessions.len();
                if !stream_ids.iter().any(|&(sid, _)| sid == id) {
                    let engine_removed = engine.deregister(id).is_some();
                    let oracle_removed = oracle.deregister(id);
                    prop_assert_eq!(engine_removed, oracle_removed, "deregister({}) diverged", id);
                }
            }
            if op % 11 == 0 {
                let group = &fleet[op % fleet.len()];
                let config = MonitorConfig::new(Objective::Max, Method::circle())
                    .with_max_timestamps(4);
                let id = engine.register(TrajectoryFeed::from_group(group), config);
                oracle.register(id, GroupSession::replay(TrajectoryFeed::from_group(group), config));
            }

            // World mutation: inserts and (sometimes unknown) deletes.
            if op % 5 == 0 {
                let change = if op % 2 == 0 {
                    WorldChange::PoiInsert {
                        location: Point::new(
                            ((op * 17 + t * 41) % 500) as f64,
                            ((op * 23 + t * 37) % 500) as f64,
                        ),
                    }
                } else {
                    WorldChange::PoiDelete { poi: (op * 13 + t) % 170 }
                };
                let summary = engine.apply_world_change(change);
                let (applied, checked, affected) = oracle.apply(change);
                prop_assert_eq!(summary.applied, applied, "tick {}: applied diverged", t);
                prop_assert_eq!(summary.groups_checked, checked, "tick {}: checked diverged", t);
                prop_assert_eq!(summary.invalidated, affected.len());
                let mut engine_affected = summary.affected.clone();
                engine_affected.sort_unstable();
                prop_assert_eq!(engine_affected, affected, "tick {}: affected sets diverged", t);
            }

            let a = engine.tick();
            let b = oracle.tick();
            prop_assert_eq!(a, b, "tick {} diverged from the walk-everything oracle", t);
        }

        // Every surviving group's counters, and the fleet-wide totals (live + retired +
        // reclaimed), must match the oracle's.
        for (id, slot) in oracle.sessions.iter().enumerate() {
            if let Some(session) = slot {
                prop_assert_eq!(
                    counters_of(engine.group_metrics(id)),
                    counters_of(session.metrics()),
                    "group {} diverged from its oracle twin", id
                );
            }
        }
        let fleet_metrics = engine.fleet_metrics();
        let oracle_all: Vec<&MonitoringMetrics> = oracle
            .sessions
            .iter()
            .filter_map(|s| s.as_ref().map(GroupSession::metrics))
            .chain(oracle.retired.iter())
            .collect();
        prop_assert_eq!(
            fleet_metrics.updates,
            oracle_all.iter().map(|m| m.updates).sum::<usize>()
        );
        prop_assert_eq!(
            fleet_metrics.timestamps,
            oracle_all.iter().map(|m| m.timestamps).sum::<usize>()
        );
        prop_assert_eq!(
            fleet_metrics.traffic.packets,
            oracle_all.iter().map(|m| m.traffic.packets).sum::<usize>()
        );
        prop_assert_eq!(
            fleet_metrics.group_size,
            oracle_all.iter().map(|m| m.group_size).sum::<usize>()
        );
    }
}

#[test]
fn persistent_buffers_cut_tile_d_b_index_work_versus_the_stateless_path() {
    let (tree, fleet) = world(1, 33);
    let base = MonitorConfig::new(Objective::Max, Method::tile_directed_buffered(0.8, 100))
        .with_max_timestamps(200);

    let stateless = run_monitoring(&tree, &fleet[0], &base);
    let stateful = run_monitoring(&tree, &fleet[0], &base.with_persistent_buffers(true));

    let stateless_q = stateless.stats.rtree_queries as f64 / stateless.updates as f64;
    let stateful_q = stateful.stats.rtree_queries as f64 / stateful.updates as f64;
    assert!(
        stateful_q < stateless_q,
        "persistent buffers must reduce R-tree queries per update ({stateful_q:.2} vs {stateless_q:.2})"
    );
    // The stateless buffered path issues exactly two queries per update (seed + buffer).
    assert!((stateless_q - 2.0).abs() < 1e-9);
}
