//! Parity and concurrency tests for the stateful monitoring engine.
//!
//! The refactor to `GroupSession` / `MonitoringEngine` must not change what the paper
//! measures: this file replays the *legacy* stateless monitoring loop (the exact algorithm of
//! the original `run_monitoring`, re-implemented here as the baseline) and asserts that
//!
//! * the compatibility wrapper — now an owned [`mpn::sim::TrajectoryFeed`] replay session —
//!   reproduces its updates, packets and work counters exactly,
//! * a parallel multi-group tick equals the serial single-group replays,
//! * the message-driven streaming path (`register_stream` + `EpochUpdate` submission)
//!   produces the same counters as the feed replay, epoch for epoch,
//! * the persistent worker-pool executor produces the same fleet `TickSummary` sequence as
//!   the legacy scoped-thread executor (pinning the executor swap),
//! * persistent §5.4 buffers strictly reduce R-tree queries per update for `Tile-D-b`.

use std::sync::Arc;

use mpn::core::{Method, MpnServer, Objective};
use mpn::geom::{HeadingPredictor, Point};
use mpn::index::{QueryCache, RTree};
use mpn::mobility::poi::{clustered_pois, PoiConfig};
use mpn::mobility::waypoint::{random_waypoint, taxi_trajectory, TaxiConfig, WaypointConfig};
use mpn::mobility::Trajectory;
use mpn::sim::{
    run_monitoring, EpochUpdate, Message, MonitorConfig, MonitoringEngine, TickExecutor,
    TickSummary, Traffic, TrajectoryFeed,
};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

fn world(groups: usize, seed: u64) -> (Arc<RTree>, Vec<Vec<Trajectory>>) {
    let pois =
        clustered_pois(&PoiConfig { count: 900, domain: 2_000.0, ..PoiConfig::default() }, seed);
    let tree = Arc::new(RTree::bulk_load(&pois));
    let taxi =
        TaxiConfig { domain: 2_000.0, speed_limit: 8.0, timestamps: 220, ..TaxiConfig::default() };
    let fleet = (0..groups)
        .map(|g| (0..3).map(|i| taxi_trajectory(&taxi, seed + (g * 17 + i) as u64)).collect())
        .collect();
    (tree, fleet)
}

/// The protocol counters a monitoring run produces (everything except wall-clock times).
#[derive(Debug, PartialEq, Eq)]
struct Counters {
    timestamps: usize,
    updates: usize,
    traffic: Traffic,
    stats: mpn::core::ComputeStats,
}

/// The original stateless monitoring loop, verbatim from the pre-refactor implementation:
/// per-update heading prediction, violation detection, step 1–3 message accounting, with the
/// server recomputing from scratch every time.  This is the parity baseline.
fn legacy_run_monitoring(tree: &RTree, group: &[Trajectory], config: &MonitorConfig) -> Counters {
    let horizon = group.iter().map(Trajectory::len).min().unwrap_or(0);
    let horizon = config.max_timestamps.map_or(horizon, |cap| horizon.min(cap));
    let server = MpnServer::new(tree, config.objective, config.method);

    let mut timestamps = 0usize;
    let mut updates = 0usize;
    let mut stats = mpn::core::ComputeStats::default();
    let mut traffic = Traffic::default();
    let mut predictors: Vec<HeadingPredictor> =
        group.iter().map(|_| HeadingPredictor::new(config.heading_smoothing)).collect();

    let mut locations: Vec<Point> = group.iter().map(|t| t.at(0)).collect();
    for (predictor, location) in predictors.iter_mut().zip(&locations) {
        predictor.observe(*location);
    }
    for _ in group {
        traffic.record(Message::location_report());
    }
    let headings: Vec<Option<f64>> = predictors.iter().map(HeadingPredictor::predicted).collect();
    let mut answer = server.compute_with_headings(&locations, Some(&headings));
    updates += 1;
    stats.absorb(&answer.stats);
    for region in &answer.regions {
        traffic.record(Message::result_notification(region, config.compress_regions));
    }

    for t in 1..horizon {
        timestamps += 1;
        locations.clear();
        locations.extend(group.iter().map(|traj| traj.at(t)));
        for (predictor, location) in predictors.iter_mut().zip(&locations) {
            predictor.observe(*location);
        }

        let violators = answer.violators(&locations);
        if violators.is_empty() {
            continue;
        }
        for _ in &violators {
            traffic.record(Message::location_report());
        }
        let others = group.len() - violators.len();
        for _ in 0..others {
            traffic.record(Message::probe());
            traffic.record(Message::probe_reply());
        }
        let headings: Vec<Option<f64>> =
            predictors.iter().map(HeadingPredictor::predicted).collect();
        answer = server.compute_with_headings(&locations, Some(&headings));
        updates += 1;
        stats.absorb(&answer.stats);
        for region in &answer.regions {
            traffic.record(Message::result_notification(region, config.compress_regions));
        }
    }

    Counters { timestamps, updates, traffic, stats }
}

fn counters_of(metrics: &mpn::sim::MonitoringMetrics) -> Counters {
    Counters {
        timestamps: metrics.timestamps,
        updates: metrics.updates,
        traffic: metrics.traffic,
        stats: metrics.stats,
    }
}

#[test]
fn wrapper_reproduces_the_legacy_loop_exactly_for_every_method() {
    let (tree, fleet) = world(1, 3);
    let group = &fleet[0];
    let theta = std::f64::consts::FRAC_PI_4;
    for objective in [Objective::Max, Objective::Sum] {
        for method in [
            Method::circle(),
            Method::tile(),
            Method::tile_directed(theta),
            Method::tile_directed_buffered(theta, 60),
        ] {
            let config = MonitorConfig::new(objective, method).with_max_timestamps(150);
            let legacy = legacy_run_monitoring(&tree, group, &config);
            let session = run_monitoring(&tree, group, &config);
            assert_eq!(
                legacy,
                counters_of(&session),
                "{objective:?}/{} diverged from the legacy loop",
                method.name()
            );
        }
    }
}

#[test]
fn engine_path_matches_the_wrapper_for_a_single_group() {
    let (tree, fleet) = world(1, 9);
    let config =
        MonitorConfig::new(Objective::Max, Method::tile_directed(0.8)).with_max_timestamps(120);
    let wrapper = run_monitoring(&tree, &fleet[0], &config);

    let mut engine = MonitoringEngine::new(Arc::clone(&tree), 4);
    let id = engine.register(TrajectoryFeed::from_group(&fleet[0]), config);
    engine.run_to_completion();
    assert_eq!(counters_of(&wrapper), counters_of(engine.group_metrics(id)));
}

#[test]
fn streaming_submission_matches_the_feed_replay_epoch_for_epoch() {
    // The message-driven path — owned `EpochUpdate` batches submitted into a streaming
    // session — must be protocol-equivalent to the `TrajectoryFeed` replay of the same
    // recording: identical counters after every tick, for the legacy baseline too.
    let (tree, fleet) = world(1, 77);
    let group = &fleet[0];
    let config = MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(120);
    let legacy = legacy_run_monitoring(&tree, group, &config);

    let mut replay = MonitoringEngine::new(Arc::clone(&tree), 2);
    let replay_id = replay.register(TrajectoryFeed::from_group(group), config);
    let mut stream = MonitoringEngine::new(Arc::clone(&tree), 2);
    let stream_id = stream.register_stream(group.len(), config);

    let mut source = TrajectoryFeed::from_group(group);
    for _ in 0..120 {
        let positions = source.next_epoch().expect("the recording covers the horizon");
        stream.submit(EpochUpdate { group_id: stream_id, positions }).expect("live group");
        let fed = replay.tick();
        let submitted = stream.tick();
        assert_eq!(fed, submitted, "feed and stream must produce identical tick summaries");
        assert_eq!(
            counters_of(replay.group_metrics(replay_id)),
            counters_of(stream.group_metrics(stream_id)),
        );
    }
    assert!(replay.is_finished() && stream.is_finished());
    assert_eq!(legacy, counters_of(stream.group_metrics(stream_id)));
}

#[test]
fn parallel_eight_group_tick_matches_eight_serial_runs() {
    let (tree, fleet) = world(8, 21);
    let config = MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(100);

    let serial: Vec<Counters> =
        fleet.iter().map(|g| counters_of(&run_monitoring(&tree, g, &config))).collect();

    let mut engine = MonitoringEngine::new(Arc::clone(&tree), 8);
    assert_eq!(engine.shard_count(), 8);
    let ids: Vec<_> =
        fleet.iter().map(|g| engine.register(TrajectoryFeed::from_group(g), config)).collect();
    assert!(engine.group_count() >= 8, "the fleet must exercise at least 8 concurrent groups");

    // Drive the fleet tick by tick (each tick advances all 8 groups on 8 shard threads).
    let mut ticks = 0;
    while !engine.is_finished() {
        let summary = engine.tick();
        assert!(summary.advanced <= 8);
        ticks += 1;
    }
    assert_eq!(ticks, 100);

    for (id, expected) in ids.iter().zip(&serial) {
        assert_eq!(expected, &counters_of(engine.group_metrics(*id)), "group {id} diverged");
    }

    // Fleet aggregation is the sum of the parts.
    let fleet_metrics = engine.fleet_metrics();
    assert_eq!(fleet_metrics.updates, serial.iter().map(|c| c.updates).sum::<usize>());
    assert_eq!(
        fleet_metrics.traffic.packets,
        serial.iter().map(|c| c.traffic.packets).sum::<usize>()
    );
}

#[test]
fn pool_executor_matches_the_scoped_thread_executor_tick_for_tick() {
    let (tree, fleet) = world(8, 57);
    let config = MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(100);

    let mut pool = MonitoringEngine::with_executor(Arc::clone(&tree), 4, TickExecutor::WorkerPool);
    let mut scoped =
        MonitoringEngine::with_executor(Arc::clone(&tree), 4, TickExecutor::ScopedThreads);
    assert_eq!(pool.executor(), TickExecutor::WorkerPool);
    assert_eq!(scoped.executor(), TickExecutor::ScopedThreads);
    for group in &fleet {
        pool.register(TrajectoryFeed::from_group(group), config);
        scoped.register(TrajectoryFeed::from_group(group), config);
    }

    let mut pool_summaries: Vec<TickSummary> = Vec::new();
    while !pool.is_finished() {
        pool_summaries.push(pool.tick());
    }
    let mut scoped_summaries: Vec<TickSummary> = Vec::new();
    while !scoped.is_finished() {
        scoped_summaries.push(scoped.tick());
    }

    assert_eq!(pool_summaries.len(), 100);
    assert_eq!(
        pool_summaries, scoped_summaries,
        "the executor swap must not change any fleet tick summary"
    );
    for id in 0..fleet.len() {
        assert_eq!(
            counters_of(pool.group_metrics(id)),
            counters_of(scoped.group_metrics(id)),
            "group {id} diverged between executors"
        );
    }
}

/// Small-world fleet for the steal-path property test: `sizes[g]` users per group, all with
/// the same short bounded horizon, over a modest clustered POI set.
fn skewed_fleet(sizes: &[usize], horizon: usize) -> (Arc<RTree>, Vec<Vec<Trajectory>>) {
    let pois = clustered_pois(&PoiConfig { count: 150, domain: 500.0, ..PoiConfig::default() }, 71);
    let tree = Arc::new(RTree::bulk_load(&pois));
    let config = WaypointConfig { domain: 500.0, speed_limit: 7.0, timestamps: horizon };
    let fleet = sizes
        .iter()
        .enumerate()
        .map(|(g, &size)| {
            (0..size).map(|i| random_waypoint(&config, (g * 31 + i) as u64)).collect()
        })
        .collect();
    (tree, fleet)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The work-stealing executor — session batches, stolen across workers, through the
    // shared query cache — must produce the *exact* tick-summary sequence and per-group
    // counters of the scoped-thread executor, for any shard count, any (skewed) batch size
    // and any skewed mix of group sizes.  Stealing and caching may only change the
    // schedule, never a counter.
    #[test]
    fn stealing_ticks_match_scoped_threads_for_any_skew(
        shards in 1usize..=8,
        batch in 1usize..=8,
        sizes in prop_vec(1usize..=4, 1..11),
    ) {
        const HORIZON: usize = 12;
        let (tree, fleet) = skewed_fleet(&sizes, HORIZON);
        let config = MonitorConfig::new(Objective::Max, Method::circle())
            .with_max_timestamps(HORIZON);

        let mut stealing = MonitoringEngine::with_executor(
            Arc::clone(&tree),
            shards,
            TickExecutor::WorkStealing { batch },
        )
        .with_query_cache(QueryCache::new());
        let mut scoped =
            MonitoringEngine::with_executor(Arc::clone(&tree), shards, TickExecutor::ScopedThreads);
        for group in &fleet {
            stealing.register(TrajectoryFeed::from_group(group), config);
            scoped.register(TrajectoryFeed::from_group(group), config);
        }

        let mut guard = 0usize;
        while !stealing.is_finished() {
            let a = stealing.tick();
            let b = scoped.tick();
            prop_assert_eq!(a, b, "tick {} diverged under stealing", guard);
            guard += 1;
            prop_assert!(guard <= HORIZON, "bounded fleets finish within their horizon");
        }
        prop_assert!(scoped.is_finished());
        for id in 0..fleet.len() {
            prop_assert_eq!(
                counters_of(stealing.group_metrics(id)),
                counters_of(scoped.group_metrics(id)),
                "group {} diverged between executors", id
            );
        }
        // The cache saw every query of the run (each tick's lookups are hits + misses).
        let totals = stealing.exec_totals();
        prop_assert!(totals.cache_misses > 0, "a fresh cache cannot serve only hits");
        prop_assert!(totals.batches > 0, "every live tick dispatches at least one batch");
    }
}

#[test]
fn persistent_buffers_cut_tile_d_b_index_work_versus_the_stateless_path() {
    let (tree, fleet) = world(1, 33);
    let base = MonitorConfig::new(Objective::Max, Method::tile_directed_buffered(0.8, 100))
        .with_max_timestamps(200);

    let stateless = run_monitoring(&tree, &fleet[0], &base);
    let stateful = run_monitoring(&tree, &fleet[0], &base.with_persistent_buffers(true));

    let stateless_q = stateless.stats.rtree_queries as f64 / stateless.updates as f64;
    let stateful_q = stateful.stats.rtree_queries as f64 / stateful.updates as f64;
    assert!(
        stateful_q < stateless_q,
        "persistent buffers must reduce R-tree queries per update ({stateful_q:.2} vs {stateless_q:.2})"
    );
    // The stateless buffered path issues exactly two queries per update (seed + buffer).
    assert!((stateless_q - 2.0).abs() < 1e-9);
}
