//! Micro-benchmarks and ablations (criterion-free).
//!
//! The build environment has no network access, so instead of criterion this is a plain
//! `harness = false` binary with a small measurement loop: per benchmark it warms up, then
//! reports the mean, median and p95 over a fixed wall-clock budget.  Run with
//! `cargo bench -p mpn-bench` (optionally `MPN_MICRO_MS=500` to change the per-benchmark
//! budget, `MPN_MICRO_FILTER=tile` to run a subset).
//!
//! Covered timings:
//!
//! * safe-region computation cost per engine (Circle vs Tile vs Tile-D vs Tile-D-b),
//! * stateful vs stateless Tile-D-b sessions (the §5.4 buffer-reuse win),
//! * quiet-tick executor overhead: persistent worker pool vs per-tick scoped threads,
//! * skewed-fleet busy ticks: one hot shard, Zipf group sizes — one-job-per-shard vs
//!   work-stealing session batches vs stealing plus the shared query cache,
//! * GT-Verify vs IT-Verify (the grouping optimisation of Section 5.3),
//! * index pruning on/off (Theorem 3),
//! * R-tree GNN query cost,
//! * tile-region compression encode/decode throughput,
//! * `mpn-proto` wire codec round-trip throughput (report and safe-region frames),
//! * (with `--features bench`) heap allocations per steady-state monitoring tick, counted
//!   by a global allocator shim — quiet ticks must allocate nothing, and warm-cache
//!   recompute ticks must allocate only per-session answer bookkeeping (the query path
//!   itself — probe build, cache lookup, GNN staging — is pinned allocation-free).

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpn_core::{
    circle_msr, tile_msr, CompressedTileRegion, EngineContext, Method, MpnServer, Objective,
    SessionState, TileMsrConfig, VerifierKind, DEFAULT_RADIUS_CAP,
};
use mpn_geom::Point;
use mpn_index::{Aggregate, GnnSearch, QueryCache, RTree};
use mpn_mobility::poi::{clustered_pois, PoiConfig};
use mpn_mobility::Trajectory;
use mpn_proto::{Request, Response};
use mpn_sim::{MonitorConfig, MonitoringEngine, TickExecutor, TrajectoryFeed};

/// Counting global allocator, compiled in only under the `bench` feature.
///
/// Counts every `alloc`/`realloc`/`alloc_zeroed` call (frees are not interesting here: the
/// zero-allocation assertions care about allocation *pressure*, and a path that allocates
/// and frees per tick still churns the allocator).  The counter is relaxed — the allocs
/// sections run single-threaded over a single-shard engine, so there is no ordering to
/// protect.
#[cfg(feature = "bench")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: defers every operation to `System`; the counter has no effect on the
    // returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
    }

    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    /// Total allocation calls since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

fn poi_tree(n: usize) -> RTree {
    let pois = clustered_pois(&PoiConfig { count: n, domain: 10_000.0, ..PoiConfig::default() }, 7);
    RTree::bulk_load(&pois)
}

fn users(m: usize) -> Vec<Point> {
    (0..m)
        .map(|i| Point::new(4_000.0 + 300.0 * i as f64, 5_000.0 + 170.0 * (i as f64).sin() * 200.0))
        .collect()
}

/// Runs `f` repeatedly for the configured budget and prints mean / median / p95.
///
/// Returns the measured mean — `None` when the benchmark was filtered out — so sections
/// can compare variants (e.g. the skewed-fleet executor speedup) without re-measuring.
fn bench<T>(
    name: &str,
    budget: Duration,
    filter: &str,
    mut f: impl FnMut() -> T,
) -> Option<Duration> {
    if !name.contains(filter) {
        return None;
    }
    // Warm-up: a tenth of the budget.
    let warm_until = Instant::now() + budget / 10;
    while Instant::now() < warm_until {
        black_box(f());
    }
    let mut samples: Vec<Duration> = Vec::new();
    let run_until = Instant::now() + budget;
    // Do-while: always take at least one sample, even with a zero budget.
    loop {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed());
        if Instant::now() >= run_until {
            break;
        }
    }
    samples.sort();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let median = samples[samples.len() / 2];
    let p95 = samples[(samples.len() as f64 * 0.95) as usize..][0];
    println!(
        "{name:<42} {:>10.1} us mean  {:>10.1} us median  {:>10.1} us p95  ({} iters)",
        mean.as_secs_f64() * 1e6,
        median.as_secs_f64() * 1e6,
        p95.as_secs_f64() * 1e6,
        samples.len()
    );
    Some(mean)
}

fn main() {
    let budget = Duration::from_millis(
        std::env::var("MPN_MICRO_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000),
    );
    let filter = std::env::var("MPN_MICRO_FILTER").unwrap_or_default();
    let b = |name: &str, f: &mut dyn FnMut()| bench(name, budget, &filter, f);

    println!("# mpn micro-benchmarks (budget {budget:?}/bench)\n");

    // Safe-region computation per engine.
    {
        let tree = poi_tree(8_000);
        let group = users(3);
        let methods = [
            ("safe_region/circle", Method::circle()),
            ("safe_region/tile", Method::tile()),
            ("safe_region/tile_directed", Method::tile_directed(std::f64::consts::FRAC_PI_4)),
            (
                "safe_region/tile_directed_buffered",
                Method::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 100),
            ),
        ];
        for (name, method) in methods {
            let server = MpnServer::new(&tree, Objective::Max, method);
            b(name, &mut || {
                black_box(server.compute(black_box(&group)));
            });
        }
        for (name, method) in
            [("safe_region/sum_tile", Method::tile()), ("safe_region/sum_circle", Method::circle())]
        {
            let server = MpnServer::new(&tree, Objective::Sum, method);
            b(name, &mut || {
                black_box(server.compute(black_box(&group)));
            });
        }
    }

    // Stateful session vs stateless recomputation for the buffered engine.
    {
        let tree = poi_tree(8_000);
        let group = users(3);
        let method = Method::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 100);
        let engine = method.engine();
        let ctx = EngineContext::new(&tree, Objective::Max);
        b("session/tile_d_b_stateless", &mut || {
            black_box(engine.compute_stateless(ctx, black_box(&group), None));
        });
        let mut session = SessionState::new(group.len(), 0.3).with_persistent_buffers(true);
        session.observe(&group);
        black_box(engine.compute(ctx, &group, &mut session)); // prime the buffer
        b("session/tile_d_b_persistent", &mut || {
            black_box(engine.compute(ctx, black_box(&group), &mut session));
        });
    }

    // Executor overhead on quiet ticks: a fleet of stationary groups never violates its safe
    // regions after registration, so every tick is pure violation checking — the per-tick
    // cost is dominated by how the executor wakes the shard workers.  The persistent pool
    // parks its workers between ticks; the scoped baseline spawns and joins a thread per
    // live shard every tick.
    {
        let tree = Arc::new(poi_tree(2_000));
        let stationary: Arc<Vec<Trajectory>> =
            Arc::new(users(3).iter().map(|p| Trajectory::new(vec![*p; 400_000])).collect());
        let config = MonitorConfig::new(Objective::Max, Method::circle());
        let mut pool_engine =
            MonitoringEngine::with_executor(Arc::clone(&tree), 8, TickExecutor::WorkerPool);
        let mut scoped_engine =
            MonitoringEngine::with_executor(Arc::clone(&tree), 8, TickExecutor::ScopedThreads);
        for engine in [&mut pool_engine, &mut scoped_engine] {
            // 32 groups sharing one recording (feeds share the Arc, never copy the data).
            for _ in 0..32 {
                engine.register(TrajectoryFeed::new(Arc::clone(&stationary)), config);
            }
            engine.tick(); // registration tick: every group's initial computation, once
        }
        b("executor/quiet_tick_pool", &mut || {
            black_box(pool_engine.tick());
        });
        b("executor/quiet_tick_scoped_threads", &mut || {
            black_box(scoped_engine.tick());
        });
        for engine in [&pool_engine, &scoped_engine] {
            assert!(
                !engine.is_finished(),
                "horizon exhausted mid-bench: quiet ticks were no longer measured — raise the \
                 stationary trajectory length"
            );
        }
    }

    // Skewed-fleet busy ticks: the workload the work-stealing executor exists for.  Three
    // decoy open-horizon streams pin shards 0–2 (each decoy charges OPEN_HORIZON_WEIGHT, so
    // horizon-aware placement sends every bounded group to shard 3), leaving one hot shard
    // with 32 groups of Zipf-ish sizes [8, 4, 2, 1] that teleport every epoch and therefore
    // recompute their safe regions on every tick.  One-job-per-shard serialises all of that
    // on a single worker; stealing splits it into session batches the three starved-decoy
    // workers pull over.  Each size class shares one recording, so the third variant adds
    // the fleet-wide query cache: within a batch the class twins replay each other's
    // candidate lists.
    {
        const SHARDS: usize = 4;
        const CLASS_SIZES: [usize; 4] = [4, 3, 2, 1];
        const COPIES: usize = 8;
        // 32 * 20_000 < OPEN_HORIZON_WEIGHT: shard 3 stays the hot one throughout.
        const HOT_HORIZON: usize = 20_000;
        // Batches of two sessions: the heaviest size class must split across workers, or its
        // one monolithic batch becomes the critical path and stealing has nothing to move.
        const BATCH: usize = 2;
        let tree = Arc::new(poi_tree(8_000));
        let classes: Vec<Arc<Vec<Trajectory>>> = (0..CLASS_SIZES.len())
            .map(|c| {
                Arc::new(
                    (0..CLASS_SIZES[c])
                        .map(|i| {
                            let a = Point::new(
                                3_600.0 + 450.0 * c as f64 + 40.0 * i as f64,
                                4_600.0 + 250.0 * c as f64 + 90.0 * i as f64,
                            );
                            // A short local jump: far enough to violate every safe region
                            // (so every tick is a recomputation tick), near enough that
                            // both endpoints stay in the central POI band, where tile
                            // enumeration stays moderate.
                            let z = Point::new(a.x + 500.0, a.y + 300.0);
                            Trajectory::new(
                                (0..HOT_HORIZON).map(|t| if t % 2 == 0 { a } else { z }).collect(),
                            )
                        })
                        .collect(),
                )
            })
            .collect();
        // Tile regions: heavy enough (hundreds of microseconds per recomputation) that the
        // tick cost is compute-dominated, which is what stealing redistributes.
        let config = MonitorConfig::new(Objective::Max, Method::tile());
        let mut one_job =
            MonitoringEngine::with_executor(Arc::clone(&tree), SHARDS, TickExecutor::WorkerPool);
        let mut stealing = MonitoringEngine::with_executor(
            Arc::clone(&tree),
            SHARDS,
            TickExecutor::WorkStealing { batch: BATCH },
        );
        let mut stealing_cached = MonitoringEngine::with_executor(
            Arc::clone(&tree),
            SHARDS,
            TickExecutor::WorkStealing { batch: BATCH },
        )
        .with_query_cache(QueryCache::new());
        for engine in [&mut one_job, &mut stealing, &mut stealing_cached] {
            for _ in 0..SHARDS - 1 {
                engine.register_stream(1, config); // decoys: starved, but pin their shards
            }
            for class in &classes {
                for _ in 0..COPIES {
                    engine.register(TrajectoryFeed::new(Arc::clone(class)), config);
                }
            }
            engine.tick(); // registration tick
        }
        // Each sample is a *pair* of ticks: the two oscillation parities enumerate
        // different tile neighbourhoods and so cost differently, but a pair always covers
        // both, keeping every sample (and thus the variant means) directly comparable.
        let hot_one_job =
            bench("executor/skewed_tick_pair_one_job_per_shard", budget, &filter, || {
                black_box(one_job.tick());
                black_box(one_job.tick());
            });
        let hot_stealing = bench("executor/skewed_tick_pair_stealing", budget, &filter, || {
            black_box(stealing.tick());
            black_box(stealing.tick());
        });
        let hot_cached =
            bench("executor/skewed_tick_pair_stealing_cached", budget, &filter, || {
                black_box(stealing_cached.tick());
                black_box(stealing_cached.tick());
            });
        for engine in [&one_job, &stealing, &stealing_cached] {
            assert!(!engine.is_finished(), "hot horizon exhausted mid-bench — raise HOT_HORIZON");
        }
        if let Some(totals) = hot_stealing.map(|_| stealing.exec_totals()) {
            println!(
                "  skewed stealing: {} batches, {} steals, summed imbalance {}",
                totals.batches, totals.steals, totals.imbalance
            );
            assert!(
                totals.steals > 0,
                "the skewed fleet must provoke steals: 4 hot batches vs 3 starved workers"
            );
        }
        if let Some(totals) = hot_cached.map(|_| stealing_cached.exec_totals()) {
            println!(
                "  skewed cache: {} hits / {} misses ({:.1}% hit rate)",
                totals.cache_hits,
                totals.cache_misses,
                totals.cache_hit_rate() * 100.0
            );
            assert!(
                totals.cache_hit_rate() >= 0.5,
                "8 copies per size class must lift the shared-cache hit rate above 50%"
            );
        }
        if let (Some(one), Some(steal)) = (hot_one_job, hot_stealing) {
            let speedup = one.as_secs_f64() / steal.as_secs_f64();
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            println!(
                "  skewed speedup: stealing {speedup:.2}x vs one-job-per-shard ({cores} cores)"
            );
            // Gate the win only where it is physically possible (idle cores to steal onto)
            // and statistically meaningful (short smoke budgets are too noisy): on a
            // single-core box stealing can only tie, and the skewed-bench CI job runs with
            // a real budget on a multi-core runner to enforce the 1.5x.
            if cores >= 2 && budget >= Duration::from_millis(200) {
                assert!(
                    speedup >= 1.5,
                    "work-stealing must beat one-job-per-shard by >= 1.5x on the skewed \
                     fleet (got {speedup:.2}x on {cores} cores)"
                );
            }
        }
    }

    // Allocation pressure of the tick hot path (`--features bench` only).  A single-shard
    // engine ticks fully inline — no live-shard vector, no executor bookkeeping — so every
    // allocation counted here comes from the monitoring path itself.
    #[cfg(feature = "bench")]
    {
        const GROUPS: usize = 16;
        const TICKS: u64 = 64;
        let tree = Arc::new(poi_tree(2_000));
        let config = MonitorConfig::new(Objective::Max, Method::circle());

        // Quiet steady state: stationary groups never violate their regions after the
        // registration tick, so every tick is pure violation checking.  With the hot/cold
        // session split, the reused per-session location buffers and the single-shard tick
        // fast path, this must not touch the heap at all.
        if "allocs/quiet_tick_steady".contains(filter.as_str()) {
            let stationary: Arc<Vec<Trajectory>> =
                Arc::new(users(3).iter().map(|p| Trajectory::new(vec![*p; 200_000])).collect());
            let mut quiet =
                MonitoringEngine::new(Arc::clone(&tree), 1).with_query_cache(QueryCache::new());
            for _ in 0..GROUPS {
                quiet.register(TrajectoryFeed::new(Arc::clone(&stationary)), config);
            }
            for _ in 0..4 {
                quiet.tick(); // registration + warm-up: every capacity reaches steady state
            }
            let before = counting_alloc::allocations();
            for _ in 0..TICKS {
                black_box(quiet.tick());
            }
            let total = counting_alloc::allocations() - before;
            println!("allocs/quiet_tick_steady {total:>30} allocations / {TICKS} ticks");
            assert_eq!(total, 0, "a steady-state quiet tick must not allocate");
            assert!(!quiet.is_finished(), "horizon exhausted mid-count");
        }

        // Warm-cache recompute: a two-position oscillation violates every safe region on
        // every tick, so every session recomputes — but after one cold round the shared
        // query cache replays both parities, and the probe key is staged in the per-worker
        // scratch arena.  The query path (probe build, cache lookup, GNN staging) is
        // allocation-free; what remains is per-session answer bookkeeping, pinned to a
        // small constant per recomputation.
        if "allocs/warm_recompute_tick".contains(filter.as_str()) {
            let near = users(3);
            let osc: Arc<Vec<Trajectory>> = Arc::new(
                near.iter()
                    .map(|p| {
                        let far = Point::new(p.x + 500.0, p.y + 300.0);
                        Trajectory::new(
                            (0..200_000).map(|t| if t % 2 == 0 { *p } else { far }).collect(),
                        )
                    })
                    .collect(),
            );
            let mut busy =
                MonitoringEngine::new(Arc::clone(&tree), 1).with_query_cache(QueryCache::new());
            for _ in 0..GROUPS {
                busy.register(TrajectoryFeed::new(Arc::clone(&osc)), config);
            }
            for _ in 0..4 {
                busy.tick(); // registration + both oscillation parities go cold → warm
            }
            let before = counting_alloc::allocations();
            for _ in 0..TICKS {
                black_box(busy.tick());
            }
            let total = counting_alloc::allocations() - before;
            let per_recompute = total as f64 / (TICKS * GROUPS as u64) as f64;
            println!(
                "allocs/warm_recompute_tick {total:>28} allocations / {TICKS} ticks \
                 ({per_recompute:.2} per recomputation)"
            );
            assert!(
                per_recompute <= 3.0,
                "a warm-cache circle recomputation must stay within its answer bookkeeping \
                 (violator list + region vector), got {per_recompute:.2} allocations"
            );
            assert!(!busy.is_finished(), "horizon exhausted mid-count");
        }
    }

    // Verifier and pruning ablations.
    {
        let tree = poi_tree(4_000);
        let group = users(3);
        for (name, verifier) in
            [("ablation/gt_verify", VerifierKind::Gt), ("ablation/it_verify", VerifierKind::It)]
        {
            let config = TileMsrConfig { verifier, alpha: 10, ..TileMsrConfig::default() };
            b(name, &mut || {
                black_box(tile_msr(&tree, &group, Objective::Max, &config, None));
            });
        }
        for (name, pruning) in [("ablation/pruning_on", true), ("ablation/pruning_off", false)] {
            let config =
                TileMsrConfig { index_pruning: pruning, alpha: 10, ..TileMsrConfig::default() };
            b(name, &mut || {
                black_box(tile_msr(&tree, &group, Objective::Max, &config, None));
            });
        }
    }

    // GNN query cost by data-set size.
    for n in [2_000usize, 8_000, 21_287] {
        let tree = poi_tree(n);
        let group = users(3);
        for agg in [Aggregate::Max, Aggregate::Sum] {
            let name = format!("gnn/top2_{}_{n}", agg.name());
            bench(&name, budget, &filter, || {
                black_box(GnnSearch::new(&tree, &group, agg).top_k(2));
            });
        }
    }

    // Circle-MSR at the paper's data-set size.
    {
        let tree = poi_tree(21_287);
        let group = users(5);
        b("circle_msr/21k_pois", &mut || {
            black_box(circle_msr(&tree, &group, Objective::Max, DEFAULT_RADIUS_CAP));
        });
    }

    // Tile-region compression.
    {
        let tree = poi_tree(8_000);
        let group = users(3);
        let out = tile_msr(&tree, &group, Objective::Max, &TileMsrConfig::default(), None);
        let region =
            out.regions.iter().max_by_key(|r| r.len()).expect("at least one region").clone();
        let encoded = CompressedTileRegion::encode(&region).expect("encodable");
        b("compression/encode", &mut || {
            black_box(CompressedTileRegion::encode(black_box(&region)).unwrap());
        });
        b("compression/decode", &mut || {
            black_box(encoded.decode());
        });
    }

    // mpn-proto wire codec round-trips: the per-message serialisation cost a network
    // front-end pays on top of the monitoring compute.
    {
        let tree = poi_tree(8_000);
        let group = users(3);
        let out = tile_msr(&tree, &group, Objective::Max, &TileMsrConfig::default(), None);
        let region =
            out.regions.iter().max_by_key(|r| r.len()).expect("at least one region").clone();
        let report = Request::Report { group: 42, positions: users(5) };
        let safe_region = Response::SafeRegion {
            group: 42,
            user: 2,
            meeting_point: Point::new(4_000.0, 5_000.0),
            region: mpn_core::SafeRegion::Tiles(region),
        };
        b("proto/codec_roundtrip_report", &mut || {
            let bytes = black_box(&report).encoded();
            black_box(Request::decode(&bytes).unwrap());
        });
        b("proto/codec_roundtrip_safe_region", &mut || {
            let bytes = black_box(&safe_region).encoded();
            black_box(Response::decode(&bytes).unwrap());
        });
    }
}
