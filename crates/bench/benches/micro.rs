//! Criterion micro-benchmarks and ablations.
//!
//! These complement the figure binaries with per-operation timings:
//!
//! * safe-region computation cost per method (Circle vs Tile vs Tile-D vs Tile-D-b),
//! * GT-Verify vs IT-Verify (the grouping optimisation of Section 5.3),
//! * index pruning on/off (Theorem 3),
//! * R-tree GNN query cost,
//! * tile-region compression encode/decode throughput.
#![allow(missing_docs)] // criterion's macros generate undocumented entry points

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpn_core::{
    circle_msr, tile_msr, CompressedTileRegion, Method, MpnServer, Objective, TileMsrConfig,
    VerifierKind, DEFAULT_RADIUS_CAP,
};
use mpn_geom::Point;
use mpn_index::{Aggregate, GnnSearch, RTree};
use mpn_mobility::poi::{clustered_pois, PoiConfig};

fn poi_tree(n: usize) -> RTree {
    let pois = clustered_pois(&PoiConfig { count: n, domain: 10_000.0, ..PoiConfig::default() }, 7);
    RTree::bulk_load(&pois)
}

fn users(m: usize) -> Vec<Point> {
    (0..m)
        .map(|i| Point::new(4_000.0 + 300.0 * i as f64, 5_000.0 + 170.0 * (i as f64).sin() * 200.0))
        .collect()
}

fn bench_safe_region_methods(c: &mut Criterion) {
    let tree = poi_tree(8_000);
    let group = users(3);
    let mut g = c.benchmark_group("safe_region_computation");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    let methods = [
        ("circle", Method::circle()),
        ("tile", Method::tile()),
        ("tile_directed", Method::tile_directed(std::f64::consts::FRAC_PI_4)),
        ("tile_directed_buffered", Method::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 100)),
    ];
    for (name, method) in methods {
        let server = MpnServer::new(&tree, Objective::Max, method);
        g.bench_function(name, |b| b.iter(|| black_box(server.compute(black_box(&group)))));
    }
    for (name, method) in [("sum_tile", Method::tile()), ("sum_circle", Method::circle())] {
        let server = MpnServer::new(&tree, Objective::Sum, method);
        g.bench_function(name, |b| b.iter(|| black_box(server.compute(black_box(&group)))));
    }
    g.finish();
}

fn bench_verifier_ablation(c: &mut Criterion) {
    let tree = poi_tree(4_000);
    let group = users(3);
    let mut g = c.benchmark_group("verifier_ablation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, verifier) in [("gt_verify", VerifierKind::Gt), ("it_verify", VerifierKind::It)] {
        let config = TileMsrConfig { verifier, alpha: 10, ..TileMsrConfig::default() };
        g.bench_function(name, |b| {
            b.iter(|| black_box(tile_msr(&tree, &group, Objective::Max, &config, None)))
        });
    }
    for (name, pruning) in [("pruning_on", true), ("pruning_off", false)] {
        let config = TileMsrConfig { index_pruning: pruning, alpha: 10, ..TileMsrConfig::default() };
        g.bench_function(name, |b| {
            b.iter(|| black_box(tile_msr(&tree, &group, Objective::Max, &config, None)))
        });
    }
    g.finish();
}

fn bench_gnn_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("gnn_query");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [2_000usize, 8_000, 21_287] {
        let tree = poi_tree(n);
        let group = users(3);
        for agg in [Aggregate::Max, Aggregate::Sum] {
            g.bench_with_input(
                BenchmarkId::new(format!("top2_{}", agg.name()), n),
                &n,
                |b, _| {
                    b.iter(|| black_box(GnnSearch::new(&tree, &group, agg).top_k(2)))
                },
            );
        }
    }
    g.finish();
}

fn bench_circle_radius(c: &mut Criterion) {
    let tree = poi_tree(21_287);
    let group = users(5);
    c.bench_function("circle_msr_21k_pois", |b| {
        b.iter(|| black_box(circle_msr(&tree, &group, Objective::Max, DEFAULT_RADIUS_CAP)))
    });
}

fn bench_compression(c: &mut Criterion) {
    let tree = poi_tree(8_000);
    let group = users(3);
    let out = tile_msr(&tree, &group, Objective::Max, &TileMsrConfig::default(), None);
    let region = out
        .regions
        .iter()
        .max_by_key(|r| r.len())
        .expect("at least one region")
        .clone();
    let encoded = CompressedTileRegion::encode(&region).expect("encodable");
    let mut g = c.benchmark_group("compression");
    g.bench_function("encode", |b| {
        b.iter(|| black_box(CompressedTileRegion::encode(black_box(&region)).unwrap()))
    });
    g.bench_function("decode", |b| b.iter(|| black_box(encoded.decode())));
    g.finish();
}

criterion_group!(
    benches,
    bench_safe_region_methods,
    bench_verifier_ablation,
    bench_gnn_queries,
    bench_circle_radius,
    bench_compression
);
criterion_main!(benches);
