//! Shared harness: the method suite of the experiments and CSV series printing.

use mpn_core::{Method, Objective};
use mpn_index::RTree;
use mpn_mobility::GroupWorkload;
use mpn_sim::{run_workload, MonitorConfig, WorkloadSummary};

use crate::params::{DEFAULT_BUFFER, DEFAULT_THETA};

/// A named safe-region method, as it appears in a figure legend.
#[derive(Debug, Clone, Copy)]
pub struct MethodSpec {
    /// Legend label (`Circle`, `Tile`, `Tile-D`, `Tile-D-b`).
    pub label: &'static str,
    /// The method configuration.
    pub method: Method,
}

/// The method suite used by the scalability figures (Fig. 13–15, 17–18): Circle, Tile, Tile-D.
#[must_use]
pub fn method_suite() -> Vec<MethodSpec> {
    vec![
        MethodSpec { label: "Circle", method: Method::circle() },
        MethodSpec { label: "Tile", method: Method::tile() },
        MethodSpec { label: "Tile-D", method: Method::tile_directed(DEFAULT_THETA) },
    ]
}

/// The method pair used by the buffering figures (Fig. 16, 19): Tile-D vs Tile-D-b.
#[must_use]
pub fn buffering_suite(b: usize) -> Vec<MethodSpec> {
    vec![
        MethodSpec { label: "Tile-D", method: Method::tile_directed(DEFAULT_THETA) },
        MethodSpec { label: "Tile-D-b", method: Method::tile_directed_buffered(DEFAULT_THETA, b) },
    ]
}

/// The default buffered method (`b = 100`).
#[must_use]
pub fn default_buffered_method() -> Method {
    Method::tile_directed_buffered(DEFAULT_THETA, DEFAULT_BUFFER)
}

/// Runs one (method, workload) cell and returns its summary.
#[must_use]
pub fn run_cell(
    tree: &RTree,
    workload: &GroupWorkload,
    objective: Objective,
    method: Method,
) -> WorkloadSummary {
    run_workload(tree, workload, &MonitorConfig::new(objective, method))
}

/// Prints one CSV series: a header followed by one row per x-value and method.
///
/// `rows` holds `(x_label, method_label, summary)` triples in print order.
pub fn print_series(figure: &str, x_name: &str, rows: &[(String, &'static str, WorkloadSummary)]) {
    println!("# {figure}");
    println!(
        "{x_name},method,update_frequency,packets_per_timestamp,mean_time_us,updates_per_group"
    );
    for (x, label, summary) in rows {
        println!(
            "{x},{label},{:.6},{:.4},{:.1},{:.1}",
            summary.update_frequency,
            summary.packets_per_timestamp,
            summary.mean_compute_time.as_secs_f64() * 1e6,
            summary.updates_per_group,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_the_expected_members() {
        let suite = method_suite();
        assert_eq!(suite.len(), 3);
        assert_eq!(suite[0].label, "Circle");
        assert_eq!(suite[1].method.name(), "Tile");
        assert_eq!(suite[2].method.name(), "Tile-D");
        let buf = buffering_suite(50);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[1].method.name(), "Tile-D-b");
        assert_eq!(default_buffered_method().name(), "Tile-D-b");
    }
}
