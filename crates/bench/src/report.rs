//! Rendering for the capacity sweep: a human-readable scaling table on stdout and the
//! machine-readable `BENCH_10.json` series.
//!
//! The JSON is written by hand (the workspace is offline — no serde), which keeps the
//! schema explicit here in one place.  Top level:
//!
//! ```json
//! {
//!   "bench": "capacity",
//!   "pr": 10,
//!   "knobs": { "shards": 2, "tick_batch": 256, ... },
//!   "sweep": [ { "sessions": 10000, "ticks_per_sec": ..., ... }, ... ]
//! }
//! ```
//!
//! Each sweep entry carries the measured-window deltas of one [`CapacityOutcome`]:
//! throughput (`ticks_per_sec`, `session_epochs_per_sec`), per-update CPU percentiles in
//! microseconds, §7.1 `wire_bytes`, the executor counters (`batches`, `steals`,
//! `imbalance`, engine-side `cache_hits`/`cache_misses`) and the shared query-cache
//! counters with their derived `hit_rate`.

use std::fmt::Write as _;

use crate::workload::{CapacityConfig, CapacityOutcome};

fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_owned()
    }
}

/// Renders the sweep as the checked-in `BENCH_10.json` document.
#[must_use]
pub fn render_json(config: &CapacityConfig, sweep: &[CapacityOutcome]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"capacity\",\n  \"pr\": 10,\n  \"knobs\": {\n");
    let _ = writeln!(out, "    \"shards\": {},", config.shards);
    let _ = writeln!(out, "    \"tick_batch\": {},", config.tick_batch);
    let _ = writeln!(out, "    \"warmup_ticks\": {},", config.warmup_ticks);
    let _ = writeln!(out, "    \"measure_ticks\": {},", config.measure_ticks);
    let _ = writeln!(out, "    \"churn_per_tick\": {},", json_f64(config.churn_per_tick));
    let _ = writeln!(out, "    \"open_fraction\": {},", json_f64(config.open_fraction));
    let _ = writeln!(out, "    \"zipf_skew\": {},", json_f64(config.zipf_skew));
    let _ = writeln!(out, "    \"distinct_groups\": {},", config.distinct_groups);
    let _ = writeln!(
        out,
        "    \"group_size\": [{}, {}],",
        config.min_group_size, config.max_group_size
    );
    let _ = writeln!(out, "    \"poi_count\": {},", config.poi_count);
    let _ = writeln!(out, "    \"seed\": {}", config.seed);
    out.push_str("  },\n  \"sweep\": [\n");
    for (i, o) in sweep.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"sessions\": {},", o.sessions);
        let _ = writeln!(out, "      \"shards\": {},", o.shards);
        let _ = writeln!(
            out,
            "      \"register_secs\": {},",
            json_f64(o.register_elapsed.as_secs_f64())
        );
        let _ =
            writeln!(out, "      \"measure_secs\": {},", json_f64(o.measure_elapsed.as_secs_f64()));
        let _ = writeln!(out, "      \"ticks_per_sec\": {},", json_f64(o.ticks_per_sec()));
        let _ = writeln!(
            out,
            "      \"session_epochs_per_sec\": {},",
            json_f64(o.session_epochs_per_sec())
        );
        let _ = writeln!(out, "      \"advanced\": {},", o.advanced);
        let _ = writeln!(out, "      \"updated\": {},", o.updated);
        let _ = writeln!(out, "      \"violators\": {},", o.violators);
        let _ = writeln!(out, "      \"churned\": {},", o.churned);
        let _ = writeln!(
            out,
            "      \"update_p50_us\": {},",
            json_f64(o.update_p50.as_secs_f64() * 1e6)
        );
        let _ = writeln!(
            out,
            "      \"update_p99_us\": {},",
            json_f64(o.update_p99.as_secs_f64() * 1e6)
        );
        let _ = writeln!(out, "      \"wire_bytes\": {},", o.wire_bytes);
        out.push_str("      \"executor\": {\n");
        let _ = writeln!(out, "        \"batches\": {},", o.exec.batches);
        let _ = writeln!(out, "        \"steals\": {},", o.exec.steals);
        let _ = writeln!(out, "        \"imbalance\": {},", o.exec.imbalance);
        let _ = writeln!(out, "        \"cache_hits\": {},", o.exec.cache_hits);
        let _ = writeln!(out, "        \"cache_misses\": {}", o.exec.cache_misses);
        out.push_str("      },\n      \"query_cache\": {\n");
        let _ = writeln!(out, "        \"hits\": {},", o.cache.hits);
        let _ = writeln!(out, "        \"misses\": {},", o.cache.misses);
        let _ = writeln!(out, "        \"insertions\": {},", o.cache.insertions);
        let _ = writeln!(out, "        \"evictions\": {},", o.cache.evictions);
        let _ = writeln!(out, "        \"hit_rate\": {}", json_f64(o.cache.hit_rate()));
        out.push_str("      },\n      \"fleet\": {\n");
        let _ = writeln!(out, "        \"groups\": {},", o.report.groups);
        let _ = writeln!(out, "        \"retired\": {},", o.report.retired);
        let _ = writeln!(out, "        \"reclaimed_users\": {},", o.report.reclaimed_users);
        let _ = writeln!(out, "        \"total_packets\": {},", o.report.fleet.traffic.packets);
        let _ = writeln!(out, "        \"total_wire_bytes\": {}", o.report.wire_bytes());
        out.push_str("      }\n");
        out.push_str(if i + 1 == sweep.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the sweep as the stdout scaling table.
#[must_use]
pub fn render_table(sweep: &[CapacityOutcome]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>9}  {:>9}  {:>13}  {:>10}  {:>10}  {:>12}  {:>8}  {:>9}",
        "sessions", "ticks/s", "sess-epoch/s", "p50 µs", "p99 µs", "wire MB", "steals", "cache-hit"
    );
    for o in sweep {
        let _ = writeln!(
            out,
            "{:>9}  {:>9.3}  {:>13.0}  {:>10.1}  {:>10.1}  {:>12.2}  {:>8}  {:>8.1}%",
            o.sessions,
            o.ticks_per_sec(),
            o.session_epochs_per_sec(),
            o.update_p50.as_secs_f64() * 1e6,
            o.update_p99.as_secs_f64() * 1e6,
            o.wire_bytes as f64 / 1e6,
            o.exec.steals,
            o.cache.hit_rate() * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::CapacityWorkload;
    use mpn_mobility::network::NetworkConfig;

    #[test]
    fn json_report_is_well_formed() {
        let config = CapacityConfig {
            shards: 2,
            warmup_ticks: 1,
            measure_ticks: 2,
            distinct_groups: 4,
            poi_count: 100,
            network: NetworkConfig {
                grid: 4,
                timestamps: 6,
                domain: 500.0,
                ..NetworkConfig::default()
            },
            ..CapacityConfig::default()
        };
        let workload = CapacityWorkload::build(config);
        let sweep = vec![workload.run(20), workload.run(40)];
        let json = render_json(workload.config(), &sweep);
        // Structural sanity without a JSON parser: balanced braces/brackets, both sweep
        // entries present, and no stray trailing comma before a closer.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bench\": \"capacity\""));
        assert!(json.contains("\"sessions\": 20"));
        assert!(json.contains("\"sessions\": 40"));
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n    }"));
        let table = render_table(&sweep);
        assert!(table.contains("sessions"));
        assert_eq!(table.lines().count(), 3);
    }
}
