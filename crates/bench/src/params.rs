//! Experiment parameters: the contents of Table 2 plus the harness scale switch.

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for CI / smoke runs: every figure binary finishes in a couple of minutes.
    Smoke,
    /// Reduced sizes: every figure binary finishes in minutes on a laptop.
    Quick,
    /// The paper's sizes (`N = 21,287` POIs, 10 groups, 10,000 timestamps).
    Paper,
}

impl Scale {
    /// Reads the scale from the `MPN_BENCH_SCALE` environment variable (`quick` by default).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MPN_BENCH_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") | Ok("full") => Scale::Paper,
            Ok("smoke") | Ok("SMOKE") | Ok("ci") => Scale::Smoke,
            _ => Scale::Quick,
        }
    }

    /// Number of POIs (`N` in Table 2).
    #[must_use]
    pub fn poi_count(self) -> usize {
        match self {
            Scale::Smoke => 1_500,
            Scale::Quick => 4_000,
            Scale::Paper => 21_287,
        }
    }

    /// Number of user groups monitored per configuration.
    #[must_use]
    pub fn groups(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Quick => 3,
            Scale::Paper => 10,
        }
    }

    /// Number of timestamps replayed per trajectory.
    #[must_use]
    pub fn timestamps(self) -> usize {
        match self {
            Scale::Smoke => 300,
            Scale::Quick => 600,
            Scale::Paper => 10_000,
        }
    }

    /// Human-readable name for report headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// Default angular deviation `θ` of the directed ordering (the paper learns it from recent
/// travel directions; 45° is a representative bound from reference [26]).
pub const DEFAULT_THETA: f64 = std::f64::consts::FRAC_PI_4;

/// Group sizes evaluated by Fig. 13 / Fig. 17 (Table 2: 2–6, default 3).
pub const GROUP_SIZES: [usize; 5] = [2, 3, 4, 5, 6];

/// Default group size (Table 2).
pub const DEFAULT_GROUP_SIZE: usize = 3;

/// Data-size fractions evaluated by Fig. 14 / Fig. 18 (Table 2: 0.25–1.0 of `N`).
pub const DATA_FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Speed fractions evaluated by Fig. 15 (Table 2: 0.25–1.0 of the speed limit `V`).
pub const SPEED_FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Buffering parameters evaluated by Fig. 16 / Fig. 19.
pub const BUFFER_SIZES: [usize; 5] = [10, 25, 50, 75, 100];

/// Default buffering parameter `b` (footnote 5 of the paper).
pub const DEFAULT_BUFFER: usize = 100;

/// Tile limit `α` (Section 7.1: "we set α = 30").
pub const ALPHA: usize = 30;

/// Split level `L` (Section 7.1: "L = 2").
pub const SPLIT_LEVEL: u32 = 2;

/// Prints Table 2 (parameter defaults and ranges) as CSV.
pub fn print_table2() {
    println!("parameter,default,range");
    println!("data size n,N,0.25N;0.5N;0.75N;1.0N");
    println!("user group size m,{DEFAULT_GROUP_SIZE},2;3;4;5;6");
    println!("user speed,V,0.25V;0.5V;0.75V;1.0V");
    println!("tile limit alpha,{ALPHA},-");
    println!("split level L,{SPLIT_LEVEL},-");
    println!("buffering parameter b,{DEFAULT_BUFFER},10;25;50;75;100");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_expose_consistent_sizes() {
        assert!(Scale::Smoke.poi_count() < Scale::Quick.poi_count());
        assert!(Scale::Quick.poi_count() < Scale::Paper.poi_count());
        assert!(Scale::Quick.groups() < Scale::Paper.groups());
        assert!(Scale::Quick.timestamps() < Scale::Paper.timestamps());
        assert_eq!(Scale::Paper.poi_count(), 21_287);
        assert_eq!(Scale::Smoke.name(), "smoke");
        assert_eq!(Scale::Quick.name(), "quick");
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn parameter_grids_match_table_2() {
        assert_eq!(GROUP_SIZES, [2, 3, 4, 5, 6]);
        assert_eq!(DATA_FRACTIONS.len(), 4);
        assert_eq!(SPEED_FRACTIONS.len(), 4);
        assert_eq!(BUFFER_SIZES.len(), 5);
        assert_eq!(DEFAULT_GROUP_SIZE, 3);
        assert_eq!(ALPHA, 30);
        assert_eq!(SPLIT_LEVEL, 2);
        assert_eq!(DEFAULT_BUFFER, 100);
    }
}
