//! Benchmark harness reproducing the paper's evaluation (Section 7).
//!
//! Each evaluation figure has a matching binary (`fig13` … `fig19`, plus `table2`) that prints
//! the corresponding CSV series; `benches/micro.rs` holds criterion micro-benchmarks and
//! ablations.  See `EXPERIMENTS.md` at the workspace root for the mapping and the recorded
//! results.
//!
//! The harness honours the `MPN_BENCH_SCALE` environment variable:
//!
//! * `quick` (default) — reduced data sizes so every figure binary finishes in minutes,
//! * `paper` — the paper's sizes (21,287 POIs, 10 groups, 10,000 timestamps).
//!
//! # The capacity harness
//!
//! Beyond the figure reproductions, [`workload`] holds the million-session capacity
//! harness (ROADMAP item 5): [`CapacityWorkload`] drives a synthetic fleet of up to 10⁶
//! in-process sessions straight into a [`mpn_sim::MonitoringEngine`] — no sockets — and
//! the `capacity` bin sweeps it over fleet sizes, printing the scaling series and writing
//! `BENCH_10.json`.  Every knob is an environment variable read by the bin:
//!
//! | variable          | default                | meaning                                        |
//! |-------------------|------------------------|------------------------------------------------|
//! | `MPN_CAP_SWEEP`   | `10000,100000,1000000` | comma-separated fleet sizes to run             |
//! | `MPN_CAP_WARMUP`  | `2`                    | unmeasured warm-up ticks                       |
//! | `MPN_CAP_TICKS`   | `5`                    | measured ticks                                 |
//! | `MPN_CAP_CHURN`   | `0.002`                | fleet fraction deregistered + replaced per tick|
//! | `MPN_CAP_OPEN`    | `0.05`                 | fraction registered as open-horizon streams    |
//! | `MPN_CAP_SHARDS`  | `max(2, cores)`        | engine shards (work-stealing pool)             |
//! | `MPN_CAP_ZIPF`    | `1.1`                  | Zipf exponent for popularity/size/speed skews  |
//! | `MPN_CAP_GROUPS`  | `512`                  | distinct trajectory groups in the shared pool  |
//! | `MPN_CAP_BATCH`   | `256`                  | sessions per work-stealing batch               |
//! | `MPN_CAP_SEED`    | `42`                   | master seed                                    |
//! | `MPN_OUT`         | `BENCH_10.json`         | JSON report path                               |
//!
//! Measured numbers come from one [`mpn_sim::EngineReport`] snapshot per phase boundary
//! (see `mpn-sim`'s crate docs, "Engine-wide snapshots").

#![forbid(unsafe_code)]

pub mod datasets;
pub mod harness;
pub mod params;
pub mod report;
pub mod workload;

pub use datasets::{build_poi_tree, build_workload, TrajectoryKind};
pub use harness::{method_suite, print_series, run_cell, MethodSpec};
pub use params::{Scale, DEFAULT_THETA};
pub use report::{render_json, render_table};
pub use workload::{CapacityConfig, CapacityOutcome, CapacityWorkload, Zipf};
