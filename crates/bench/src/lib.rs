//! Benchmark harness reproducing the paper's evaluation (Section 7).
//!
//! Each evaluation figure has a matching binary (`fig13` … `fig19`, plus `table2`) that prints
//! the corresponding CSV series; `benches/micro.rs` holds criterion micro-benchmarks and
//! ablations.  See `EXPERIMENTS.md` at the workspace root for the mapping and the recorded
//! results.
//!
//! The harness honours the `MPN_BENCH_SCALE` environment variable:
//!
//! * `quick` (default) — reduced data sizes so every figure binary finishes in minutes,
//! * `paper` — the paper's sizes (21,287 POIs, 10 groups, 10,000 timestamps).

#![forbid(unsafe_code)]

pub mod datasets;
pub mod harness;
pub mod params;

pub use datasets::{build_poi_tree, build_workload, TrajectoryKind};
pub use harness::{method_suite, print_series, run_cell, MethodSpec};
pub use params::{Scale, DEFAULT_THETA};
