//! The million-session capacity workload: a configurable synthetic fleet driven straight
//! into a [`MonitoringEngine`] — no sockets, no codec — so the measured numbers are the
//! engine's, not the transport's.
//!
//! ROADMAP item 5 asks for the measurement substrate the other tentpoles are judged
//! against: a workload generator that pushes the engine to 10⁶ in-process sessions and
//! records tick throughput, per-update server work, wire bytes and executor/cache counters
//! as a checked-in perf trajectory.  This module is that generator; the `capacity` bin
//! sweeps it over fleet sizes and `crate::report` renders the series.
//!
//! # Shape of the workload
//!
//! * **Trajectory pool with Zipf popularity (mobility skew).**  A
//!   [`RoadNetwork`](mpn_mobility::network::RoadNetwork) (Brinkhoff-style, depending on the
//!   connectivity guarantee fixed in this PR — a fragmented network would burn 50 failed
//!   Dijkstras per trajectory step at exactly this scale) yields
//!   [`distinct_groups`](CapacityConfig::distinct_groups) recorded groups; each session is
//!   assigned one by a Zipf([`zipf_skew`](CapacityConfig::zipf_skew)) draw, so a few hot
//!   trajectories serve most of the fleet (the flash-crowd case the shared
//!   [`QueryCache`](mpn_index::QueryCache) exists for) while a long tail stays cold.
//! * **Zipf group sizes.**  Group sizes are drawn from the same skew over
//!   [`min_group_size`](CapacityConfig::min_group_size)..=[`max_group_size`](CapacityConfig::max_group_size)
//!   (small groups common, large ones rare), and trajectory speed classes are skewed the
//!   same way — slow vehicle classes dominate, as in Brinkhoff's generator.
//! * **Open vs capped horizons.**  A fraction
//!   [`open_fraction`](CapacityConfig::open_fraction) of sessions register as open-horizon
//!   *streams* (positions pushed via [`MonitoringEngine::submit`] each tick, never
//!   finishing); the rest are bounded replay sessions over `Arc`-shared feeds, so a
//!   million-session fleet shares the recorded trajectories instead of cloning them.
//! * **Churn.**  Every tick, [`churn_per_tick`](CapacityConfig::churn_per_tick) of the
//!   fleet deregisters and is replaced by fresh registrations — exercising the free-list,
//!   retired-metrics compaction and reclaimed-epoch accounting at scale, inside the
//!   measured window.
//!
//! # Phases and measurement
//!
//! [`CapacityWorkload::run`] registers the fleet, runs
//! [`warmup_ticks`](CapacityConfig::warmup_ticks) unmeasured ticks (covering the expensive
//! registration tick), snapshots an [`EngineReport`], runs
//! [`measure_ticks`](CapacityConfig::measure_ticks) timed ticks, snapshots again and
//! reports the deltas: tick / session-epoch throughput, per-update CPU p50/p99 (through
//! the batch [`MonitoringMetrics::compute_time_percentiles`](mpn_sim::MonitoringMetrics::compute_time_percentiles)
//! path — the percentile fix of this PR), §7.1 wire bytes, and steal / query-cache
//! counters.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpn_core::{Method, Objective};
use mpn_geom::Point;
use mpn_index::{CacheStats, QueryCache, RTree};
use mpn_mobility::network::{NetworkConfig, RoadNetwork};
use mpn_mobility::poi::{clustered_pois, PoiConfig};
use mpn_mobility::{Trajectory, DEFAULT_DOMAIN, DEFAULT_SPEED_LIMIT};
use mpn_sim::engine::GroupId;
use mpn_sim::{
    EngineReport, EpochUpdate, MonitorConfig, MonitoringEngine, TickExecCounters, TickExecutor,
    TrajectoryFeed,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs of the capacity workload.  Everything except the fleet size, which is the sweep
/// axis of [`CapacityWorkload::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityConfig {
    /// Engine shards (work-stealing executor; at least 2 so the worker pool is exercised).
    pub shards: usize,
    /// Sessions per work-stealing batch ([`TickExecutor::WorkStealing`]).
    pub tick_batch: usize,
    /// Unmeasured ticks before the window opens (covers the registration tick).
    pub warmup_ticks: usize,
    /// Measured ticks.
    pub measure_ticks: usize,
    /// Fraction of the fleet deregistered and replaced per tick (0.0 = static fleet).
    pub churn_per_tick: f64,
    /// Fraction of sessions registered as open-horizon streams fed via `submit`; the rest
    /// are bounded replay sessions.
    pub open_fraction: f64,
    /// Zipf exponent `s` of the popularity, group-size and speed-class skews (0.0 =
    /// uniform; larger = more skewed).
    pub zipf_skew: f64,
    /// Distinct trajectory groups in the shared pool (sessions share them by popularity).
    pub distinct_groups: usize,
    /// Smallest group size drawn.
    pub min_group_size: usize,
    /// Largest group size drawn.
    pub max_group_size: usize,
    /// POIs in the monitored world.
    pub poi_count: usize,
    /// Road network the trajectories move on.  `timestamps` is raised to cover the run
    /// (`warmup + measure + 2`) so capped sessions cannot starve inside the window.
    pub network: NetworkConfig,
    /// Master seed; every derived stream (POIs, network, pool, assignment, churn) is a
    /// deterministic function of it.
    pub seed: u64,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self {
            shards: shards.max(2),
            tick_batch: 256,
            warmup_ticks: 2,
            measure_ticks: 5,
            churn_per_tick: 0.002,
            open_fraction: 0.05,
            zipf_skew: 1.1,
            distinct_groups: 512,
            min_group_size: 2,
            max_group_size: 6,
            poi_count: 4_000,
            network: NetworkConfig {
                domain: DEFAULT_DOMAIN,
                speed_limit: DEFAULT_SPEED_LIMIT,
                ..NetworkConfig::default()
            },
            seed: 42,
        }
    }
}

/// A Zipf(`s`) sampler over ranks `0..n`: rank `k` is drawn with probability proportional
/// to `1/(k+1)^s`.  Sampling is a binary search over the precomputed CDF, O(log n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks (clamped to at least 1) with exponent `s`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("at least one rank");
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen::<f64>();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One recorded trajectory group of the shared pool: the `Arc`-shared recording (for replay
/// feeds) and its pre-drained epochs (for streaming `submit`).
#[derive(Debug)]
struct PoolGroup {
    trajectories: Arc<Vec<Trajectory>>,
    epochs: Arc<Vec<Vec<Point>>>,
}

/// One registered session as the harness tracks it.
struct Slot {
    id: GroupId,
    pool: usize,
    streaming: bool,
    next_epoch: usize,
}

/// What one fleet-size point of the capacity sweep measured.
#[derive(Debug, Clone)]
pub struct CapacityOutcome {
    /// Fleet size of this point.
    pub sessions: usize,
    /// Engine shards used.
    pub shards: usize,
    /// Unmeasured warm-up ticks run first.
    pub warmup_ticks: usize,
    /// Measured ticks.
    pub measure_ticks: usize,
    /// Wall time to register the whole fleet.
    pub register_elapsed: Duration,
    /// Wall time of the measured ticks (including churn, which is part of the workload).
    pub measure_elapsed: Duration,
    /// Session-epochs advanced inside the window.
    pub advanced: usize,
    /// Full safe-region recomputations inside the window.
    pub updated: usize,
    /// Safe-region violations inside the window.
    pub violators: usize,
    /// Sessions deregistered-and-replaced inside the window.
    pub churned: usize,
    /// Per-update CPU p50 over the run's live sessions (batch percentile path).
    pub update_p50: Duration,
    /// Per-update CPU p99 over the run's live sessions (batch percentile path).
    pub update_p99: Duration,
    /// §7.1 wire bytes generated inside the window.
    pub wire_bytes: u64,
    /// Executor counters (batches, steals, imbalance, cache traffic) inside the window.
    pub exec: TickExecCounters,
    /// Shared query-cache counters inside the window.
    pub cache: CacheStats,
    /// The final cumulative engine snapshot (lifetime totals, shard loads, fleet metrics).
    pub report: EngineReport,
}

impl CapacityOutcome {
    /// Measured tick throughput (fleet-wide epochs per second of wall time).
    #[must_use]
    pub fn ticks_per_sec(&self) -> f64 {
        self.measure_ticks as f64 / self.measure_elapsed.as_secs_f64()
    }

    /// Measured session-epoch throughput — the "users served per second" number.
    #[must_use]
    pub fn session_epochs_per_sec(&self) -> f64 {
        self.advanced as f64 / self.measure_elapsed.as_secs_f64()
    }
}

/// The reusable part of the capacity workload: POI tree, road network and trajectory pool.
/// Build once, [`run`](CapacityWorkload::run) per fleet size — the sweep then varies only
/// the fleet, not the world.
#[derive(Debug)]
pub struct CapacityWorkload {
    config: CapacityConfig,
    tree: Arc<RTree>,
    pool: Vec<PoolGroup>,
    popularity: Zipf,
}

impl CapacityWorkload {
    /// Generates the world and the trajectory pool (deterministic per
    /// [`CapacityConfig::seed`]).
    ///
    /// # Panics
    /// Panics on a zero POI count or an empty group-size range.
    #[must_use]
    pub fn build(mut config: CapacityConfig) -> Self {
        assert!(config.poi_count > 0, "the monitored world needs POIs");
        assert!(
            config.min_group_size >= 1 && config.min_group_size <= config.max_group_size,
            "group-size range must be non-empty"
        );
        // Capped sessions replay the recordings; make them outlive the run.
        let run_ticks = config.warmup_ticks + config.measure_ticks + 2;
        config.network.timestamps = config.network.timestamps.max(run_ticks);

        let pois = clustered_pois(
            &PoiConfig {
                count: config.poi_count,
                domain: config.network.domain,
                ..PoiConfig::default()
            },
            config.seed,
        );
        let tree = Arc::new(RTree::bulk_load(&pois));

        let network = RoadNetwork::generate(&config.network, config.seed ^ 0x0a0a);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9001);
        let sizes = Zipf::new(config.max_group_size - config.min_group_size + 1, config.zipf_skew);
        let classes = Zipf::new(config.network.speed_classes.max(1), config.zipf_skew);
        let pool = (0..config.distinct_groups.max(1))
            .map(|g| {
                let size = config.min_group_size + sizes.sample(&mut rng);
                let class = classes.sample(&mut rng);
                let trajectories: Arc<Vec<Trajectory>> = Arc::new(
                    (0..size)
                        .map(|i| network.trajectory(config.seed ^ (g * 131 + i) as u64, class))
                        .collect(),
                );
                let mut feed = TrajectoryFeed::new(Arc::clone(&trajectories));
                let mut epochs = Vec::with_capacity(config.network.timestamps);
                while let Some(positions) = feed.next_epoch() {
                    epochs.push(positions);
                }
                PoolGroup { trajectories, epochs: Arc::new(epochs) }
            })
            .collect();
        let popularity = Zipf::new(config.distinct_groups.max(1), config.zipf_skew);
        Self { config, tree, pool, popularity }
    }

    /// The workload's configuration.
    #[must_use]
    pub fn config(&self) -> &CapacityConfig {
        &self.config
    }

    /// The POI tree the fleet monitors.
    #[must_use]
    pub fn tree(&self) -> &Arc<RTree> {
        &self.tree
    }

    /// Registers one session (pool group and horizon kind drawn from the skews).
    fn register_one(&self, engine: &mut MonitoringEngine, rng: &mut StdRng) -> Slot {
        let pool = self.popularity.sample(rng);
        let group = &self.pool[pool];
        let streaming = rng.gen::<f64>() < self.config.open_fraction;
        let config = MonitorConfig::new(Objective::Max, Method::circle());
        let id = if streaming {
            engine.register_stream(group.trajectories.len(), config)
        } else {
            engine.register(TrajectoryFeed::new(Arc::clone(&group.trajectories)), config)
        };
        Slot { id, pool, streaming, next_epoch: 0 }
    }

    /// Queues the next epoch for every open-horizon stream (replay feeds pull their own).
    fn feed_streams(&self, engine: &mut MonitoringEngine, slots: &mut [Slot]) {
        for slot in slots.iter_mut().filter(|s| s.streaming) {
            let epochs = &self.pool[slot.pool].epochs;
            let positions = epochs[slot.next_epoch % epochs.len()].clone();
            slot.next_epoch += 1;
            engine
                .submit(EpochUpdate { group_id: slot.id, positions })
                .expect("streams have open horizons and matching group sizes");
        }
    }

    /// Deregisters `count` random sessions and replaces each with a fresh registration.
    fn churn(
        &self,
        engine: &mut MonitoringEngine,
        slots: &mut Vec<Slot>,
        rng: &mut StdRng,
        count: usize,
    ) -> usize {
        let count = count.min(slots.len());
        for _ in 0..count {
            let victim = slots.swap_remove(rng.gen_range(0..slots.len()));
            engine.deregister(victim.id).expect("tracked sessions are registered");
            slots.push(self.register_one(engine, rng));
        }
        count
    }

    /// Runs one fleet-size point: register `sessions`, warm up, measure, report.
    ///
    /// The engine is fresh per call (work-stealing executor, shared query cache attached),
    /// so sweep points are independent; the world and trajectory pool are shared across
    /// calls by construction.
    #[must_use]
    pub fn run(&self, sessions: usize) -> CapacityOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xf1ee7 ^ sessions as u64);
        let executor = TickExecutor::WorkStealing { batch: cfg.tick_batch.max(1) };
        let mut engine =
            MonitoringEngine::with_executor(Arc::clone(&self.tree), cfg.shards.max(1), executor)
                .with_query_cache(QueryCache::new());

        let t_register = Instant::now();
        let mut slots: Vec<Slot> =
            (0..sessions).map(|_| self.register_one(&mut engine, &mut rng)).collect();
        let register_elapsed = t_register.elapsed();

        let churn_per_tick = (cfg.churn_per_tick * sessions as f64).round() as usize;
        for _ in 0..cfg.warmup_ticks {
            self.feed_streams(&mut engine, &mut slots);
            engine.tick();
            self.churn(&mut engine, &mut slots, &mut rng, churn_per_tick);
        }
        let warm = engine.report();

        let (mut advanced, mut updated, mut violators, mut churned) = (0, 0, 0, 0);
        let t_measure = Instant::now();
        for _ in 0..cfg.measure_ticks {
            self.feed_streams(&mut engine, &mut slots);
            let summary = engine.tick();
            advanced += summary.advanced;
            updated += summary.updated;
            violators += summary.violators;
            churned += self.churn(&mut engine, &mut slots, &mut rng, churn_per_tick);
        }
        let measure_elapsed = t_measure.elapsed();

        let report = engine.report();
        let percentiles = report.update_time_percentiles(&[50.0, 99.0]);
        let exec = TickExecCounters {
            batches: report.exec.batches - warm.exec.batches,
            steals: report.exec.steals - warm.exec.steals,
            imbalance: report.exec.imbalance - warm.exec.imbalance,
            cache_hits: report.exec.cache_hits - warm.exec.cache_hits,
            cache_misses: report.exec.cache_misses - warm.exec.cache_misses,
        };
        let cache = report.cache.unwrap_or_default().since(&warm.cache.unwrap_or_default());
        CapacityOutcome {
            sessions,
            shards: cfg.shards.max(1),
            warmup_ticks: cfg.warmup_ticks,
            measure_ticks: cfg.measure_ticks,
            register_elapsed,
            measure_elapsed,
            advanced,
            updated,
            violators,
            churned,
            update_p50: percentiles[0],
            update_p99: percentiles[1],
            wire_bytes: report.wire_bytes() - warm.wire_bytes(),
            exec,
            cache,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CapacityConfig {
        CapacityConfig {
            shards: 2,
            warmup_ticks: 1,
            measure_ticks: 3,
            distinct_groups: 8,
            poi_count: 300,
            churn_per_tick: 0.05,
            open_fraction: 0.25,
            network: NetworkConfig {
                grid: 6,
                timestamps: 8,
                domain: 1_000.0,
                speed_limit: 10.0,
                ..NetworkConfig::default()
            },
            ..CapacityConfig::default()
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(16, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 16];
        for _ in 0..4_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] * 2, "rank 0 must dominate rank 8: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 4_000);
        // Degenerate: a single rank always samples 0; s = 0 is uniform-ish but valid.
        assert_eq!(Zipf::new(1, 1.0).sample(&mut rng), 0);
        let _ = Zipf::new(4, 0.0).sample(&mut rng);
    }

    #[test]
    fn capacity_run_produces_consistent_numbers() {
        let workload = CapacityWorkload::build(tiny_config());
        let outcome = workload.run(200);
        assert_eq!(outcome.sessions, 200);
        // Every live session advances on every measured tick (streams are fed, replays
        // have covering horizons), modulo the churned ones mid-replacement.
        assert!(outcome.advanced >= 3 * 150, "advanced {}", outcome.advanced);
        assert!(outcome.ticks_per_sec() > 0.0);
        assert!(outcome.session_epochs_per_sec() > 0.0);
        assert!(outcome.churned > 0, "5% churn over 3 ticks must churn someone");
        assert!(outcome.wire_bytes > 0, "registrations inside the run produce traffic");
        assert!(outcome.update_p50 <= outcome.update_p99);
        // Fleet accounting: every session still registered, churn left retired records.
        assert_eq!(outcome.report.groups, 200);
        assert!(outcome.report.retired > 0 || outcome.report.reclaimed_users > 0);
        let cache = outcome.report.cache.expect("capacity runs attach the shared cache");
        assert!(cache.hits > 0, "a Zipf fleet over a shared pool must hit the cache");
    }

    #[test]
    fn sweep_points_share_the_world() {
        let workload = CapacityWorkload::build(tiny_config());
        let small = workload.run(50);
        let large = workload.run(150);
        assert!(large.advanced > small.advanced);
        assert!(small.report.fleet.timestamps > 0, "measured ticks advance the fleet clock");
        assert_eq!(workload.tree().len(), 300);
    }
}
