//! Data-set and workload construction shared by every figure binary.

use mpn_geom::Point;
use mpn_index::RTree;
use mpn_mobility::network::{NetworkConfig, RoadNetwork};
use mpn_mobility::poi::{clustered_pois, subsample, PoiConfig};
use mpn_mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn_mobility::{
    partition_into_groups, GroupWorkload, Trajectory, DEFAULT_DOMAIN, DEFAULT_SPEED_LIMIT,
};

use crate::params::Scale;

/// Which trajectory substitute a workload uses (Section 7.1's two trajectory sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryKind {
    /// Taxi-like hotspot trajectories — the GeoLife substitute.
    Geolife,
    /// Network-constrained trajectories — the Oldenburg (Brinkhoff) substitute.
    Oldenburg,
}

impl TrajectoryKind {
    /// Short label used in CSV headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TrajectoryKind::Geolife => "geolife",
            TrajectoryKind::Oldenburg => "oldenburg",
        }
    }

    /// Both trajectory kinds, in the order the figures present them.
    #[must_use]
    pub fn all() -> [TrajectoryKind; 2] {
        [TrajectoryKind::Geolife, TrajectoryKind::Oldenburg]
    }
}

/// Builds the POI R-tree for a scale, keeping `fraction` of the full data set
/// (the "vary data size n" axis).
#[must_use]
pub fn build_poi_tree(scale: Scale, fraction: f64, seed: u64) -> RTree {
    let config =
        PoiConfig { count: scale.poi_count(), domain: DEFAULT_DOMAIN, ..PoiConfig::default() };
    let pois: Vec<Point> = clustered_pois(&config, seed);
    let kept = subsample(&pois, fraction, seed ^ 0x5eed);
    RTree::bulk_load(&kept)
}

/// Builds a multi-group workload of the given kind.
///
/// `speed_fraction` applies the speed-scaling procedure of Section 7.2 (1.0 = the speed
/// limit `V`).
#[must_use]
pub fn build_workload(
    kind: TrajectoryKind,
    scale: Scale,
    group_size: usize,
    speed_fraction: f64,
    seed: u64,
) -> GroupWorkload {
    let total = scale.groups() * group_size;
    let timestamps = scale.timestamps();
    let trajectories: Vec<Trajectory> = match kind {
        TrajectoryKind::Geolife => {
            let config = TaxiConfig {
                domain: DEFAULT_DOMAIN,
                speed_limit: DEFAULT_SPEED_LIMIT,
                timestamps,
                ..TaxiConfig::default()
            };
            (0..total).map(|i| taxi_trajectory(&config, seed.wrapping_add(i as u64))).collect()
        }
        TrajectoryKind::Oldenburg => {
            let config = NetworkConfig {
                domain: DEFAULT_DOMAIN,
                speed_limit: DEFAULT_SPEED_LIMIT,
                timestamps,
                ..NetworkConfig::default()
            };
            let network = RoadNetwork::generate(&config, seed);
            (0..total)
                .map(|i| {
                    network.trajectory(seed.wrapping_add(1000 + i as u64), i % config.speed_classes)
                })
                .collect()
        }
    };
    let workload = partition_into_groups(trajectories, group_size);
    if (speed_fraction - 1.0).abs() < 1e-12 {
        workload
    } else {
        workload.scale_speed(speed_fraction, timestamps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poi_tree_respects_the_fraction() {
        let full = build_poi_tree(Scale::Quick, 1.0, 1);
        let half = build_poi_tree(Scale::Quick, 0.5, 1);
        assert_eq!(full.len(), Scale::Quick.poi_count());
        assert_eq!(half.len(), Scale::Quick.poi_count() / 2);
    }

    #[test]
    fn workloads_have_the_requested_shape() {
        for kind in TrajectoryKind::all() {
            let w = build_workload(kind, Scale::Quick, 3, 1.0, 7);
            assert_eq!(w.group_count(), Scale::Quick.groups());
            for g in w.iter() {
                assert_eq!(g.len(), 3);
                for t in g {
                    assert_eq!(t.len(), Scale::Quick.timestamps());
                }
            }
        }
    }

    #[test]
    fn speed_scaling_produces_slower_users() {
        let full = build_workload(TrajectoryKind::Geolife, Scale::Quick, 2, 1.0, 9);
        let slow = build_workload(TrajectoryKind::Geolife, Scale::Quick, 2, 0.25, 9);
        let mean = |w: &GroupWorkload| {
            let mut total = 0.0;
            let mut n = 0;
            for g in w.iter() {
                for t in g {
                    total += t.mean_step();
                    n += 1;
                }
            }
            total / f64::from(n)
        };
        assert!(mean(&slow) < mean(&full) * 0.5);
    }

    #[test]
    fn kind_names() {
        assert_eq!(TrajectoryKind::Geolife.name(), "geolife");
        assert_eq!(TrajectoryKind::Oldenburg.name(), "oldenburg");
    }
}
