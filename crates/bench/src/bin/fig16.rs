//! Figure 16: MPN, effect of the buffering parameter `b` — Tile-D vs Tile-D-b
//! (update frequency and CPU time).

use mpn_bench::harness::buffering_suite;
use mpn_bench::params::{Scale, BUFFER_SIZES, DEFAULT_GROUP_SIZE};
use mpn_bench::{build_poi_tree, build_workload, print_series, run_cell, TrajectoryKind};
use mpn_core::Objective;

fn main() {
    let scale = Scale::from_env();
    eprintln!("fig16: scale = {}", scale.name());
    for kind in TrajectoryKind::all() {
        let tree = build_poi_tree(scale, 1.0, 42);
        let workload = build_workload(kind, scale, DEFAULT_GROUP_SIZE, 1.0, 400);
        let mut rows = Vec::new();
        for &b in &BUFFER_SIZES {
            for spec in buffering_suite(b) {
                let summary = run_cell(&tree, &workload, Objective::Max, spec.method);
                rows.push((format!("{b}"), spec.label, summary));
            }
        }
        print_series(
            &format!("Figure 16 ({}) — vary buffering parameter b", kind.name()),
            "b",
            &rows,
        );
    }
}
