//! Diagnostic tool: prints safe-region extents and work counters for one snapshot computation
//! on a representative workload.  Useful when tuning the tile parameters (`α`, `L`, ordering)
//! or investigating why a method's update frequency differs from expectations.

use mpn_bench::params::Scale;
use mpn_bench::{build_poi_tree, build_workload, TrajectoryKind};
use mpn_core::region::{TileFrame, TileRegion};
use mpn_core::tile_verify::{GtVerifier, TileVerifier};
use mpn_core::{circle_msr, tile_msr, Objective, TileMsrConfig, DEFAULT_RADIUS_CAP};
use mpn_geom::max_dist_to_set;

fn main() {
    let scale = Scale::from_env();
    let tree = build_poi_tree(scale, 1.0, 42);
    let workload = build_workload(TrajectoryKind::Geolife, scale, 3, 1.0, 100);
    let users = workload.locations_at(0, 50);

    let circle = circle_msr(&tree, &users, Objective::Max, DEFAULT_RADIUS_CAP);
    println!("POIs: {}   users: {:?}", tree.len(), users);
    println!("circle radius r_max = {:.2}", circle.radius);

    for (label, config) in [
        ("Tile", TileMsrConfig::tile()),
        ("Tile-D", TileMsrConfig::tile_directed(std::f64::consts::FRAC_PI_4)),
        ("Tile-D-b", TileMsrConfig::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 100)),
    ] {
        let out = tile_msr(&tree, &users, Objective::Max, &config, None);
        println!("\n== {label} ==");
        println!(
            "  tiles accepted {}  rejected {}  verify calls {}  candidate checks {}  rtree queries {}",
            out.stats.tiles_accepted,
            out.stats.tiles_rejected,
            out.stats.verify_calls,
            out.stats.candidates_checked,
            out.stats.rtree_queries
        );
        for (i, region) in out.regions.iter().enumerate() {
            let reach = region.max_dist(users[i]);
            println!(
                "  user {i}: {} tiles, area {:.0} (circle area {:.0}), reach {:.1} (circle {:.1})",
                region.len(),
                region.area(),
                std::f64::consts::PI * circle.radius * circle.radius,
                reach,
                circle.radius
            );
        }
    }

    // Round-by-round growth trace: how tiles are distributed across users by the round-robin.
    println!("\n== per-round growth trace (Tile) ==");
    for alpha in [1, 2, 3, 5, 10, 30] {
        let config = TileMsrConfig { alpha, ..TileMsrConfig::tile() };
        let out = tile_msr(&tree, &users, Objective::Max, &config, None);
        let sizes: Vec<usize> = out.regions.iter().map(TileRegion::len).collect();
        println!("  alpha = {alpha:>2}: tiles per user = {sizes:?}");
    }

    // Per-user seed-state acceptance probe: with everyone at her seed tile, how many of the
    // 8 first-layer tiles does GT-Verify accept for each user, and does a brute-force check
    // agree that the rejected ones are genuinely unsafe?
    println!("\n== first-layer acceptance probe (all regions at their seeds) ==");
    let delta = std::f64::consts::SQRT_2 * circle.radius;
    let p_opt = circle.optimal.entry.location;
    let pois: Vec<_> = tree.iter().map(|e| e.location).collect();
    for user in 0..users.len() {
        let seeds: Vec<TileRegion> = users
            .iter()
            .map(|u| TileRegion::with_seed(TileFrame::centered_at(*u, delta)))
            .collect();
        let frame = seeds[user].frame();
        let mut accepted = 0;
        let mut oracle_valid = 0;
        for cell in mpn_core::ordering::ring_cells(1) {
            let square = frame.square(cell);
            let gt_ok = tree
                .iter()
                .filter(|e| e.location != p_opt)
                .all(|e| GtVerifier.verify(&seeds, user, &square, e.location, e.id, p_opt));
            // Brute-force: sample corners of every region/tile and check the optimum holds.
            let mut valid = true;
            'outer: for c0 in corner_samples(&seeds, 0, user, &square) {
                for c1 in corner_samples(&seeds, 1, user, &square) {
                    for c2 in corner_samples(&seeds, 2, user, &square) {
                        let instance = [c0, c1, c2];
                        let best = pois
                            .iter()
                            .map(|p| max_dist_to_set(*p, &instance))
                            .fold(f64::INFINITY, f64::min);
                        if max_dist_to_set(p_opt, &instance) > best + 1e-6 {
                            valid = false;
                            break 'outer;
                        }
                    }
                }
            }
            if gt_ok {
                accepted += 1;
            }
            if valid {
                oracle_valid += 1;
            }
        }
        println!(
            "  user {user}: GT accepts {accepted}/8 layer-1 tiles, corner-sampling oracle says {oracle_valid}/8 are valid"
        );
    }
}

fn corner_samples(
    seeds: &[TileRegion],
    who: usize,
    user: usize,
    tile: &mpn_geom::Square,
) -> Vec<mpn_geom::Point> {
    let mut out = Vec::new();
    if who == user {
        out.extend(tile.corners());
        out.push(tile.center);
    } else {
        for sq in seeds[who].squares() {
            out.extend(sq.corners());
            out.push(sq.center);
        }
    }
    out
}
