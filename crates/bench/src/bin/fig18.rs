//! Figure 18: Sum-MPN, effect of the data size `n`.

use mpn_bench::params::{Scale, DATA_FRACTIONS, DEFAULT_GROUP_SIZE};
use mpn_bench::{
    build_poi_tree, build_workload, method_suite, print_series, run_cell, TrajectoryKind,
};
use mpn_core::Objective;

fn main() {
    let scale = Scale::from_env();
    eprintln!("fig18: scale = {}", scale.name());
    for kind in TrajectoryKind::all() {
        let workload = build_workload(kind, scale, DEFAULT_GROUP_SIZE, 1.0, 600);
        let mut rows = Vec::new();
        for &fraction in &DATA_FRACTIONS {
            let tree = build_poi_tree(scale, fraction, 42);
            for spec in method_suite() {
                let summary = run_cell(&tree, &workload, Objective::Sum, spec.method);
                rows.push((format!("{fraction}"), spec.label, summary));
            }
        }
        print_series(
            &format!("Figure 18 ({}) — Sum-MPN, vary data size n", kind.name()),
            "n_fraction",
            &rows,
        );
    }
}
