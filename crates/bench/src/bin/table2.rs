//! Table 2: the experiment parameter grid (defaults and ranges).

fn main() {
    mpn_bench::params::print_table2();
}
