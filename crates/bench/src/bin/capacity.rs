//! The million-session capacity sweep (ROADMAP item 5).
//!
//! Builds one [`CapacityWorkload`] (POI tree + road network + Zipf trajectory pool) and
//! runs it at each fleet size of `MPN_CAP_SWEEP` (default `10000,100000,1000000`), printing
//! the scaling series and writing the JSON report to `MPN_OUT` (default `BENCH_10.json`).
//! All knobs are environment variables — see the `mpn-bench` crate docs for the table.
//!
//! Exits non-zero if any sweep point measures zero throughput, so CI can gate on it.

use std::time::Instant;

use mpn_bench::{render_json, render_table, CapacityConfig, CapacityWorkload};

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let defaults = CapacityConfig::default();
    let config = CapacityConfig {
        shards: env_parse("MPN_CAP_SHARDS", defaults.shards),
        tick_batch: env_parse("MPN_CAP_BATCH", defaults.tick_batch),
        warmup_ticks: env_parse("MPN_CAP_WARMUP", defaults.warmup_ticks),
        measure_ticks: env_parse("MPN_CAP_TICKS", defaults.measure_ticks),
        churn_per_tick: env_parse("MPN_CAP_CHURN", defaults.churn_per_tick),
        open_fraction: env_parse("MPN_CAP_OPEN", defaults.open_fraction),
        zipf_skew: env_parse("MPN_CAP_ZIPF", defaults.zipf_skew),
        distinct_groups: env_parse("MPN_CAP_GROUPS", defaults.distinct_groups),
        seed: env_parse("MPN_CAP_SEED", defaults.seed),
        ..defaults
    };
    let sweep_sizes: Vec<usize> = std::env::var("MPN_CAP_SWEEP")
        .unwrap_or_else(|_| "10000,100000,1000000".to_owned())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!sweep_sizes.is_empty(), "MPN_CAP_SWEEP must name at least one fleet size");
    let out_path = std::env::var("MPN_OUT").unwrap_or_else(|_| "BENCH_10.json".to_owned());

    eprintln!(
        "capacity: building world (pois={}, groups={}, shards={}, zipf={})",
        config.poi_count, config.distinct_groups, config.shards, config.zipf_skew
    );
    let t_build = Instant::now();
    let workload = CapacityWorkload::build(config);
    eprintln!("capacity: world ready in {:.2?}", t_build.elapsed());

    let mut sweep = Vec::with_capacity(sweep_sizes.len());
    for &sessions in &sweep_sizes {
        eprintln!("capacity: running fleet of {sessions} sessions");
        let outcome = workload.run(sessions);
        eprintln!(
            "capacity: {sessions} sessions — register {:.2?}, measure {:.2?} ({:.0} session-epochs/s)",
            outcome.register_elapsed,
            outcome.measure_elapsed,
            outcome.session_epochs_per_sec()
        );
        assert!(
            outcome.session_epochs_per_sec() > 0.0,
            "fleet of {sessions} sessions measured zero throughput"
        );
        sweep.push(outcome);
    }

    print!("{}", render_table(&sweep));
    let json = render_json(workload.config(), &sweep);
    std::fs::write(&out_path, &json).expect("writing the JSON report must succeed");
    eprintln!("capacity: wrote {out_path}");
}
