//! Figure 15: MPN, effect of the user speed (as a fraction of the speed limit `V`).

use mpn_bench::params::{Scale, DEFAULT_GROUP_SIZE, SPEED_FRACTIONS};
use mpn_bench::{
    build_poi_tree, build_workload, method_suite, print_series, run_cell, TrajectoryKind,
};
use mpn_core::Objective;

fn main() {
    let scale = Scale::from_env();
    eprintln!("fig15: scale = {}", scale.name());
    for kind in TrajectoryKind::all() {
        let tree = build_poi_tree(scale, 1.0, 42);
        let mut rows = Vec::new();
        for &speed in &SPEED_FRACTIONS {
            let workload = build_workload(kind, scale, DEFAULT_GROUP_SIZE, speed, 300);
            for spec in method_suite() {
                let summary = run_cell(&tree, &workload, Objective::Max, spec.method);
                rows.push((format!("{speed}"), spec.label, summary));
            }
        }
        print_series(
            &format!("Figure 15 ({}) — vary user speed", kind.name()),
            "speed_fraction",
            &rows,
        );
    }
}
