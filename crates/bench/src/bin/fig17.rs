//! Figure 17: Sum-MPN, effect of the user group size `m`.

use mpn_bench::params::{Scale, GROUP_SIZES};
use mpn_bench::{
    build_poi_tree, build_workload, method_suite, print_series, run_cell, TrajectoryKind,
};
use mpn_core::Objective;

fn main() {
    let scale = Scale::from_env();
    eprintln!("fig17: scale = {}", scale.name());
    for kind in TrajectoryKind::all() {
        let tree = build_poi_tree(scale, 1.0, 42);
        let mut rows = Vec::new();
        for &m in &GROUP_SIZES {
            let workload = build_workload(kind, scale, m, 1.0, 500 + m as u64);
            for spec in method_suite() {
                let summary = run_cell(&tree, &workload, Objective::Sum, spec.method);
                rows.push((format!("{m}"), spec.label, summary));
            }
        }
        print_series(
            &format!("Figure 17 ({}) — Sum-MPN, vary group size m", kind.name()),
            "m",
            &rows,
        );
    }
}
