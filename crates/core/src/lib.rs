//! Independent safe regions for meeting-point notification — the core algorithms of
//! *"Efficient Notification of Meeting Points for Moving Groups via Independent Safe Regions"*
//! (Li, Thomsen, Yiu, Mamoulis).
//!
//! A group of moving users continuously needs the optimal meeting point among a set of POIs:
//! the point minimising either the **maximum** user distance (the MPN problem) or the **sum**
//! of user distances (the Sum-MPN variant).  To keep the communication frequency low, the
//! server hands each user an *independent safe region*; while every user stays inside her own
//! region the meeting point provably cannot change (Definition 3).
//!
//! This crate implements both safe-region families of the paper and all their optimisations:
//!
//! | Paper section | Functionality | Module |
//! |---|---|---|
//! | §4.1 Lemma 1 | conservative group verification | [`verify`] |
//! | §4.2 Alg. 1, Thm. 1/5 | circular safe regions (Circle-MSR) | [`circle`] |
//! | §5.1–5.2 Alg. 2–3 | tile-based safe regions (Tile-MSR), orderings | [`tile`], [`ordering`] |
//! | §5.3 Thm. 2/3, Alg. 4 | IT-Verify, GT-Verify, index pruning | [`tile_verify`], [`tile`] |
//! | §5.4 Alg. 5, Thm. 4 | buffering of GNN prefixes | [`buffer`] |
//! | §6 Alg. 6, Thm. 5–7 | the sum-optimal variant | [`tile_verify::SumVerifier`], [`circle`], [`buffer`] |
//! | §7.1 packet model | lossless tile-region compression | [`compress`] |
//!
//! # Architecture: engines and sessions
//!
//! Computation is dispatched through the open [`SafeRegionEngine`] trait ([`engine`]):
//! [`CircleEngine`] and [`TileEngine`] implement the two families above, and new region
//! families plug in by implementing the trait — neither [`MpnServer`] nor the monitoring
//! layer in `mpn-sim` enumerates them.  [`Method`] remains as a plain *description* of a
//! configuration that resolves to an engine via [`Method::engine`].
//!
//! The paper's server is stateful: between updates for the same group it keeps the per-user
//! heading predictors, the §5.4 GNN buffer and the last answer.  [`SessionState`]
//! ([`session`]) carries exactly that state through
//! [`SafeRegionEngine::compute`](engine::SafeRegionEngine::compute) /
//! [`MpnServer::compute_session`], so with persistent buffers enabled a `Tile-D-b` update
//! typically issues **one** R-tree query (the Circle-MSR seed) instead of two.
//!
//! The entry point for one-shot queries is [`MpnServer`]:
//!
//! ```
//! use mpn_core::{Method, MpnServer, Objective};
//! use mpn_geom::Point;
//! use mpn_index::RTree;
//!
//! let pois = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(5.0, 8.0)];
//! let tree = RTree::bulk_load(&pois);
//! let users = vec![Point::new(1.0, 1.0), Point::new(3.0, 0.0)];
//!
//! let server = MpnServer::new(&tree, Objective::Max, Method::tile());
//! let answer = server.compute(&users);
//! assert!(answer.all_inside(&users));
//! ```

#![forbid(unsafe_code)]

pub mod buffer;
pub mod circle;
pub mod compress;
pub mod engine;
pub mod ordering;
pub mod region;
pub mod server;
pub mod session;
pub mod tile;
pub mod tile_verify;
pub mod verify;

pub use buffer::BufferSet;
pub use circle::{circle_msr, CircleMsr, DEFAULT_RADIUS_CAP};
pub use compress::{
    packets_for_values, region_value_count, CompressedTileRegion, VALUES_PER_PACKET,
};
pub use engine::{CircleEngine, EngineContext, SafeRegionEngine, TileEngine};
pub use ordering::TileOrdering;
pub use region::{SafeRegion, TileCell, TileFrame, TileRegion};
pub use server::{Answer, Method, MpnServer};
pub use session::SessionState;
pub use tile::{tile_msr, tile_msr_cached, BufferCache, TileMsr, TileMsrConfig};
pub use tile_verify::VerifierKind;

use mpn_index::{Aggregate, QueryStats};

/// The meeting-point objective monitored by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimise the maximum distance any user travels (MPN, Definition 2).
    #[default]
    Max,
    /// Minimise the total distance travelled by the group (Sum-MPN, Definition 8).
    Sum,
}

impl Objective {
    /// The aggregate distance function used by the GNN queries for this objective.
    #[must_use]
    pub fn aggregate(self) -> Aggregate {
        match self {
            Objective::Max => Aggregate::Max,
            Objective::Sum => Aggregate::Sum,
        }
    }

    /// Human-readable name used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Objective::Max => "MPN",
            Objective::Sum => "Sum-MPN",
        }
    }
}

/// Work counters for one safe-region computation.
///
/// These drive the efficiency plots of the evaluation: the number of R-tree queries is what the
/// buffering optimisation reduces, and verification counts explain the CPU-time differences
/// between Circle, Tile and Tile-D.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComputeStats {
    /// R-tree traversal work of the GNN queries (top-2 for the radius, top-(b+1) for buffering).
    pub gnn: QueryStats,
    /// R-tree traversal work of candidate retrieval (index pruning).
    pub candidate_retrieval: QueryStats,
    /// Number of distinct R-tree queries issued.
    pub rtree_queries: usize,
    /// Number of Divide-Verify invocations.
    pub verify_calls: usize,
    /// Tiles accepted into safe regions.
    pub tiles_accepted: usize,
    /// Tiles (or sub-tiles) rejected at the lowest recursion level.
    pub tiles_rejected: usize,
    /// Total (tile, candidate) verification pairs evaluated.
    pub candidates_checked: usize,
}

impl ComputeStats {
    /// Adds another record into this one (used when aggregating over a monitoring run).
    pub fn absorb(&mut self, other: &ComputeStats) {
        self.gnn.absorb(other.gnn);
        self.candidate_retrieval.absorb(other.candidate_retrieval);
        self.rtree_queries += other.rtree_queries;
        self.verify_calls += other.verify_calls;
        self.tiles_accepted += other.tiles_accepted;
        self.tiles_rejected += other.tiles_rejected;
        self.candidates_checked += other.candidates_checked;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_maps_to_aggregate_and_names() {
        assert_eq!(Objective::Max.aggregate(), Aggregate::Max);
        assert_eq!(Objective::Sum.aggregate(), Aggregate::Sum);
        assert_eq!(Objective::Max.name(), "MPN");
        assert_eq!(Objective::Sum.name(), "Sum-MPN");
        assert_eq!(Objective::default(), Objective::Max);
    }

    #[test]
    fn compute_stats_absorb_accumulates_every_field() {
        let mut a = ComputeStats {
            rtree_queries: 1,
            verify_calls: 2,
            tiles_accepted: 3,
            tiles_rejected: 4,
            candidates_checked: 5,
            ..ComputeStats::default()
        };
        let b = ComputeStats {
            rtree_queries: 10,
            verify_calls: 20,
            tiles_accepted: 30,
            tiles_rejected: 40,
            candidates_checked: 50,
            ..ComputeStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.rtree_queries, 11);
        assert_eq!(a.verify_calls, 22);
        assert_eq!(a.tiles_accepted, 33);
        assert_eq!(a.tiles_rejected, 44);
        assert_eq!(a.candidates_checked, 55);
    }
}
