//! Lossless compression of tile-based safe regions for transmission.
//!
//! The experiments of Section 7 count communication in TCP packets of 67 double-precision
//! values (576-byte MTU minus a 40-byte header).  An uncompressed tile region costs 3 values
//! per square, so a region with dozens of tiles would need several packets.  Our preliminary
//!-work-style lossless encoding instead ships the shared frame once (origin, base tile size)
//! and packs each tile's grid identity — subdivision level plus integer offsets — into 32 bits,
//! i.e. two tiles per transmitted value.  Decoding reproduces the region exactly (bit-for-bit
//! identical cells), which the round-trip tests assert.

use crate::region::{TileCell, TileFrame, TileRegion};

/// Number of payload doubles that fit into one TCP packet (§7.1): `(576 − 40) / 8 = 67`.
pub const VALUES_PER_PACKET: usize = 67;

/// Bit budget of each encoded tile: 4 bits of level + 14 bits per signed coordinate.
const LEVEL_BITS: u32 = 4;
const COORD_BITS: u32 = 14;
const COORD_BIAS: i32 = 1 << (COORD_BITS - 1);

/// A compressed, losslessly decodable tile region.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedTileRegion {
    origin_x: f64,
    origin_y: f64,
    delta: f64,
    count: usize,
    words: Vec<u64>,
}

/// Errors produced while encoding a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    /// A tile's grid coordinates or level do not fit the fixed-width encoding.
    CellOutOfRange {
        /// The offending cell.
        cell: TileCell,
    },
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::CellOutOfRange { cell } => {
                write!(f, "tile cell {cell:?} exceeds the 4+14+14 bit encoding range")
            }
        }
    }
}

impl std::error::Error for CompressError {}

impl CompressedTileRegion {
    /// Encodes a tile region.  Fails only for cells outside the fixed-width grid range, which
    /// cannot be produced by Tile-MSR with the default parameters (α ≤ 8191, L ≤ 15).
    pub fn encode(region: &TileRegion) -> Result<Self, CompressError> {
        let frame = region.frame();
        let mut words = Vec::with_capacity(region.len().div_ceil(2));
        let mut current: u64 = 0;
        for (i, cell) in region.cells().iter().enumerate() {
            let packed = pack_cell(*cell)?;
            if i % 2 == 0 {
                current = u64::from(packed);
            } else {
                current |= u64::from(packed) << 32;
                words.push(current);
                current = 0;
            }
        }
        if region.len() % 2 == 1 {
            words.push(current);
        }
        Ok(Self {
            origin_x: frame.origin.x,
            origin_y: frame.origin.y,
            delta: frame.delta,
            count: region.len(),
            words,
        })
    }

    /// Decodes back into a tile region (exact inverse of [`CompressedTileRegion::encode`]).
    #[must_use]
    pub fn decode(&self) -> TileRegion {
        let frame = TileFrame {
            origin: mpn_geom::Point::new(self.origin_x, self.origin_y),
            delta: self.delta,
        };
        let mut region = TileRegion::new(frame);
        for i in 0..self.count {
            let word = self.words[i / 2];
            let half = if i % 2 == 0 { word & 0xFFFF_FFFF } else { word >> 32 };
            region.push(unpack_cell(half as u32));
        }
        region
    }

    /// Number of tiles in the encoded region.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.count
    }

    /// Number of double-precision values needed to transmit the region:
    /// a 4-value header (origin x/y, `δ`, tile count) plus one value per pair of tiles.
    #[must_use]
    pub fn value_count(&self) -> usize {
        4 + self.words.len()
    }

    /// Number of TCP packets needed to transmit the region (§7.1 packet model).
    #[must_use]
    pub fn packet_count(&self) -> usize {
        self.value_count().div_ceil(VALUES_PER_PACKET)
    }
}

fn pack_cell(cell: TileCell) -> Result<u32, CompressError> {
    let level_ok = u32::from(cell.level) < (1 << LEVEL_BITS);
    let range = -(COORD_BIAS)..(COORD_BIAS);
    if !level_ok || !range.contains(&cell.ix) || !range.contains(&cell.iy) {
        return Err(CompressError::CellOutOfRange { cell });
    }
    let ix = (cell.ix + COORD_BIAS) as u32;
    let iy = (cell.iy + COORD_BIAS) as u32;
    Ok(u32::from(cell.level) | (ix << LEVEL_BITS) | (iy << (LEVEL_BITS + COORD_BITS)))
}

fn unpack_cell(bits: u32) -> TileCell {
    let level = (bits & ((1 << LEVEL_BITS) - 1)) as u8;
    let ix = ((bits >> LEVEL_BITS) & ((1 << COORD_BITS) - 1)) as i32 - COORD_BIAS;
    let iy = ((bits >> (LEVEL_BITS + COORD_BITS)) & ((1 << COORD_BITS) - 1)) as i32 - COORD_BIAS;
    TileCell::new(level, ix, iy)
}

/// Number of packets needed to transmit `values` double-precision values.
#[must_use]
pub fn packets_for_values(values: usize) -> usize {
    values.div_ceil(VALUES_PER_PACKET).max(usize::from(values > 0))
}

/// Number of §7.1 payload values needed to ship a safe region to a client: 3 per circle,
/// 3 per plain tile, or the [`CompressedTileRegion`] count when `compress` is set (the
/// paper's default).
///
/// This is the single definition of the region payload in the §7.1 cost model — the
/// simulation's message accounting and the `mpn-proto` wire accounting are both pinned to it
/// (`tests/proto_parity.rs`).  Cells outside the compressed encoding's range cannot occur
/// with the default parameters; if they do, the plain encoding is charged rather than
/// undercounting.
#[must_use]
pub fn region_value_count(region: &crate::region::SafeRegion, compress: bool) -> usize {
    match region {
        crate::region::SafeRegion::Circle(_) => 3,
        crate::region::SafeRegion::Tiles(tiles) => {
            if compress {
                CompressedTileRegion::encode(tiles)
                    .map(|c| c.value_count())
                    .unwrap_or_else(|_| 3 * tiles.len())
            } else {
                3 * tiles.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_geom::Point;

    fn sample_region() -> TileRegion {
        let mut r = TileRegion::with_seed(TileFrame::centered_at(Point::new(3.0, -2.0), 1.5));
        for (level, ix, iy) in
            [(0, 1, 0), (0, -1, 2), (1, 3, -2), (2, -5, 7), (3, 11, 11), (0, 4, -4), (1, 0, 5)]
        {
            r.push(TileCell::new(level, ix, iy));
        }
        r
    }

    #[test]
    fn round_trip_is_lossless() {
        let region = sample_region();
        let encoded = CompressedTileRegion::encode(&region).unwrap();
        let decoded = encoded.decode();
        assert_eq!(decoded.cells(), region.cells());
        assert_eq!(decoded.frame(), region.frame());
        assert_eq!(encoded.tile_count(), region.len());
    }

    #[test]
    fn pack_unpack_covers_negative_coordinates_and_levels() {
        for cell in [
            TileCell::new(0, 0, 0),
            TileCell::new(15, 8191, -8192),
            TileCell::new(7, -1, 1),
            TileCell::new(2, -100, 100),
        ] {
            assert_eq!(unpack_cell(pack_cell(cell).unwrap()), cell);
        }
    }

    #[test]
    fn out_of_range_cells_are_rejected() {
        assert!(pack_cell(TileCell::new(16, 0, 0)).is_err());
        assert!(pack_cell(TileCell::new(0, 8192, 0)).is_err());
        assert!(pack_cell(TileCell::new(0, 0, -8193)).is_err());
        let err = CompressError::CellOutOfRange { cell: TileCell::new(16, 0, 0) };
        assert!(err.to_string().contains("encoding range"));
    }

    #[test]
    fn compression_beats_the_plain_representation() {
        let region = sample_region();
        let encoded = CompressedTileRegion::encode(&region).unwrap();
        let plain_values = 3 * region.len();
        assert!(encoded.value_count() < plain_values);
        assert_eq!(encoded.value_count(), 4 + region.len().div_ceil(2));
    }

    #[test]
    fn packet_counts_follow_the_mtu_model() {
        assert_eq!(packets_for_values(0), 0);
        assert_eq!(packets_for_values(1), 1);
        assert_eq!(packets_for_values(67), 1);
        assert_eq!(packets_for_values(68), 2);
        assert_eq!(packets_for_values(200), 3);
        let region = sample_region();
        let encoded = CompressedTileRegion::encode(&region).unwrap();
        assert_eq!(encoded.packet_count(), 1);
    }

    #[test]
    fn empty_region_encodes_to_header_only() {
        let region = TileRegion::new(TileFrame::centered_at(Point::ORIGIN, 2.0));
        let encoded = CompressedTileRegion::encode(&region).unwrap();
        assert_eq!(encoded.tile_count(), 0);
        assert_eq!(encoded.value_count(), 4);
        assert!(encoded.decode().is_empty());
    }
}
