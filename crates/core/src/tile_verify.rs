//! Tile verification strategies: IT-Verify, GT-Verify (Section 5.3) and the SUM-objective
//! verification with hyperbola minimisation and memoisation (Section 6.3.1, Algorithm 6).
//!
//! All verifiers answer the same question: *may tile `s` be added to user `uᵢ`'s safe region
//! without ever letting the candidate `p` beat the current optimum `pᵒ`?*  Every answer is
//! conservative — `false` may be wrong (costing region size), `true` never is.

use std::collections::HashMap;

use mpn_geom::{min_focal_diff_over_square, DistanceBounds, Point, Square, EPSILON};

use crate::region::TileRegion;
use crate::verify::{verify_max, RegionView, SquaresView};

/// Which verification strategy Tile-MSR uses for the MAX objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifierKind {
    /// Individual tile verification: enumerate every combination of one tile per user.
    /// Exact per Lemma 1 but exponential in the group size — kept as an ablation baseline.
    It,
    /// Group tile verification of Theorem 2 / Algorithm 4 (the paper's optimised method).
    #[default]
    Gt,
}

/// A verification strategy for a single `(tile, candidate)` pair.
pub trait TileVerifier {
    /// Returns `true` when inserting `tile` into `regions[user]` provably keeps `p_opt`
    /// optimal with respect to the candidate point.
    fn verify(
        &mut self,
        regions: &[TileRegion],
        user: usize,
        tile: &Square,
        candidate: Point,
        candidate_id: usize,
        p_opt: Point,
    ) -> bool;
}

// ---------------------------------------------------------------------------------------------
// IT-Verify.
// ---------------------------------------------------------------------------------------------

/// IT-Verify: checks every tile-group combination individually (Section 5.3).
#[derive(Debug, Default, Clone)]
pub struct ItVerifier;

impl TileVerifier for ItVerifier {
    fn verify(
        &mut self,
        regions: &[TileRegion],
        user: usize,
        tile: &Square,
        candidate: Point,
        _candidate_id: usize,
        p_opt: Point,
    ) -> bool {
        // Enumerate combinations with a mixed-radix counter over the other users' tiles.
        let m = regions.len();
        let sizes: Vec<usize> =
            (0..m).map(|j| if j == user { 1 } else { regions[j].len().max(1) }).collect();
        let mut idx = vec![0usize; m];
        loop {
            {
                let views: Vec<&dyn RegionView> = (0..m)
                    .map(|j| {
                        if j == user {
                            tile as &dyn RegionView
                        } else if regions[j].is_empty() {
                            // An empty region constrains nothing; reuse the tile region itself,
                            // whose empty view is vacuous inside `verify_max`.
                            &regions[j] as &dyn RegionView
                        } else {
                            &regions[j].squares()[idx[j]] as &dyn RegionView
                        }
                    })
                    .collect();
                if !verify_max(&views, p_opt, candidate) {
                    return false;
                }
            }
            // Advance the counter.
            let mut k = 0;
            loop {
                if k == m {
                    return true;
                }
                if k == user {
                    k += 1;
                    continue;
                }
                idx[k] += 1;
                if idx[k] < sizes[k] {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------------------------
// GT-Verify.
// ---------------------------------------------------------------------------------------------

/// GT-Verify: groups tiles by their dominant distances and tests whole groups at once
/// (Theorem 2, Algorithm 4).
#[derive(Debug, Default, Clone)]
pub struct GtVerifier;

/// Per-user partition of tile indices by the two thresholds `dᵒ = ‖pᵒ, s‖max` and
/// `d_p = ‖p, s‖min` (the four groups `G↓↓`, `G↑↓`, `G↓↑`, `G↑↑` of Section 5.3).
#[derive(Debug, Default)]
struct Partition {
    dd: Vec<usize>,
    ud: Vec<usize>,
    du: Vec<usize>,
    uu: Vec<usize>,
}

impl Partition {
    fn of(region: &TileRegion, p_opt: Point, p: Point, d_o: f64, d_p: f64) -> Self {
        let mut part = Partition::default();
        for (i, sq) in region.squares().iter().enumerate() {
            let up_o = sq.max_dist(p_opt) >= d_o;
            let up_p = sq.min_dist(p) >= d_p;
            match (up_o, up_p) {
                (false, false) => part.dd.push(i),
                (true, false) => part.ud.push(i),
                (false, true) => part.du.push(i),
                (true, true) => part.uu.push(i),
            }
        }
        part
    }
}

impl TileVerifier for GtVerifier {
    fn verify(
        &mut self,
        regions: &[TileRegion],
        user: usize,
        tile: &Square,
        candidate: Point,
        _candidate_id: usize,
        p_opt: Point,
    ) -> bool {
        let m = regions.len();

        // Line 1-2 of Algorithm 4: the cheap whole-region check often succeeds outright.
        {
            let views: Vec<&dyn RegionView> = (0..m)
                .map(|j| {
                    if j == user {
                        tile as &dyn RegionView
                    } else {
                        &regions[j] as &dyn RegionView
                    }
                })
                .collect();
            if verify_max(&views, p_opt, candidate) {
                return true;
            }
        }

        let d_o = tile.max_dist(p_opt);
        let d_p = tile.min_dist(candidate);
        let partitions: Vec<Option<Partition>> = (0..m)
            .map(|j| (j != user).then(|| Partition::of(&regions[j], p_opt, candidate, d_o, d_p)))
            .collect();

        // Helper building a grouped view for every user except `user` from selected indices.
        let grouped_check = |select: &dyn Fn(&Partition) -> Vec<usize>| -> bool {
            let subset_views: Vec<Option<SquaresView<'_>>> = (0..m)
                .map(|j| {
                    partitions[j]
                        .as_ref()
                        .map(|part| SquaresView::subset(regions[j].squares(), select(part)))
                })
                .collect();
            let views: Vec<&dyn RegionView> = (0..m)
                .map(|j| {
                    if j == user {
                        tile as &dyn RegionView
                    } else {
                        subset_views[j].as_ref().expect("other user has a partition")
                            as &dyn RegionView
                    }
                })
                .collect();
            verify_max(&views, p_opt, candidate)
        };

        // Theorem 2, cases 1-3: uᵢ dominates both distances / only the min / only the max.
        let case1 = grouped_check(&|part: &Partition| part.dd.clone());
        if !case1 {
            return false;
        }
        let case2 = grouped_check(&|part: &Partition| {
            let mut v = part.dd.clone();
            v.extend_from_slice(&part.ud);
            v
        });
        if !case2 {
            return false;
        }
        let case3 = grouped_check(&|part: &Partition| {
            let mut v = part.dd.clone();
            v.extend_from_slice(&part.du);
            v
        });
        if !case3 {
            return false;
        }

        // Theorem 2, case 4: combinations where uᵢ dominates neither distance.
        //
        // The paper also proposes a "witness" shortcut (an existing tile of Rᵢ at least as
        // extreme as `s` on both distances).  We deliberately do NOT use it: with incremental
        // candidate pruning the shortcut can accept combinations that were never actually
        // verified, which breaks conservativeness (caught by the workspace property tests).
        // Instead the remaining combinations are always covered with one grouped Lemma-1
        // check per (dominant-max user j, dominant-min user k) pair.  Each remaining
        // combination has its tiles contained in the corresponding grouped regions, so a pass
        // here implies the combination is valid.
        for j in 0..m {
            if j == user {
                continue;
            }
            let pj = partitions[j].as_ref().expect("partition for other user");
            if pj.ud.is_empty() && pj.uu.is_empty() {
                continue; // user j can never be the dominant-max user in a remaining combo
            }
            for k in 0..m {
                if k == user {
                    continue;
                }
                let pk = partitions[k].as_ref().expect("partition for other user");
                if pk.du.is_empty() && pk.uu.is_empty() {
                    continue; // user k can never be the dominant-min user
                }
                let subset_views: Vec<Option<SquaresView<'_>>> = (0..m)
                    .map(|l| {
                        if l == user {
                            return None;
                        }
                        let part = partitions[l].as_ref().expect("partition");
                        let selection = if l == j && l == k {
                            part.uu.clone()
                        } else if l == j {
                            let mut v = part.ud.clone();
                            v.extend_from_slice(&part.uu);
                            v
                        } else if l == k {
                            let mut v = part.du.clone();
                            v.extend_from_slice(&part.uu);
                            v
                        } else {
                            (0..regions[l].len()).collect()
                        };
                        Some(SquaresView::subset(regions[l].squares(), selection))
                    })
                    .collect();
                let views: Vec<&dyn RegionView> = (0..m)
                    .map(|l| {
                        if l == user {
                            tile as &dyn RegionView
                        } else {
                            subset_views[l].as_ref().expect("view") as &dyn RegionView
                        }
                    })
                    .collect();
                if !verify_max(&views, p_opt, candidate) {
                    return false;
                }
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------------------------
// SUM-objective verification.
// ---------------------------------------------------------------------------------------------

/// Sum-GT-Verify (Algorithm 6): the group is valid for candidate `p` when
/// `Σᵢ min_{l ∈ Rᵢ} (‖p, l‖ − ‖pᵒ, l‖) ≥ 0`, with each user's minimum computed independently
/// from the hyperbola geometry of Fig. 12.  Per-user minima are memoised per candidate so that
/// repeated verifications only evaluate newly added tiles (the hash tables `H₁ … H_m` of the
/// paper).
#[derive(Debug, Default, Clone)]
pub struct SumVerifier {
    /// `memo[user][candidate_id] = (tiles_already_folded, running_min)`.
    memo: Vec<HashMap<usize, (usize, f64)>>,
}

impl SumVerifier {
    /// Creates a verifier for a group of `m` users.
    #[must_use]
    pub fn new(group_size: usize) -> Self {
        Self { memo: vec![HashMap::new(); group_size] }
    }

    fn region_min(
        &mut self,
        user: usize,
        region: &TileRegion,
        candidate: Point,
        candidate_id: usize,
        p_opt: Point,
    ) -> f64 {
        let entry = self.memo[user].entry(candidate_id).or_insert((0, f64::INFINITY));
        if entry.0 < region.len() {
            for sq in &region.squares()[entry.0..] {
                entry.1 = entry.1.min(min_focal_diff_over_square(candidate, p_opt, sq));
            }
            entry.0 = region.len();
        }
        entry.1
    }
}

impl TileVerifier for SumVerifier {
    fn verify(
        &mut self,
        regions: &[TileRegion],
        user: usize,
        tile: &Square,
        candidate: Point,
        candidate_id: usize,
        p_opt: Point,
    ) -> bool {
        if self.memo.len() < regions.len() {
            self.memo.resize(regions.len(), HashMap::new());
        }
        let mut total = min_focal_diff_over_square(candidate, p_opt, tile);
        for (j, region) in regions.iter().enumerate() {
            if j == user || region.is_empty() {
                continue;
            }
            total += self.region_min(j, region, candidate, candidate_id, p_opt);
            if total < -EPSILON {
                return false;
            }
        }
        total >= -EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{TileCell, TileFrame};
    use mpn_geom::sum_dist_to_set;

    fn region_at(center: Point, delta: f64, cells: &[TileCell]) -> TileRegion {
        let mut r = TileRegion::new(TileFrame::centered_at(center, delta));
        for c in cells {
            r.push(*c);
        }
        r
    }

    /// Brute-force oracle: samples location instances from the regions (plus the new tile for
    /// `user`) and reports whether the candidate ever beats the optimum.
    fn oracle_max_valid(
        regions: &[TileRegion],
        user: usize,
        tile: &Square,
        candidate: Point,
        p_opt: Point,
    ) -> bool {
        let per_user: Vec<Vec<Square>> = regions
            .iter()
            .enumerate()
            .map(|(j, r)| if j == user { vec![*tile] } else { r.squares().to_vec() })
            .collect();
        // Sample the corner/centre lattice of every tile combination.
        fn samples(sq: &Square) -> Vec<Point> {
            let mut v = sq.corners().to_vec();
            v.push(sq.center);
            v
        }
        fn recurse(
            per_user: &[Vec<Square>],
            chosen: &mut Vec<Point>,
            candidate: Point,
            p_opt: Point,
        ) -> bool {
            if chosen.len() == per_user.len() {
                let d_opt = chosen.iter().map(|l| l.dist(p_opt)).fold(0.0, f64::max);
                let d_cand = chosen.iter().map(|l| l.dist(candidate)).fold(0.0, f64::max);
                return d_opt <= d_cand + 1e-7;
            }
            let u = chosen.len();
            for sq in &per_user[u] {
                for s in samples(sq) {
                    chosen.push(s);
                    let ok = recurse(per_user, chosen, candidate, p_opt);
                    chosen.pop();
                    if !ok {
                        return false;
                    }
                }
            }
            true
        }
        recurse(&per_user, &mut Vec::new(), candidate, p_opt)
    }

    #[test]
    fn gt_and_it_accept_obviously_safe_tiles() {
        let p_opt = Point::new(0.0, 0.0);
        let candidate = Point::new(100.0, 0.0);
        let regions = vec![
            region_at(Point::new(1.0, 0.0), 2.0, &[TileCell::SEED]),
            region_at(Point::new(-1.0, 1.0), 2.0, &[TileCell::SEED]),
        ];
        let tile = Square::new(Point::new(3.0, 0.0), 2.0);
        assert!(ItVerifier.verify(&regions, 0, &tile, candidate, 7, p_opt));
        assert!(GtVerifier.verify(&regions, 0, &tile, candidate, 7, p_opt));
    }

    #[test]
    fn gt_and_it_reject_tiles_next_to_the_candidate() {
        let p_opt = Point::new(0.0, 0.0);
        let candidate = Point::new(10.0, 0.0);
        let regions = vec![
            region_at(Point::new(1.0, 0.0), 2.0, &[TileCell::SEED]),
            region_at(Point::new(0.0, 1.0), 2.0, &[TileCell::SEED]),
        ];
        // A tile adjacent to the candidate pulls user 0 so close to it that the candidate wins.
        let tile = Square::new(Point::new(9.5, 0.0), 2.0);
        assert!(!ItVerifier.verify(&regions, 0, &tile, candidate, 3, p_opt));
        assert!(!GtVerifier.verify(&regions, 0, &tile, candidate, 3, p_opt));
    }

    #[test]
    fn gt_verify_is_conservative_wrt_oracle_on_a_grid_of_tiles() {
        let p_opt = Point::new(0.0, 0.0);
        let candidate = Point::new(8.0, 0.0);
        let regions = vec![
            region_at(Point::new(1.0, 0.5), 1.0, &[TileCell::SEED, TileCell::new(0, 1, 0)]),
            region_at(Point::new(-0.5, -1.0), 1.0, &[TileCell::SEED]),
        ];
        let mut gt = GtVerifier;
        let mut it = ItVerifier;
        for gx in -3..=9 {
            for gy in -3..=3 {
                let tile = Square::new(Point::new(f64::from(gx), f64::from(gy)), 1.0);
                let oracle = oracle_max_valid(&regions, 0, &tile, candidate, p_opt);
                let gt_ok = gt.verify(&regions, 0, &tile, candidate, 11, p_opt);
                let it_ok = it.verify(&regions, 0, &tile, candidate, 11, p_opt);
                // Conservativeness: an accepted tile must be genuinely valid.
                assert!(!gt_ok || oracle, "GT accepted an invalid tile at ({gx},{gy})");
                assert!(!it_ok || oracle, "IT accepted an invalid tile at ({gx},{gy})");
            }
        }
    }

    #[test]
    fn gt_verify_with_many_users_remains_conservative() {
        let p_opt = Point::new(0.0, 0.0);
        let candidate = Point::new(6.0, 4.0);
        let regions = vec![
            region_at(Point::new(0.5, 0.0), 1.0, &[TileCell::SEED, TileCell::new(0, 0, 1)]),
            region_at(Point::new(-1.0, 0.5), 1.0, &[TileCell::SEED]),
            region_at(Point::new(0.0, -1.5), 1.0, &[TileCell::SEED, TileCell::new(0, -1, 0)]),
        ];
        let mut gt = GtVerifier;
        for gx in -2..=7 {
            for gy in -2..=5 {
                let tile = Square::new(Point::new(f64::from(gx) * 0.8, f64::from(gy) * 0.8), 0.8);
                let oracle = oracle_max_valid(&regions, 1, &tile, candidate, p_opt);
                let gt_ok = gt.verify(&regions, 1, &tile, candidate, 1, p_opt);
                assert!(!gt_ok || oracle, "GT accepted an invalid tile at ({gx},{gy})");
            }
        }
    }

    #[test]
    fn sum_verifier_accepts_and_rejects_correctly() {
        let p_opt = Point::new(0.0, 0.0);
        let users = [Point::new(1.0, 0.0), Point::new(-1.0, 0.0)];
        let regions = vec![
            region_at(users[0], 1.0, &[TileCell::SEED]),
            region_at(users[1], 1.0, &[TileCell::SEED]),
        ];
        let mut v = SumVerifier::new(2);
        // A far candidate can never beat pᵒ.
        let far = Point::new(50.0, 0.0);
        let tile_near_home = Square::new(Point::new(1.5, 0.5), 1.0);
        assert!(v.verify(&regions, 0, &tile_near_home, far, 0, p_opt));
        // A candidate at (4,0): moving user 0 right next to it makes the sum for the candidate
        // smaller than for pᵒ, so the tile must be rejected.
        let near = Point::new(4.0, 0.0);
        let tile_near_candidate = Square::new(Point::new(3.8, 0.0), 1.0);
        assert!(!v.verify(&regions, 0, &tile_near_candidate, near, 1, p_opt));
    }

    #[test]
    fn sum_verifier_matches_brute_force_sampling() {
        let p_opt = Point::new(1.0, 1.0);
        let users = [Point::new(0.0, 0.0), Point::new(2.0, 1.0), Point::new(1.0, 3.0)];
        let regions: Vec<TileRegion> =
            users.iter().map(|u| region_at(*u, 1.0, &[TileCell::SEED])).collect();
        let mut v = SumVerifier::new(3);
        let candidate = Point::new(4.0, 2.0);
        for gx in -2..=6 {
            for gy in -2..=5 {
                let tile = Square::new(Point::new(f64::from(gx), f64::from(gy)), 1.0);
                let accepted = v.verify(&regions, 2, &tile, candidate, 0, p_opt);
                if accepted {
                    // Sample instances: the candidate's sum must never beat the optimum's.
                    for &(t0x, t0y) in &[(0.45, 0.0), (-0.45, 0.3), (0.0, -0.45)] {
                        for &(t1x, t1y) in &[(0.45, 0.0), (-0.45, -0.4)] {
                            for &(sx, sy) in &[(0.49, 0.49), (-0.49, 0.0), (0.0, -0.49)] {
                                let instance = [
                                    Point::new(users[0].x + t0x, users[0].y + t0y),
                                    Point::new(users[1].x + t1x, users[1].y + t1y),
                                    Point::new(
                                        tile.center.x + sx * tile.side(),
                                        tile.center.y + sy * tile.side(),
                                    ),
                                ];
                                // Clamp the third sample into the tile.
                                let l2 = Point::new(
                                    instance[2].x.clamp(tile.to_rect().lo.x, tile.to_rect().hi.x),
                                    instance[2].y.clamp(tile.to_rect().lo.y, tile.to_rect().hi.y),
                                );
                                let instance = [instance[0], instance[1], l2];
                                let d_opt = sum_dist_to_set(p_opt, &instance);
                                let d_cand = sum_dist_to_set(candidate, &instance);
                                assert!(
                                    d_opt <= d_cand + 1e-6,
                                    "accepted tile ({gx},{gy}) allows the candidate to win"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sum_verifier_memo_is_consistent_with_fresh_computation() {
        let p_opt = Point::new(0.0, 0.0);
        let mut region0 = region_at(Point::new(2.0, 0.0), 1.0, &[TileCell::SEED]);
        let region1 = region_at(Point::new(-2.0, 0.0), 1.0, &[TileCell::SEED]);
        let candidate = Point::new(6.0, 1.0);
        let tile = Square::new(Point::new(-2.5, 1.0), 1.0);

        let mut memoised = SumVerifier::new(2);
        // Warm the memo with the initial region contents.
        let _ =
            memoised.verify(&[region0.clone(), region1.clone()], 1, &tile, candidate, 42, p_opt);
        // Grow user 0's region, then verify again: the memo must fold in the new tile.
        region0.push(TileCell::new(0, 1, 0));
        let with_memo =
            memoised.verify(&[region0.clone(), region1.clone()], 1, &tile, candidate, 42, p_opt);
        let fresh = SumVerifier::new(2).verify(&[region0, region1], 1, &tile, candidate, 42, p_opt);
        assert_eq!(with_memo, fresh);
    }

    #[test]
    fn verifier_kind_default_is_gt() {
        assert_eq!(VerifierKind::default(), VerifierKind::Gt);
    }
}
