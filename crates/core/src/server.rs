//! The server-side safe-region computation API.
//!
//! [`MpnServer`] bundles a POI R-tree, an objective (MAX or SUM) and a safe-region method
//! (Circle-MSR or a Tile-MSR configuration) behind a single `compute` call that returns the
//! optimal meeting point plus one safe region per user — exactly the reply of "Step 3" in the
//! system architecture of Fig. 3.
//!
//! Dispatch is open: [`Method`] is only a *description* of a configuration; the actual
//! computation is performed by the [`SafeRegionEngine`](crate::engine::SafeRegionEngine) the
//! description resolves to via [`Method::engine`].  New safe-region families plug in by
//! implementing the trait — the server and the monitoring layer never enumerate them.  For
//! continuous monitoring, [`MpnServer::compute_session`] threads a per-group
//! [`SessionState`] through the engine so heading predictors and §5.4 GNN buffers persist
//! across updates.

use mpn_geom::Point;
use mpn_index::IndexView;

use crate::circle::DEFAULT_RADIUS_CAP;
use crate::engine::{CircleEngine, EngineContext, SafeRegionEngine, TileEngine};
use crate::region::SafeRegion;
use crate::session::SessionState;
use crate::tile::TileMsrConfig;
use crate::{ComputeStats, Objective};

/// The safe-region method used by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Circular safe regions (Section 4, `Circle` in the experiments).
    Circle {
        /// Upper bound on the circle radius for degenerate data sets.
        radius_cap: f64,
    },
    /// Tile-based safe regions (Section 5, `Tile` / `Tile-D` / `Tile-D-b` in the experiments).
    Tile(TileMsrConfig),
}

impl Method {
    /// Circle-MSR with the default radius cap.
    #[must_use]
    pub fn circle() -> Self {
        Method::Circle { radius_cap: DEFAULT_RADIUS_CAP }
    }

    /// Tile-MSR with the paper's default parameters (`Tile`).
    #[must_use]
    pub fn tile() -> Self {
        Method::Tile(TileMsrConfig::tile())
    }

    /// Tile-MSR with the directed ordering (`Tile-D`).
    #[must_use]
    pub fn tile_directed(theta: f64) -> Self {
        Method::Tile(TileMsrConfig::tile_directed(theta))
    }

    /// Tile-MSR with the directed ordering and buffering (`Tile-D-b`).
    #[must_use]
    pub fn tile_directed_buffered(theta: f64, b: usize) -> Self {
        Method::Tile(TileMsrConfig::tile_directed_buffered(theta, b))
    }

    /// Short name used in experiment output, mirroring the paper's legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Method::Circle { .. } => "Circle",
            Method::Tile(cfg) => cfg.name(),
        }
    }

    /// Resolves this description to the engine that implements it.
    ///
    /// The two built-in families map to [`CircleEngine`] and [`TileEngine`]; callers that
    /// bring their own [`SafeRegionEngine`] implementation can bypass `Method` entirely.
    #[must_use]
    pub fn engine(&self) -> Box<dyn SafeRegionEngine> {
        match self {
            Method::Circle { radius_cap } => Box::new(CircleEngine::new(*radius_cap)),
            Method::Tile(config) => Box::new(TileEngine::new(*config)),
        }
    }
}

/// A full answer from the server: the meeting point and one safe region per user.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Index (POI id) of the optimal meeting point in the data set.
    pub optimal_index: usize,
    /// Location of the optimal meeting point `pᵒ`.
    pub optimal_point: Point,
    /// Aggregate distance of the group to `pᵒ` at computation time.
    pub optimal_dist: f64,
    /// One safe region per user, in the order of the `users` slice.
    pub regions: Vec<SafeRegion>,
    /// Work counters for the computation.
    pub stats: ComputeStats,
}

impl Answer {
    /// Whether every user in `locations` is still inside her safe region.
    ///
    /// A `locations` slice of the wrong length is *not* inside: the answer describes a
    /// specific group, so a different group size can never satisfy it.
    #[must_use]
    pub fn all_inside(&self, locations: &[Point]) -> bool {
        locations.len() == self.regions.len()
            && self.regions.iter().zip(locations).all(|(region, l)| region.contains(*l))
    }

    /// Indices of the users that have left their safe regions.
    ///
    /// # Contract
    /// `locations` must hold exactly one location per user, in the order of the `users` slice
    /// the answer was computed for (`locations.len() == self.regions.len()`).  Unlike
    /// [`Answer::all_inside`], which treats a length mismatch as "not inside", this method has
    /// no sensible lenient reading — a silently truncating `zip` would report the tail users
    /// as compliant — so the contract is asserted in debug builds.
    #[must_use]
    pub fn violators(&self, locations: &[Point]) -> Vec<usize> {
        debug_assert_eq!(
            locations.len(),
            self.regions.len(),
            "violators requires one location per safe region"
        );
        self.regions
            .iter()
            .zip(locations)
            .enumerate()
            .filter(|(_, (region, l))| !region.contains(**l))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Server-side safe-region computation bound to a POI index.
///
/// The engine is resolved from the method once at construction and reused for every query
/// (`compute` sits in hot loops, so no per-call boxing).
#[derive(Debug)]
pub struct MpnServer<'a> {
    view: IndexView<'a>,
    objective: Objective,
    method: Method,
    engine: Box<dyn SafeRegionEngine>,
}

impl<'a> MpnServer<'a> {
    /// Creates a server over the POI index (a `&RTree`, `&Arc<RTree>` or `&WorldView`).
    #[must_use]
    pub fn new(tree: impl Into<IndexView<'a>>, objective: Objective, method: Method) -> Self {
        Self { view: tree.into(), objective, method, engine: method.engine() }
    }

    /// The configured objective.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The configured safe-region method.
    #[must_use]
    pub fn method(&self) -> Method {
        self.method
    }

    /// The POI index view served.
    #[must_use]
    pub fn view(&self) -> IndexView<'a> {
        self.view
    }

    /// Computes the optimal meeting point and safe regions for the current user locations.
    #[must_use]
    pub fn compute(&self, users: &[Point]) -> Answer {
        self.compute_with_headings(users, None)
    }

    /// Like [`MpnServer::compute`], additionally passing per-user predicted headings for the
    /// directed tile ordering (ignored by other methods).
    #[must_use]
    pub fn compute_with_headings(
        &self,
        users: &[Point],
        headings: Option<&[Option<f64>]>,
    ) -> Answer {
        self.engine.compute_stateless(self.context(), users, headings)
    }

    /// Stateful computation for continuous monitoring: reads the predicted headings from the
    /// session, lets the engine reuse any persistent state (e.g. the §5.4 GNN buffer) and
    /// records the answer back into the session.
    ///
    /// The answer is owned by the session (also available as [`SessionState::last_answer`])
    /// and borrowed back, so no per-update copy of the region vectors is made.  Callers must
    /// have fed the current locations to [`SessionState::observe`] first.
    #[must_use]
    pub fn compute_session<'s>(
        &self,
        users: &[Point],
        session: &'s mut SessionState,
    ) -> &'s Answer {
        self.engine.compute(self.context(), users, session)
    }

    fn context(&self) -> EngineContext<'a> {
        EngineContext::new(self.view, self.objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_index::RTree;

    fn world() -> (RTree, Vec<Point>) {
        let pois: Vec<Point> =
            (0..49).map(|i| Point::new(f64::from(i % 7) * 4.0, f64::from(i / 7) * 4.0)).collect();
        let users = vec![Point::new(9.0, 9.0), Point::new(13.0, 11.0), Point::new(10.0, 14.0)];
        (RTree::bulk_load(&pois), users)
    }

    #[test]
    fn method_names_match_the_paper_legends() {
        assert_eq!(Method::circle().name(), "Circle");
        assert_eq!(Method::tile().name(), "Tile");
        assert_eq!(Method::tile_directed(0.5).name(), "Tile-D");
        assert_eq!(Method::tile_directed_buffered(0.5, 100).name(), "Tile-D-b");
    }

    #[test]
    fn circle_and_tile_agree_on_the_optimal_point() {
        let (tree, users) = world();
        for objective in [Objective::Max, Objective::Sum] {
            let circle = MpnServer::new(&tree, objective, Method::circle()).compute(&users);
            let tile = MpnServer::new(&tree, objective, Method::tile()).compute(&users);
            assert_eq!(circle.optimal_index, tile.optimal_index);
            assert!((circle.optimal_dist - tile.optimal_dist).abs() < 1e-9);
        }
    }

    #[test]
    fn answers_contain_one_region_per_user_and_users_start_inside() {
        let (tree, users) = world();
        for method in [Method::circle(), Method::tile(), Method::tile_directed(0.8)] {
            let answer = MpnServer::new(&tree, Objective::Max, method).compute(&users);
            assert_eq!(answer.regions.len(), users.len());
            assert!(answer.all_inside(&users));
            assert!(answer.violators(&users).is_empty());
        }
    }

    #[test]
    fn violators_are_reported_by_index() {
        let (tree, users) = world();
        let answer = MpnServer::new(&tree, Objective::Max, Method::circle()).compute(&users);
        let mut moved = users.clone();
        moved[1] = Point::new(1000.0, 1000.0);
        assert!(!answer.all_inside(&moved));
        assert_eq!(answer.violators(&moved), vec![1]);
    }

    #[test]
    fn mismatched_location_count_is_not_inside() {
        let (tree, users) = world();
        let answer = MpnServer::new(&tree, Objective::Max, Method::circle()).compute(&users);
        assert!(!answer.all_inside(&users[..2]));
    }

    #[test]
    fn tile_regions_cover_at_least_the_circle_inscribed_square() {
        let (tree, users) = world();
        let circle = MpnServer::new(&tree, Objective::Max, Method::circle()).compute(&users);
        let tile = MpnServer::new(&tree, Objective::Max, Method::tile()).compute(&users);
        // The tile method is a refinement of the circle method: each tile region contains the
        // maximal square inscribed in the corresponding circle, so the user can travel at
        // least as far along the axes.
        for (c, t) in circle.regions.iter().zip(&tile.regions) {
            let (SafeRegion::Circle(circle), SafeRegion::Tiles(tiles)) = (c, t) else {
                panic!("unexpected region kinds");
            };
            let inscribed = circle.inscribed_square_rect();
            for corner in inscribed.corners() {
                // Shrink the corner towards the centre a hair to avoid boundary ties.
                let towards = circle.center.lerp(corner, 0.999);
                assert!(tiles.contains(towards));
            }
        }
    }
}
