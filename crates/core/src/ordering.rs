//! Tile orderings: the `Next-Tile` policy of Tile-MSR (Section 5.2, Fig. 8).
//!
//! Tile-MSR browses candidate tiles around each user in concentric square layers.  The
//! *undirected* ordering visits every tile of a layer in counter-clockwise order; the
//! *directed* ordering additionally skips tiles whose direction from the user deviates from her
//! predicted travel heading by more than `θ`, concentrating the tile budget on the locations
//! the user is likely to visit next.
//!
//! A layer is only entered when at least one tile of the previous layer was accepted into the
//! safe region — otherwise no farther tile can be valid either and the stream terminates.

use mpn_geom::angle_diff;

use crate::region::TileCell;

/// The ordering policy used by `Next-Tile`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TileOrdering {
    /// Visit every tile of each layer (counter-clockwise), regardless of travel direction.
    #[default]
    Undirected,
    /// Only visit tiles whose subtended angle at the user deviates from the predicted heading
    /// by at most `theta` radians.  Falls back to the undirected ordering for users whose
    /// heading is unknown.
    Directed {
        /// Maximum angular deviation from the predicted heading, in radians.
        theta: f64,
    },
}

/// Stateful tile stream for one user: yields level-0 grid cells layer by layer.
#[derive(Debug, Clone)]
pub struct TileStream {
    ordering: TileOrdering,
    heading: Option<f64>,
    layer: i32,
    queue: Vec<TileCell>,
    cursor: usize,
    accepted_in_layer: bool,
    exhausted: bool,
    /// Hard cap on the layer index so a stream can never run unboundedly even if the caller
    /// keeps accepting tiles (Algorithm 3 already bounds iterations by `α`).
    max_layer: i32,
}

impl TileStream {
    /// Creates a stream for one user.
    ///
    /// `heading` is the user's predicted travel direction (radians); it is only consulted by
    /// the directed ordering.
    #[must_use]
    pub fn new(ordering: TileOrdering, heading: Option<f64>, max_layer: i32) -> Self {
        let mut stream = Self {
            ordering,
            heading,
            layer: 0,
            queue: Vec::new(),
            cursor: 0,
            accepted_in_layer: true, // allow entering layer 1
            exhausted: false,
            max_layer: max_layer.max(1),
        };
        stream.advance_layer();
        stream
    }

    /// The next candidate cell, or `None` when the stream is exhausted.
    pub fn next_cell(&mut self) -> Option<TileCell> {
        loop {
            if self.exhausted {
                return None;
            }
            if self.cursor < self.queue.len() {
                let cell = self.queue[self.cursor];
                self.cursor += 1;
                return Some(cell);
            }
            // Layer finished: only continue outward if something in it was accepted.
            if self.accepted_in_layer && self.layer < self.max_layer {
                self.advance_layer();
            } else {
                self.exhausted = true;
            }
        }
    }

    /// Tells the stream that the most recently returned cell (or one of its sub-tiles) was
    /// accepted into the safe region, unlocking the next layer.
    pub fn mark_accepted(&mut self) {
        self.accepted_in_layer = true;
    }

    /// Whether the stream has run out of tiles.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted && self.cursor >= self.queue.len()
    }

    /// Current layer index (1 = the ring immediately around the seed tile).
    #[must_use]
    pub fn layer(&self) -> i32 {
        self.layer
    }

    fn advance_layer(&mut self) {
        self.layer += 1;
        self.accepted_in_layer = false;
        self.cursor = 0;
        self.queue = ring_cells(self.layer);
        if let (TileOrdering::Directed { theta }, Some(heading)) = (self.ordering, self.heading) {
            self.queue.retain(|cell| {
                let dir = f64::from(cell.iy).atan2(f64::from(cell.ix));
                angle_diff(dir, heading) <= theta + 1e-12
            });
            if self.queue.is_empty() {
                // A degenerate θ admits no tile in this layer; keep the closest-by-angle tile
                // so the stream still makes progress in the travel direction.
                let mut ring = ring_cells(self.layer);
                ring.sort_by(|a, b| {
                    let da = angle_diff(f64::from(a.iy).atan2(f64::from(a.ix)), heading);
                    let db = angle_diff(f64::from(b.iy).atan2(f64::from(b.ix)), heading);
                    da.total_cmp(&db)
                });
                self.queue = ring.into_iter().take(1).collect();
            }
        }
    }
}

/// The level-0 cells whose Chebyshev distance from the seed cell is exactly `layer`,
/// in counter-clockwise order starting from the east (positive x) direction.
#[must_use]
pub fn ring_cells(layer: i32) -> Vec<TileCell> {
    assert!(layer >= 1, "ring_cells is defined for layers >= 1");
    let k = layer;
    let mut cells = Vec::with_capacity((8 * k) as usize);
    for ix in -k..=k {
        for iy in -k..=k {
            if ix.abs().max(iy.abs()) == k {
                cells.push(TileCell::new(0, ix, iy));
            }
        }
    }
    // Counter-clockwise order starting from the east direction (angle 0), matching Fig. 8.
    cells.sort_by(|a, b| {
        let ang = |c: &TileCell| {
            f64::from(c.iy).atan2(f64::from(c.ix)).rem_euclid(2.0 * std::f64::consts::PI)
        };
        ang(a).total_cmp(&ang(b))
    });
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ring_has_8k_distinct_cells_at_chebyshev_distance_k() {
        for k in 1..=4 {
            let ring = ring_cells(k);
            assert_eq!(ring.len(), (8 * k) as usize);
            let unique: HashSet<_> = ring.iter().map(|c| (c.ix, c.iy)).collect();
            assert_eq!(unique.len(), ring.len(), "cells must be distinct");
            for c in &ring {
                assert_eq!(c.ix.abs().max(c.iy.abs()), k);
                assert_eq!(c.level, 0);
            }
        }
    }

    #[test]
    fn undirected_stream_covers_layer_one_then_stops_without_acceptance() {
        let mut s = TileStream::new(TileOrdering::Undirected, None, 100);
        let mut seen = Vec::new();
        while let Some(c) = s.next_cell() {
            seen.push(c);
        }
        // No acceptance was ever reported, so only the first layer is produced.
        assert_eq!(seen.len(), 8);
        assert!(s.is_exhausted());
        assert!(s.next_cell().is_none());
    }

    #[test]
    fn acceptance_unlocks_the_next_layer() {
        let mut s = TileStream::new(TileOrdering::Undirected, None, 100);
        let mut count = 0;
        for _ in 0..8 {
            assert!(s.next_cell().is_some());
            count += 1;
        }
        s.mark_accepted();
        // The stream now serves layer 2 (16 cells).
        let mut layer2 = 0;
        while let Some(c) = s.next_cell() {
            assert_eq!(c.ix.abs().max(c.iy.abs()), 2);
            layer2 += 1;
        }
        assert_eq!(layer2, 16);
        assert_eq!(count, 8);
    }

    #[test]
    fn directed_stream_filters_by_heading() {
        // Heading east with a 45° cone: layer-1 cells allowed are (1,0), (1,1), (1,-1).
        let mut s = TileStream::new(
            TileOrdering::Directed { theta: std::f64::consts::FRAC_PI_4 },
            Some(0.0),
            100,
        );
        let mut cells = Vec::new();
        while let Some(c) = s.next_cell() {
            cells.push((c.ix, c.iy));
        }
        assert_eq!(cells.len(), 3);
        assert!(cells.contains(&(1, 0)));
        assert!(cells.contains(&(1, 1)));
        assert!(cells.contains(&(1, -1)));
    }

    #[test]
    fn directed_stream_without_heading_behaves_like_undirected() {
        let mut directed = TileStream::new(
            TileOrdering::Directed { theta: std::f64::consts::FRAC_PI_4 },
            None,
            100,
        );
        let mut count = 0;
        while directed.next_cell().is_some() {
            count += 1;
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn directed_stream_with_tiny_theta_still_progresses() {
        let mut s = TileStream::new(TileOrdering::Directed { theta: 1e-6 }, Some(0.3), 100);
        // Even though no layer-1 cell centre lies within 1e-6 rad of heading 0.3, the stream
        // keeps the angularly-closest tile so monitoring in the travel direction continues.
        let first = s.next_cell().unwrap();
        assert_eq!((first.ix, first.iy), (1, 0));
    }

    #[test]
    fn max_layer_caps_the_stream() {
        let mut s = TileStream::new(TileOrdering::Undirected, None, 2);
        let mut total = 0;
        while s.next_cell().is_some() {
            total += 1;
            s.mark_accepted();
        }
        assert_eq!(total, 8 + 16);
    }

    #[test]
    #[should_panic(expected = "layers >= 1")]
    fn ring_zero_panics() {
        let _ = ring_cells(0);
    }
}
