//! Circular safe regions: the Circle-MSR algorithm (Section 4.2, Algorithm 1).
//!
//! Every user receives a circle centred at her current location, all with the same radius.
//! The maximal radius keeping the group valid is derived from the best and second-best
//! meeting points: Theorem 1 for the MAX objective, Theorem 5 for the SUM objective.

use mpn_geom::{Circle, Point};
use mpn_index::{Aggregate, GnnNeighbor, IndexView, QueryStats};

use crate::region::SafeRegion;
use crate::server::Answer;
use crate::{ComputeStats, Objective};

/// Result of Circle-MSR: the optimum, the runner-up and the common radius.
#[derive(Debug, Clone)]
pub struct CircleMsr {
    /// The optimal meeting point `pᵒ` (top-1 GNN).
    pub optimal: GnnNeighbor,
    /// The second-best meeting point, used to derive the radius; `None` when the data set has
    /// a single POI (the radius is then only limited by `radius_cap`).
    pub runner_up: Option<GnnNeighbor>,
    /// The maximal common radius `r_max`.
    pub radius: f64,
    /// One circular safe region per user, centred at the user's location.
    pub regions: Vec<Circle>,
    /// R-tree traversal statistics of the underlying GNN query.
    pub stats: QueryStats,
}

/// Upper bound applied to the circle radius when the POI set cannot bound it
/// (single-POI data sets).  Chosen to comfortably exceed any workload domain used in the
/// experiments while staying far from floating-point overflow.
pub const DEFAULT_RADIUS_CAP: f64 = 1.0e9;

/// Maximal common radius for circular safe regions.
///
/// * MAX objective (Theorem 1): `r = (‖p₂, U‖max − ‖pᵒ, U‖max) / 2`.
/// * SUM objective (Theorem 5): `r = (‖p₂, U‖sum − ‖pᵒ, U‖sum) / (2m)`.
#[must_use]
pub fn maximal_circle_radius(
    objective: Objective,
    best_dist: f64,
    second_dist: f64,
    group_size: usize,
) -> f64 {
    let gap = (second_dist - best_dist).max(0.0);
    match objective {
        Objective::Max => gap / 2.0,
        Objective::Sum => gap / (2.0 * group_size as f64),
    }
}

/// Runs Circle-MSR (Algorithm 1) over the POI view for the given user group.
///
/// Accepts anything convertible to an [`IndexView`]: a plain `&RTree` or a mutable-world
/// view carrying a delta overlay.
///
/// # Panics
/// Panics when the view is empty or the user group is empty — there is no meeting point to
/// monitor in either case.
#[must_use]
pub fn circle_msr<'a>(
    tree: impl Into<IndexView<'a>>,
    users: &[Point],
    objective: Objective,
    radius_cap: f64,
) -> CircleMsr {
    let view = tree.into();
    let (optimal, runner_up, radius, stats) = circle_top2(view, users, objective, radius_cap);
    let regions = users.iter().map(|u| Circle::new(*u, radius)).collect();
    CircleMsr { optimal, runner_up, radius, regions, stats }
}

/// Runs Circle-MSR and builds the server [`Answer`] directly — the monitoring hot path.
///
/// Same computation (and bit-identical stats) as [`circle_msr`] followed by the
/// `Answer` conversion, but the per-user regions are collected **once**, straight into the
/// `Vec<SafeRegion>` the answer owns, instead of a `Vec<Circle>` that is then mapped into a
/// second vector.  Together with [`IndexView::top2`] this makes a warm-cache circle update
/// allocate only the answer's single region vector.
///
/// # Panics
/// Panics when the view is empty or the user group is empty.
#[must_use]
pub fn circle_msr_answer<'a>(
    tree: impl Into<IndexView<'a>>,
    users: &[Point],
    objective: Objective,
    radius_cap: f64,
) -> Answer {
    let view = tree.into();
    let (optimal, _, radius, gnn) = circle_top2(view, users, objective, radius_cap);
    let mut stats = ComputeStats::default();
    stats.gnn.absorb(gnn);
    stats.rtree_queries = 1;
    Answer {
        optimal_index: optimal.entry.id,
        optimal_point: optimal.entry.location,
        optimal_dist: optimal.dist,
        regions: users.iter().map(|u| SafeRegion::Circle(Circle::new(*u, radius))).collect(),
        stats,
    }
}

/// The shared core of Algorithm 1: top-2 GNN plus the Theorem 1 / Theorem 5 radius.
fn circle_top2(
    view: IndexView<'_>,
    users: &[Point],
    objective: Objective,
    radius_cap: f64,
) -> (GnnNeighbor, Option<GnnNeighbor>, f64, QueryStats) {
    assert!(!view.is_empty(), "Circle-MSR requires a non-empty POI set");
    assert!(!users.is_empty(), "Circle-MSR requires at least one user");

    let aggregate: Aggregate = objective.aggregate();
    let (best, runner_up, stats) = view.top2(users, aggregate);
    let optimal = best.expect("a non-empty view yields a top-1 GNN");
    let radius = runner_up
        .map_or(radius_cap, |second| {
            maximal_circle_radius(objective, optimal.dist, second.dist, users.len())
        })
        .min(radius_cap);
    (optimal, runner_up, radius, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_geom::{max_dist_to_set, sum_dist_to_set, DistanceBounds};
    use mpn_index::RTree;

    fn small_world() -> (RTree, Vec<Point>) {
        let pois = vec![
            Point::new(2.0, 2.0),
            Point::new(8.0, 3.0),
            Point::new(5.0, 9.0),
            Point::new(-4.0, 1.0),
        ];
        let users = vec![Point::new(1.0, 1.0), Point::new(3.0, 2.0), Point::new(2.0, 4.0)];
        (RTree::bulk_load(&pois), users)
    }

    #[test]
    fn radius_formulas_match_theorems() {
        assert_eq!(maximal_circle_radius(Objective::Max, 4.0, 10.0, 3), 3.0);
        assert_eq!(maximal_circle_radius(Objective::Sum, 4.0, 10.0, 3), 1.0);
        // A tie between best and runner-up gives a zero radius, never a negative one.
        assert_eq!(maximal_circle_radius(Objective::Max, 5.0, 5.0, 2), 0.0);
        assert_eq!(maximal_circle_radius(Objective::Max, 5.0, 4.0, 2), 0.0);
    }

    #[test]
    fn circle_msr_picks_the_max_gnn_and_centres_circles_on_users() {
        let (tree, users) = small_world();
        let out = circle_msr(&tree, &users, Objective::Max, DEFAULT_RADIUS_CAP);
        assert_eq!(out.optimal.entry.id, 0, "(2,2) minimises the max distance");
        assert_eq!(out.regions.len(), users.len());
        for (circle, user) in out.regions.iter().zip(&users) {
            assert_eq!(circle.center, *user);
            assert!((circle.radius - out.radius).abs() < 1e-12);
        }
        assert!(out.radius > 0.0);
    }

    #[test]
    fn circle_msr_radius_matches_manual_computation() {
        let (tree, users) = small_world();
        for objective in [Objective::Max, Objective::Sum] {
            let out = circle_msr(&tree, &users, objective, DEFAULT_RADIUS_CAP);
            let agg = |p: Point| match objective {
                Objective::Max => max_dist_to_set(p, &users),
                Objective::Sum => sum_dist_to_set(p, &users),
            };
            let mut dists: Vec<f64> = tree.iter().map(|e| agg(e.location)).collect();
            dists.sort_by(f64::total_cmp);
            let expected = maximal_circle_radius(objective, dists[0], dists[1], users.len());
            assert!((out.radius - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn circle_regions_are_valid_safe_regions() {
        // Sample locations inside the circles and confirm the optimum never changes.
        let (tree, users) = small_world();
        for objective in [Objective::Max, Objective::Sum] {
            let out = circle_msr(&tree, &users, objective, DEFAULT_RADIUS_CAP);
            let pois: Vec<Point> = tree.iter().map(|e| e.location).collect();
            // Deterministic sampling on a small grid of offsets inside each circle.
            let offsets = [-0.99, -0.5, 0.0, 0.5, 0.99];
            for &ox in &offsets {
                for &oy in &offsets {
                    if ox * ox + oy * oy > 1.0 {
                        continue;
                    }
                    let moved: Vec<Point> = out
                        .regions
                        .iter()
                        .map(|c| Point::new(c.center.x + ox * c.radius, c.center.y + oy * c.radius))
                        .collect();
                    for c in &out.regions {
                        assert!(c.contains(Point::new(
                            c.center.x + ox * c.radius,
                            c.center.y + oy * c.radius
                        )));
                    }
                    let agg = |p: Point| objective.aggregate().point_dist(p, &moved);
                    let best = pois.iter().map(|p| agg(*p)).fold(f64::INFINITY, f64::min);
                    let current = agg(out.optimal.entry.location);
                    assert!(
                        current <= best + 1e-9,
                        "{objective:?}: optimum changed after moving inside circles"
                    );
                }
            }
        }
    }

    #[test]
    fn single_poi_uses_the_radius_cap() {
        let tree = RTree::bulk_load(&[Point::new(0.0, 0.0)]);
        let users = vec![Point::new(1.0, 1.0)];
        let out = circle_msr(&tree, &users, Objective::Max, 123.0);
        assert!(out.runner_up.is_none());
        assert_eq!(out.radius, 123.0);
    }

    #[test]
    #[should_panic(expected = "non-empty POI set")]
    fn empty_tree_panics() {
        let tree = RTree::bulk_load(&[]);
        let _ = circle_msr(&tree, &[Point::ORIGIN], Objective::Max, 1.0);
    }
}
