//! The buffering optimisation for index access (Section 5.4 and Theorem 7).
//!
//! Computing tile-based safe regions calls the verification routine many times, and each call
//! would otherwise query the R-tree for candidate points.  The buffering optimisation fetches
//! the best `b + 1` group nearest neighbours **once**, derives a ladder of distance thresholds
//! `β₁ ≤ β₂ ≤ … ≤ β_b` (Definition 6 / Theorem 7), and afterwards verifies each tile only
//! against the prefix of buffered points allowed by the smallest threshold that covers the
//! current extent of the safe regions (Algorithm 5).

use mpn_geom::Point;
use mpn_index::{IndexView, PoiEntry, QueryStats};

use crate::Objective;

/// The buffered GNN prefix and its threshold ladder.
#[derive(Debug, Clone)]
pub struct BufferSet {
    /// The best `b + 1` meeting points in increasing aggregate distance (`entries[0]` = `pᵒ`).
    entries: Vec<PoiEntry>,
    /// `thresholds[z - 1] = β_z` for `z = 1 … b` (non-decreasing).
    thresholds: Vec<f64>,
    /// R-tree statistics of the single GNN query used to build the buffer.
    pub stats: QueryStats,
}

impl BufferSet {
    /// Builds the buffer by retrieving the best `b + 1` GNNs of the group (one R-tree query).
    ///
    /// # Panics
    /// Panics if the view or the user group is empty.
    #[must_use]
    pub fn build<'a>(
        tree: impl Into<IndexView<'a>>,
        users: &[Point],
        objective: Objective,
        b: usize,
    ) -> Self {
        let view = tree.into();
        assert!(!view.is_empty() && !users.is_empty(), "buffer needs data and users");
        let b = b.max(1);
        let (neighbors, stats) = view.top_k(users, objective.aggregate(), b + 1);
        let best = neighbors[0].dist;
        let denom = match objective {
            Objective::Max => 2.0,
            Objective::Sum => 2.0 * users.len() as f64,
        };
        let thresholds: Vec<f64> =
            neighbors.iter().skip(1).map(|n| ((n.dist - best) / denom).max(0.0)).collect();
        let entries = neighbors.into_iter().map(|n| n.entry).collect();
        Self { entries, thresholds, stats }
    }

    /// Number of usable threshold slots (`b`, or fewer when the data set is small).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.thresholds.len()
    }

    /// The optimal meeting point `pᵒ` captured when the buffer was built.
    #[must_use]
    pub fn optimal(&self) -> PoiEntry {
        self.entries[0]
    }

    /// The largest admissible distance threshold `β_b` (Definition 6).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.thresholds.last().copied().unwrap_or(0.0)
    }

    /// Smallest slot `z` whose threshold `β_z` is at least `dist` (Algorithm 5, line 2).
    ///
    /// Returns `None` when even `β_b` is too small, in which case the tile violates the
    /// buffering condition of Theorem 4 / Theorem 7 and must be rejected.
    #[must_use]
    pub fn slot_for(&self, dist: f64) -> Option<usize> {
        let idx = self.thresholds.partition_point(|beta| *beta < dist);
        (idx < self.thresholds.len()).then_some(idx + 1)
    }

    /// The candidate points to verify against for slot `z`: the buffered prefix `P*₁..z`
    /// minus the optimum itself.
    #[must_use]
    pub fn candidates(&self, slot: usize) -> &[PoiEntry] {
        let end = slot.min(self.entries.len().saturating_sub(1)).max(1);
        &self.entries[1..end]
    }

    /// Every buffered candidate except the optimum (used when a caller wants the full prefix).
    #[must_use]
    pub fn all_candidates(&self) -> &[PoiEntry] {
        &self.entries[1..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_geom::max_dist_to_set;
    use mpn_index::RTree;

    fn world() -> (RTree, Vec<Point>) {
        let pois: Vec<Point> =
            (0..20).map(|i| Point::new(f64::from(i % 5) * 3.0, f64::from(i / 5) * 3.0)).collect();
        let users = vec![Point::new(1.0, 1.0), Point::new(4.0, 2.0), Point::new(2.0, 5.0)];
        (RTree::bulk_load(&pois), users)
    }

    #[test]
    fn thresholds_are_nondecreasing_and_match_the_definition() {
        let (tree, users) = world();
        let buf = BufferSet::build(&tree, &users, Objective::Max, 10);
        assert_eq!(buf.slots(), 10);
        for w in buf.thresholds.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // β_z = (‖p_{z+1}, U‖max − ‖pᵒ, U‖max) / 2 against a brute-force ranking.
        let mut dists: Vec<f64> =
            tree.iter().map(|e| max_dist_to_set(e.location, &users)).collect();
        dists.sort_by(f64::total_cmp);
        for z in 1..=5 {
            let expected = (dists[z] - dists[0]) / 2.0;
            assert!((buf.thresholds[z - 1] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_thresholds_divide_by_group_size() {
        let (tree, users) = world();
        let max_buf = BufferSet::build(&tree, &users, Objective::Max, 5);
        let sum_buf = BufferSet::build(&tree, &users, Objective::Sum, 5);
        // The SUM ladder uses 2m in the denominator; both ladders are non-negative.
        assert!(sum_buf.beta() >= 0.0);
        assert!(max_buf.beta() >= 0.0);
    }

    #[test]
    fn slot_lookup_is_the_minimal_covering_slot() {
        let (tree, users) = world();
        let buf = BufferSet::build(&tree, &users, Objective::Max, 10);
        // A zero distance is always covered by the first slot with a positive threshold.
        let z0 = buf.slot_for(0.0).unwrap();
        assert!(buf.thresholds[z0 - 1] >= 0.0);
        // A distance just below β_b maps to a slot whose threshold covers it.
        let d = buf.beta() * 0.99;
        let z = buf.slot_for(d).unwrap();
        assert!(buf.thresholds[z - 1] >= d);
        if z >= 2 {
            assert!(buf.thresholds[z - 2] < d);
        }
        // Distances beyond β_b are rejected.
        assert!(buf.slot_for(buf.beta() + 1.0).is_none());
    }

    #[test]
    fn candidates_are_a_prefix_without_the_optimum() {
        let (tree, users) = world();
        let buf = BufferSet::build(&tree, &users, Objective::Max, 8);
        let po = buf.optimal();
        for z in 1..=buf.slots() {
            let cands = buf.candidates(z);
            assert!(cands.len() <= z.max(1));
            assert!(cands.iter().all(|c| c.id != po.id));
        }
        assert_eq!(buf.all_candidates().len(), 8);
    }

    #[test]
    fn small_data_sets_shrink_the_ladder() {
        let pois = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0), Point::new(9.0, 3.0)];
        let tree = RTree::bulk_load(&pois);
        let users = vec![Point::new(1.0, 0.0)];
        let buf = BufferSet::build(&tree, &users, Objective::Max, 100);
        assert_eq!(buf.slots(), 2);
        assert_eq!(buf.all_candidates().len(), 2);
    }
}
