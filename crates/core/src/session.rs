//! Per-group session state threaded through the safe-region engines.
//!
//! The monitoring server of the paper is *stateful*: between two safe-region computations for
//! the same group it keeps the per-user heading predictors feeding the directed tile ordering
//! (Section 5.2), the §5.4 GNN buffer so its prefix ladder can be reused instead of rebuilt,
//! and the last [`Answer`] against which violations are detected.  [`SessionState`] bundles
//! exactly that state; a [`SafeRegionEngine`](crate::engine::SafeRegionEngine) receives it
//! mutably on every [`compute`](crate::engine::SafeRegionEngine::compute) so the state
//! survives across updates instead of being rebuilt from scratch.

use mpn_geom::{HeadingPredictor, Point};

use crate::server::Answer;
use crate::tile::BufferCache;
use crate::Objective;

/// Mutable per-group state owned by the server between safe-region computations.
#[derive(Debug, Clone)]
pub struct SessionState {
    predictors: Vec<HeadingPredictor>,
    persist_buffers: bool,
    buffer: Option<BufferCache>,
    buffer_builds: usize,
    last_answer: Option<Answer>,
    /// [`IndexView::generation`](mpn_index::IndexView::generation) of the POI content the
    /// last answer was computed against, used by the world-change invalidation pass.
    answer_generation: Option<u64>,
}

impl SessionState {
    /// Creates the state for a group of `group_size` users.
    ///
    /// `smoothing` is the exponential-smoothing factor of the per-user heading predictors
    /// (the monitoring default is 0.3).
    ///
    /// # Panics
    /// Panics when `group_size` is zero.
    #[must_use]
    pub fn new(group_size: usize, smoothing: f64) -> Self {
        assert!(group_size > 0, "a session needs at least one user");
        Self {
            predictors: (0..group_size).map(|_| HeadingPredictor::new(smoothing)).collect(),
            persist_buffers: false,
            buffer: None,
            buffer_builds: 0,
            last_answer: None,
            answer_generation: None,
        }
    }

    /// Enables or disables reuse of the §5.4 GNN buffer across updates.
    ///
    /// Disabled (the default), every tile computation rebuilds its buffer exactly like the
    /// stateless one-shot API, which keeps legacy monitoring runs bit-identical.  Enabled, the
    /// engine keeps the buffer alive between updates and only rebuilds it when the optimal
    /// meeting point moves or the group strays too far from the buffer's anchor locations,
    /// trading slightly smaller safe regions for roughly half the R-tree queries per update.
    #[must_use]
    pub fn with_persistent_buffers(mut self, enabled: bool) -> Self {
        self.persist_buffers = enabled;
        self
    }

    /// Number of users in the group this session tracks.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.predictors.len()
    }

    /// Feeds the users' current locations into the heading predictors.
    ///
    /// Call once per timestamp, *before* [`SafeRegionEngine::compute`]
    /// (crate::engine::SafeRegionEngine::compute) so the directed ordering sees up-to-date
    /// headings.
    ///
    /// # Panics
    /// Panics when `locations` does not have one entry per user.
    pub fn observe(&mut self, locations: &[Point]) {
        assert_eq!(locations.len(), self.predictors.len(), "one location per user is required");
        for (predictor, location) in self.predictors.iter_mut().zip(locations) {
            predictor.observe(*location);
        }
    }

    /// The predicted heading of every user (`None` until a user has moved).
    #[must_use]
    pub fn predicted_headings(&self) -> Vec<Option<f64>> {
        self.predictors.iter().map(HeadingPredictor::predicted).collect()
    }

    /// The answer of the most recent safe-region computation, if any.
    #[must_use]
    pub fn last_answer(&self) -> Option<&Answer> {
        self.last_answer.as_ref()
    }

    /// How many times the *persistent* GNN buffer has been (re)built in this session.
    ///
    /// With persistent buffers enabled this stays well below the number of updates.  Without
    /// persistence the engines go through the stateless path, whose throwaway buffers are not
    /// tracked, so the counter stays 0.
    #[must_use]
    pub fn buffer_builds(&self) -> usize {
        self.buffer_builds
    }

    /// Whether a buffered prefix is currently cached.
    #[must_use]
    pub fn has_cached_buffer(&self) -> bool {
        self.buffer.is_some()
    }

    /// Releases everything the session retains between updates: the cached §5.4 GNN buffer
    /// and the last [`Answer`] (whose per-user region vectors dominate the session's
    /// footprint).  The heading predictors — a few floats per user — are untouched; callers
    /// tearing a session down fully (e.g. a monitoring server's deregistration path) drop the
    /// whole `SessionState` right after.
    ///
    /// Called when a group deregisters from a long-lived monitoring server, so teardown of
    /// the heavy state is explicit rather than relying on the session being dropped promptly.
    pub fn reclaim(&mut self) {
        self.buffer = None;
        self.last_answer = None;
        self.answer_generation = None;
    }

    /// The world generation the last answer was computed against, `None` before the first
    /// computation (or after [`reclaim`](SessionState::reclaim)).
    #[must_use]
    pub fn answer_generation(&self) -> Option<u64> {
        self.answer_generation
    }

    /// Whether deleting POI `poi` can break this session's current safe regions.
    ///
    /// Per Definition 3, the regions stay valid as long as the recorded optimum remains the
    /// group's best meeting point everywhere inside them.  Removing a POI can only change
    /// that verdict when the POI *participates* in the answer: it is the optimum itself, or
    /// it sits in the cached §5.4 GNN buffer whose prefix ladder the next verification would
    /// consult.  Deleting any other POI only removes a runner-up that was already beaten, so
    /// the regions — and the cached buffer thresholds, which remain conservative when a
    /// competitor disappears — stay sound.
    ///
    /// Sessions without a recorded answer have nothing to invalidate.
    #[must_use]
    pub fn delete_invalidates(&self, poi: usize) -> bool {
        let Some(answer) = self.last_answer.as_ref() else {
            return false;
        };
        answer.optimal_index == poi
            || self.buffer.as_ref().is_some_and(|cache| cache.references(poi))
    }

    /// Whether inserting a POI at `location` can break this session's current safe regions.
    ///
    /// The insert is dangerous exactly when some placement of the users inside their safe
    /// regions could prefer the new point over the recorded optimum `pᵒ`.  A conservative
    /// (sound) test compares the best case of the new point against the worst case of the
    /// optimum over the regions: if the aggregate of per-region *minimum* distances to
    /// `location` is below the aggregate of per-region *maximum* distances to `pᵒ`, a
    /// breaking placement may exist and the session must recompute.  Any true witness `U*`
    /// inside the regions satisfies `agg_min(q) ≤ agg(q, U*) < agg(pᵒ, U*) ≤ agg_max(pᵒ)`,
    /// so no breaking insert is ever missed.
    #[must_use]
    pub fn insert_invalidates(&self, location: Point, objective: Objective) -> bool {
        let Some(answer) = self.last_answer.as_ref() else {
            return false;
        };
        if answer.regions.is_empty() {
            return false;
        }
        let bounds = answer
            .regions
            .iter()
            .map(|region| (region.min_dist(location), region.max_dist(answer.optimal_point)));
        let (lower_new, upper_opt) = match objective {
            Objective::Max => bounds.fold((f64::NEG_INFINITY, f64::NEG_INFINITY), |acc, b| {
                (acc.0.max(b.0), acc.1.max(b.1))
            }),
            Objective::Sum => bounds.fold((0.0, 0.0), |acc, b| (acc.0 + b.0, acc.1 + b.1)),
        };
        lower_new < upper_opt
    }

    /// Stores the answer of a completed computation and returns a reference to it (called by
    /// the engines).  Taking the answer by value avoids cloning the per-user region vectors
    /// on every update — the legacy loop kept a single answer by value, and this sits inside
    /// the section whose duration is reported as the paper's "CPU time per computation".
    /// `generation` stamps which world content the answer is valid for.
    pub(crate) fn record_answer(&mut self, answer: Answer, generation: u64) -> &Answer {
        self.answer_generation = Some(generation);
        self.last_answer.insert(answer)
    }

    /// The persistent buffer slot, or `None` when persistence is disabled.
    ///
    /// Engines pass the inner `Option<BufferCache>` to the cache-aware tile computation; a
    /// count of builds is kept for diagnostics.
    pub(crate) fn buffer_slot_mut(&mut self) -> Option<&mut Option<BufferCache>> {
        self.persist_buffers.then_some(&mut self.buffer)
    }

    /// Bumps the build counter (called by the engines when a computation built a new buffer).
    pub(crate) fn count_buffer_builds(&mut self, builds: usize) {
        self.buffer_builds += builds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_drives_the_heading_predictors() {
        let mut session = SessionState::new(2, 0.5);
        assert_eq!(session.group_size(), 2);
        assert_eq!(session.predicted_headings(), vec![None, None]);
        session.observe(&[Point::new(0.0, 0.0), Point::new(5.0, 5.0)]);
        session.observe(&[Point::new(1.0, 0.0), Point::new(5.0, 6.0)]);
        let headings = session.predicted_headings();
        assert!((headings[0].unwrap() - 0.0).abs() < 1e-12, "user 0 heads east");
        assert!((headings[1].unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one location per user")]
    fn observe_rejects_wrong_group_size() {
        let mut session = SessionState::new(3, 0.3);
        session.observe(&[Point::ORIGIN]);
    }

    #[test]
    fn reclaim_drops_the_retained_state_but_keeps_the_predictors() {
        let mut session = SessionState::new(2, 0.4);
        session.observe(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        session.observe(&[Point::new(1.0, 0.0), Point::new(1.0, 2.0)]);
        let answer = Answer {
            optimal_index: 0,
            optimal_point: Point::ORIGIN,
            optimal_dist: 1.0,
            regions: Vec::new(),
            stats: crate::ComputeStats::default(),
        };
        session.record_answer(answer, 7);
        assert!(session.last_answer().is_some());
        assert_eq!(session.answer_generation(), Some(7));
        session.reclaim();
        assert!(session.last_answer().is_none(), "reclaim drops the last answer");
        assert!(session.answer_generation().is_none(), "reclaim drops the generation stamp");
        assert!(!session.has_cached_buffer(), "reclaim drops any cached buffer");
        assert_eq!(session.group_size(), 2);
        assert!(
            session.predicted_headings().iter().all(Option::is_some),
            "heading predictors stay warm across reclaim"
        );
    }

    fn answer_with_regions() -> Answer {
        // Optimum is POI 3 at (0, 0); one circular region of radius 1 around each user.
        Answer {
            optimal_index: 3,
            optimal_point: Point::ORIGIN,
            regions: vec![
                crate::SafeRegion::Circle(mpn_geom::Circle::new(Point::new(2.0, 0.0), 1.0)),
                crate::SafeRegion::Circle(mpn_geom::Circle::new(Point::new(-2.0, 0.0), 1.0)),
            ],
            optimal_dist: 2.0,
            stats: crate::ComputeStats::default(),
        }
    }

    #[test]
    fn delete_invalidates_only_participating_pois() {
        let mut session = SessionState::new(2, 0.3);
        assert!(!session.delete_invalidates(3), "no answer, nothing to invalidate");
        session.record_answer(answer_with_regions(), 1);
        assert!(session.delete_invalidates(3), "deleting the optimum breaks the regions");
        assert!(!session.delete_invalidates(99), "a beaten runner-up never breaks them");
    }

    #[test]
    fn insert_invalidates_matches_the_bound_comparison() {
        let mut session = SessionState::new(2, 0.3);
        let far = Point::new(500.0, 500.0);
        assert!(!session.insert_invalidates(far, Objective::Max), "no answer yet");
        session.record_answer(answer_with_regions(), 1);
        // Worst case of the optimum over the regions: max distance is 3 per user.
        // A far-away point can never undercut it; a point at the origin always can.
        assert!(!session.insert_invalidates(far, Objective::Max));
        assert!(!session.insert_invalidates(far, Objective::Sum));
        assert!(session.insert_invalidates(Point::ORIGIN, Objective::Max));
        assert!(session.insert_invalidates(Point::ORIGIN, Objective::Sum));
        // The boundary case: min-dist aggregate equal to the max-dist aggregate is safe.
        // For MAX: upper_opt = 3.0; a candidate whose closest approach is exactly 3.0 from
        // both regions (e.g. (6, 0): min dist to the right region is 3.0, to the left 7.0)
        // yields lower_new = 7.0 > 3.0 → safe.
        assert!(!session.insert_invalidates(Point::new(6.0, 0.0), Objective::Max));
    }

    #[test]
    fn buffer_slot_respects_the_persistence_flag() {
        let mut off = SessionState::new(1, 0.3);
        assert!(off.buffer_slot_mut().is_none());
        let mut on = SessionState::new(1, 0.3).with_persistent_buffers(true);
        assert!(on.buffer_slot_mut().is_some());
        assert!(!on.has_cached_buffer());
    }
}
