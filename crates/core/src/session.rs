//! Per-group session state threaded through the safe-region engines.
//!
//! The monitoring server of the paper is *stateful*: between two safe-region computations for
//! the same group it keeps the per-user heading predictors feeding the directed tile ordering
//! (Section 5.2), the §5.4 GNN buffer so its prefix ladder can be reused instead of rebuilt,
//! and the last [`Answer`] against which violations are detected.  [`SessionState`] bundles
//! exactly that state; a [`SafeRegionEngine`](crate::engine::SafeRegionEngine) receives it
//! mutably on every [`compute`](crate::engine::SafeRegionEngine::compute) so the state
//! survives across updates instead of being rebuilt from scratch.

use mpn_geom::{HeadingPredictor, Point};

use crate::server::Answer;
use crate::tile::BufferCache;

/// Mutable per-group state owned by the server between safe-region computations.
#[derive(Debug, Clone)]
pub struct SessionState {
    predictors: Vec<HeadingPredictor>,
    persist_buffers: bool,
    buffer: Option<BufferCache>,
    buffer_builds: usize,
    last_answer: Option<Answer>,
}

impl SessionState {
    /// Creates the state for a group of `group_size` users.
    ///
    /// `smoothing` is the exponential-smoothing factor of the per-user heading predictors
    /// (the monitoring default is 0.3).
    ///
    /// # Panics
    /// Panics when `group_size` is zero.
    #[must_use]
    pub fn new(group_size: usize, smoothing: f64) -> Self {
        assert!(group_size > 0, "a session needs at least one user");
        Self {
            predictors: (0..group_size).map(|_| HeadingPredictor::new(smoothing)).collect(),
            persist_buffers: false,
            buffer: None,
            buffer_builds: 0,
            last_answer: None,
        }
    }

    /// Enables or disables reuse of the §5.4 GNN buffer across updates.
    ///
    /// Disabled (the default), every tile computation rebuilds its buffer exactly like the
    /// stateless one-shot API, which keeps legacy monitoring runs bit-identical.  Enabled, the
    /// engine keeps the buffer alive between updates and only rebuilds it when the optimal
    /// meeting point moves or the group strays too far from the buffer's anchor locations,
    /// trading slightly smaller safe regions for roughly half the R-tree queries per update.
    #[must_use]
    pub fn with_persistent_buffers(mut self, enabled: bool) -> Self {
        self.persist_buffers = enabled;
        self
    }

    /// Number of users in the group this session tracks.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.predictors.len()
    }

    /// Feeds the users' current locations into the heading predictors.
    ///
    /// Call once per timestamp, *before* [`SafeRegionEngine::compute`]
    /// (crate::engine::SafeRegionEngine::compute) so the directed ordering sees up-to-date
    /// headings.
    ///
    /// # Panics
    /// Panics when `locations` does not have one entry per user.
    pub fn observe(&mut self, locations: &[Point]) {
        assert_eq!(locations.len(), self.predictors.len(), "one location per user is required");
        for (predictor, location) in self.predictors.iter_mut().zip(locations) {
            predictor.observe(*location);
        }
    }

    /// The predicted heading of every user (`None` until a user has moved).
    #[must_use]
    pub fn predicted_headings(&self) -> Vec<Option<f64>> {
        self.predictors.iter().map(HeadingPredictor::predicted).collect()
    }

    /// The answer of the most recent safe-region computation, if any.
    #[must_use]
    pub fn last_answer(&self) -> Option<&Answer> {
        self.last_answer.as_ref()
    }

    /// How many times the *persistent* GNN buffer has been (re)built in this session.
    ///
    /// With persistent buffers enabled this stays well below the number of updates.  Without
    /// persistence the engines go through the stateless path, whose throwaway buffers are not
    /// tracked, so the counter stays 0.
    #[must_use]
    pub fn buffer_builds(&self) -> usize {
        self.buffer_builds
    }

    /// Whether a buffered prefix is currently cached.
    #[must_use]
    pub fn has_cached_buffer(&self) -> bool {
        self.buffer.is_some()
    }

    /// Releases everything the session retains between updates: the cached §5.4 GNN buffer
    /// and the last [`Answer`] (whose per-user region vectors dominate the session's
    /// footprint).  The heading predictors — a few floats per user — are untouched; callers
    /// tearing a session down fully (e.g. a monitoring server's deregistration path) drop the
    /// whole `SessionState` right after.
    ///
    /// Called when a group deregisters from a long-lived monitoring server, so teardown of
    /// the heavy state is explicit rather than relying on the session being dropped promptly.
    pub fn reclaim(&mut self) {
        self.buffer = None;
        self.last_answer = None;
    }

    /// Stores the answer of a completed computation and returns a reference to it (called by
    /// the engines).  Taking the answer by value avoids cloning the per-user region vectors
    /// on every update — the legacy loop kept a single answer by value, and this sits inside
    /// the section whose duration is reported as the paper's "CPU time per computation".
    pub(crate) fn record_answer(&mut self, answer: Answer) -> &Answer {
        self.last_answer.insert(answer)
    }

    /// The persistent buffer slot, or `None` when persistence is disabled.
    ///
    /// Engines pass the inner `Option<BufferCache>` to the cache-aware tile computation; a
    /// count of builds is kept for diagnostics.
    pub(crate) fn buffer_slot_mut(&mut self) -> Option<&mut Option<BufferCache>> {
        self.persist_buffers.then_some(&mut self.buffer)
    }

    /// Bumps the build counter (called by the engines when a computation built a new buffer).
    pub(crate) fn count_buffer_builds(&mut self, builds: usize) {
        self.buffer_builds += builds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_drives_the_heading_predictors() {
        let mut session = SessionState::new(2, 0.5);
        assert_eq!(session.group_size(), 2);
        assert_eq!(session.predicted_headings(), vec![None, None]);
        session.observe(&[Point::new(0.0, 0.0), Point::new(5.0, 5.0)]);
        session.observe(&[Point::new(1.0, 0.0), Point::new(5.0, 6.0)]);
        let headings = session.predicted_headings();
        assert!((headings[0].unwrap() - 0.0).abs() < 1e-12, "user 0 heads east");
        assert!((headings[1].unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one location per user")]
    fn observe_rejects_wrong_group_size() {
        let mut session = SessionState::new(3, 0.3);
        session.observe(&[Point::ORIGIN]);
    }

    #[test]
    fn reclaim_drops_the_retained_state_but_keeps_the_predictors() {
        let mut session = SessionState::new(2, 0.4);
        session.observe(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        session.observe(&[Point::new(1.0, 0.0), Point::new(1.0, 2.0)]);
        let answer = Answer {
            optimal_index: 0,
            optimal_point: Point::ORIGIN,
            optimal_dist: 1.0,
            regions: Vec::new(),
            stats: crate::ComputeStats::default(),
        };
        session.record_answer(answer);
        assert!(session.last_answer().is_some());
        session.reclaim();
        assert!(session.last_answer().is_none(), "reclaim drops the last answer");
        assert!(!session.has_cached_buffer(), "reclaim drops any cached buffer");
        assert_eq!(session.group_size(), 2);
        assert!(
            session.predicted_headings().iter().all(Option::is_some),
            "heading predictors stay warm across reclaim"
        );
    }

    #[test]
    fn buffer_slot_respects_the_persistence_flag() {
        let mut off = SessionState::new(1, 0.3);
        assert!(off.buffer_slot_mut().is_none());
        let mut on = SessionState::new(1, 0.3).with_persistent_buffers(true);
        assert!(on.buffer_slot_mut().is_some());
        assert!(!on.has_cached_buffer());
    }
}
