//! Safe-region representations: circles and tile regions.
//!
//! A *safe region group* assigns one region to each user; the optimal meeting point is
//! guaranteed not to change while every user stays inside her own region (Definition 3).
//! Section 4 approximates the maximal regions by circles, Section 5 by unions of square tiles.

use mpn_geom::{Circle, DistanceBounds, Point, Square};

/// Identity of a tile inside a [`TileFrame`]: a subdivision level and integer grid coordinates.
///
/// At level `k` the grid granularity is `δ / 2ᵏ` and the tile's lower-left corner sits at
/// `frame.origin + granularity · (ix, iy)`.  Keeping tiles in integer grid coordinates makes
/// subdivision exact, deduplication cheap and the lossless compression of
/// [`crate::compress`] straightforward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileCell {
    /// Subdivision level: 0 for the base tiles of side `δ`, +1 per quad subdivision.
    pub level: u8,
    /// Horizontal grid coordinate at this level.
    pub ix: i32,
    /// Vertical grid coordinate at this level.
    pub iy: i32,
}

impl TileCell {
    /// The base tile covering the frame origin cell (level 0, coordinates (0, 0)).
    pub const SEED: TileCell = TileCell { level: 0, ix: 0, iy: 0 };

    /// Creates a cell.
    #[must_use]
    pub const fn new(level: u8, ix: i32, iy: i32) -> Self {
        Self { level, ix, iy }
    }

    /// The four child cells produced by quad subdivision (Algorithm 2, line 6).
    #[must_use]
    pub fn children(&self) -> [TileCell; 4] {
        let l = self.level + 1;
        let (x, y) = (self.ix * 2, self.iy * 2);
        [
            TileCell::new(l, x, y),
            TileCell::new(l, x + 1, y),
            TileCell::new(l, x, y + 1),
            TileCell::new(l, x + 1, y + 1),
        ]
    }
}

/// The coordinate frame shared by all tiles of one user's safe region.
///
/// `origin` is the lower-left corner of the user's seed tile (the maximal square inscribed in
/// her circular safe region, Algorithm 3 lines 2–4) and `delta` is the base tile side `δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileFrame {
    /// Lower-left corner of the level-0 cell (0, 0).
    pub origin: Point,
    /// Side length `δ` of level-0 tiles.
    pub delta: f64,
}

impl TileFrame {
    /// Frame whose seed tile of side `delta` is centred at `center`.
    #[must_use]
    pub fn centered_at(center: Point, delta: f64) -> Self {
        Self { origin: Point::new(center.x - delta / 2.0, center.y - delta / 2.0), delta }
    }

    /// Side length of tiles at the given level.
    #[must_use]
    pub fn side_at(&self, level: u8) -> f64 {
        self.delta / f64::from(1u32 << u32::from(level))
    }

    /// Geometry of a cell in this frame.
    #[must_use]
    pub fn square(&self, cell: TileCell) -> Square {
        let side = self.side_at(cell.level);
        let lo = Point::new(
            self.origin.x + side * f64::from(cell.ix),
            self.origin.y + side * f64::from(cell.iy),
        );
        Square::new(Point::new(lo.x + side / 2.0, lo.y + side / 2.0), side)
    }
}

/// A tile-based safe region: a union of square tiles in a common frame (Section 5).
#[derive(Debug, Clone, PartialEq)]
pub struct TileRegion {
    frame: TileFrame,
    cells: Vec<TileCell>,
    squares: Vec<Square>,
}

impl TileRegion {
    /// Creates an empty region in the given frame.
    #[must_use]
    pub fn new(frame: TileFrame) -> Self {
        Self { frame, cells: Vec::new(), squares: Vec::new() }
    }

    /// Creates a region already containing the seed tile centred on the frame.
    #[must_use]
    pub fn with_seed(frame: TileFrame) -> Self {
        let mut region = Self::new(frame);
        region.push(TileCell::SEED);
        region
    }

    /// The region's coordinate frame.
    #[must_use]
    pub fn frame(&self) -> TileFrame {
        self.frame
    }

    /// Adds a tile to the region (no-op when the cell is already present).
    pub fn push(&mut self, cell: TileCell) {
        if !self.cells.contains(&cell) {
            self.squares.push(self.frame.square(cell));
            self.cells.push(cell);
        }
    }

    /// Number of tiles in the region.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the region contains no tiles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The tiles' grid identities.
    #[must_use]
    pub fn cells(&self) -> &[TileCell] {
        &self.cells
    }

    /// The tiles' geometry.
    #[must_use]
    pub fn squares(&self) -> &[Square] {
        &self.squares
    }

    /// Whether the point lies inside the region (inside any tile).
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        self.squares.iter().any(|s| s.contains(p))
    }

    /// Minimum distance from `p` to the region: `‖p, Rᵢ‖min` (∞ for an empty region).
    #[must_use]
    pub fn min_dist(&self, p: Point) -> f64 {
        self.squares.iter().map(|s| s.min_dist(p)).fold(f64::INFINITY, f64::min)
    }

    /// Maximum distance from `p` to the region: `‖p, Rᵢ‖max` (−∞ for an empty region).
    #[must_use]
    pub fn max_dist(&self, p: Point) -> f64 {
        self.squares.iter().map(|s| s.max_dist(p)).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Total area covered (tiles never overlap by construction, so the sum is exact).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.squares.iter().map(Square::area).sum()
    }
}

/// A safe region handed to one user: either a circle (Section 4) or a set of tiles (Section 5).
#[derive(Debug, Clone, PartialEq)]
pub enum SafeRegion {
    /// Circular safe region of Circle-MSR.
    Circle(Circle),
    /// Tile-based safe region of Tile-MSR.
    Tiles(TileRegion),
}

impl SafeRegion {
    /// Whether the user's location is still inside her safe region.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        match self {
            SafeRegion::Circle(c) => c.contains(p),
            SafeRegion::Tiles(t) => t.contains(p),
        }
    }

    /// `‖p, R‖min` of Definition 1.
    #[must_use]
    pub fn min_dist(&self, p: Point) -> f64 {
        match self {
            SafeRegion::Circle(c) => c.min_dist(p),
            SafeRegion::Tiles(t) => t.min_dist(p),
        }
    }

    /// `‖p, R‖max` of Definition 1.
    #[must_use]
    pub fn max_dist(&self, p: Point) -> f64 {
        match self {
            SafeRegion::Circle(c) => c.max_dist(p),
            SafeRegion::Tiles(t) => t.max_dist(p),
        }
    }

    /// Maximum distance from `anchor` to any point of the region — the `r†ᵢ` of Theorem 3.
    #[must_use]
    pub fn reach_from(&self, anchor: Point) -> f64 {
        self.max_dist(anchor)
    }

    /// Whether the region is degenerate (covers nothing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            SafeRegion::Circle(_) => false,
            SafeRegion::Tiles(t) => t.is_empty(),
        }
    }

    /// Number of plain (uncompressed) values needed to ship the region to a client:
    /// 3 per circle, 3 per square tile (§7.1 "Measures").
    #[must_use]
    pub fn uncompressed_value_count(&self) -> usize {
        match self {
            SafeRegion::Circle(_) => 3,
            SafeRegion::Tiles(t) => 3 * t.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> TileFrame {
        TileFrame::centered_at(Point::new(10.0, 10.0), 4.0)
    }

    #[test]
    fn frame_seed_tile_is_centred_on_the_user() {
        let f = frame();
        let seed = f.square(TileCell::SEED);
        assert_eq!(seed.center, Point::new(10.0, 10.0));
        assert_eq!(seed.side(), 4.0);
        assert_eq!(f.side_at(0), 4.0);
        assert_eq!(f.side_at(2), 1.0);
    }

    #[test]
    fn child_cells_tile_the_parent_exactly() {
        let f = frame();
        let parent = TileCell::new(1, -2, 3);
        let parent_sq = f.square(parent);
        let kids = parent.children();
        let kid_area: f64 = kids.iter().map(|c| f.square(*c).area()).sum();
        assert!((kid_area - parent_sq.area()).abs() < 1e-12);
        for k in kids {
            assert!(parent_sq.to_rect().contains_rect(&f.square(k).to_rect()));
        }
    }

    #[test]
    fn neighbouring_level0_cells_do_not_overlap() {
        let f = frame();
        let a = f.square(TileCell::new(0, 0, 0));
        let b = f.square(TileCell::new(0, 1, 0));
        assert!((a.center.dist(b.center) - 4.0).abs() < 1e-12);
        // They share an edge but no interior.
        assert!(a.to_rect().intersects(&b.to_rect()));
        assert!((a.to_rect().hi.x - b.to_rect().lo.x).abs() < 1e-12);
    }

    #[test]
    fn region_push_deduplicates() {
        let mut r = TileRegion::new(frame());
        assert!(r.is_empty());
        r.push(TileCell::SEED);
        r.push(TileCell::SEED);
        r.push(TileCell::new(0, 1, 0));
        assert_eq!(r.len(), 2);
        assert_eq!(r.squares().len(), 2);
    }

    #[test]
    fn region_distances_are_min_and_max_over_tiles() {
        let mut r = TileRegion::with_seed(frame());
        r.push(TileCell::new(0, 1, 0)); // tile centred at (14, 10)
        let p = Point::new(20.0, 10.0);
        // min dist = distance to right edge of right tile = 20 - 16 = 4
        assert!((r.min_dist(p) - 4.0).abs() < 1e-12);
        // max dist = distance to the far corner of the left tile = sqrt(12^2 + 2^2)
        assert!((r.max_dist(p) - (144.0f64 + 4.0).sqrt()).abs() < 1e-12);
        assert!(r.contains(Point::new(13.9, 9.0)));
        assert!(!r.contains(Point::new(16.1, 9.0)));
    }

    #[test]
    fn empty_region_has_degenerate_distances() {
        let r = TileRegion::new(frame());
        assert_eq!(r.min_dist(Point::ORIGIN), f64::INFINITY);
        assert_eq!(r.max_dist(Point::ORIGIN), f64::NEG_INFINITY);
        assert!(!r.contains(Point::ORIGIN));
        assert_eq!(r.area(), 0.0);
    }

    #[test]
    fn safe_region_dispatch() {
        let c = SafeRegion::Circle(Circle::new(Point::new(0.0, 0.0), 2.0));
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert_eq!(c.uncompressed_value_count(), 3);
        assert!((c.reach_from(Point::new(3.0, 0.0)) - 5.0).abs() < 1e-12);

        let mut tiles = TileRegion::with_seed(frame());
        tiles.push(TileCell::new(0, 0, 1));
        let t = SafeRegion::Tiles(tiles);
        assert!(t.contains(Point::new(10.0, 13.0)));
        assert!(!t.contains(Point::new(20.0, 20.0)));
        assert_eq!(t.uncompressed_value_count(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn region_area_accumulates() {
        let mut r = TileRegion::with_seed(frame());
        assert!((r.area() - 16.0).abs() < 1e-12);
        r.push(TileCell::new(1, 4, 0)); // a level-1 tile (side 2) somewhere else
        assert!((r.area() - 20.0).abs() < 1e-12);
    }
}
