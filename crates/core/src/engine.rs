//! The open safe-region engine interface.
//!
//! The original server dispatched over a closed [`Method`](crate::server::Method) enum, so
//! adding a new safe-region family meant editing the server.  [`SafeRegionEngine`] inverts
//! that: each region family is an engine implementing one trait, the server (and the
//! monitoring layer in `mpn-sim`) only talk to the trait object, and new families plug in
//! without touching either.  Two engines ship with the crate:
//!
//! * [`CircleEngine`] — circular safe regions (Section 4, Circle-MSR);
//! * [`TileEngine`] — tile-based safe regions (Section 5, every Tile/Tile-D/Tile-D-b
//!   configuration), with optional reuse of the §5.4 GNN buffer across updates.
//!
//! Engines come in two flavours of invocation: [`compute_stateless`]
//! (SafeRegionEngine::compute_stateless) answers a one-shot query, while
//! [`compute`](SafeRegionEngine::compute) threads a mutable per-group
//! [`SessionState`] through the call so heading predictors, buffered GNN prefixes and the
//! last answer persist across updates — the stateful server loop of Fig. 3.

use std::fmt;

use mpn_geom::Point;
use mpn_index::IndexView;

use crate::circle::{circle_msr_answer, DEFAULT_RADIUS_CAP};
use crate::region::SafeRegion;
use crate::server::Answer;
use crate::session::SessionState;
use crate::tile::{tile_msr_cached, TileMsr, TileMsrConfig};
use crate::Objective;

/// Everything an engine needs from the server: the POI index view and the objective.
///
/// Borrowed per call so one engine instance can serve many trees and objectives (and so
/// engines stay `Send + Sync` for the sharded monitoring engine).  The view is an
/// [`IndexView`]: a plain `&RTree` converts directly, a mutable world contributes its
/// overlay and logical generation.
#[derive(Debug, Clone, Copy)]
pub struct EngineContext<'a> {
    /// The POI index view queried for meeting points and verification candidates.
    pub tree: IndexView<'a>,
    /// MAX (MPN) or SUM (Sum-MPN).
    pub objective: Objective,
}

impl<'a> EngineContext<'a> {
    /// Creates a context over the POI view (a `&RTree`, `&Arc<RTree>` or `&WorldView`).
    #[must_use]
    pub fn new(tree: impl Into<IndexView<'a>>, objective: Objective) -> Self {
        Self { tree: tree.into(), objective }
    }
}

/// A safe-region computation strategy.
///
/// Implementations must be `Send + Sync`: the monitoring engine advances many groups in
/// parallel, each holding its own boxed engine.
pub trait SafeRegionEngine: fmt::Debug + Send + Sync {
    /// Short name used in experiment output, mirroring the paper's legends.
    fn name(&self) -> &'static str;

    /// Whether this engine ever reads the session's predicted headings.
    ///
    /// Engines that return `false` let the monitoring layer skip the per-update
    /// [`SessionState::observe`] call entirely — one `atan2` per user per epoch on the tick
    /// hot path.  This is sound only when the engine never consults
    /// [`SessionState::predicted_headings`] (the predictor state becomes write-only, so not
    /// writing it is unobservable).  Defaults to `true`; the directed tile orderings are the
    /// reason the hook exists on the trait rather than being hard-coded per method.
    fn uses_headings(&self) -> bool {
        true
    }

    /// One-shot computation: the optimal meeting point plus one safe region per user.
    ///
    /// `headings[i]`, when provided, is user `i`'s predicted travel direction (consumed by the
    /// directed tile ordering; other engines ignore it).
    fn compute_stateless(
        &self,
        ctx: EngineContext<'_>,
        users: &[Point],
        headings: Option<&[Option<f64>]>,
    ) -> Answer;

    /// Stateful computation threading the per-group session.
    ///
    /// The answer is stored in (and borrowed back from) the session, so no per-update clone
    /// of the region vectors is paid; read it again later via [`SessionState::last_answer`].
    ///
    /// The default implementation reads the predicted headings from the session, delegates to
    /// [`compute_stateless`](SafeRegionEngine::compute_stateless) and records the answer in
    /// the session.  Engines with reusable state (e.g. the tile engine's GNN buffer) override
    /// it.  Callers must have fed the current locations to
    /// [`SessionState::observe`] beforehand.
    fn compute<'s>(
        &self,
        ctx: EngineContext<'_>,
        users: &[Point],
        session: &'s mut SessionState,
    ) -> &'s Answer {
        let headings = session.predicted_headings();
        let answer = self.compute_stateless(ctx, users, Some(&headings));
        session.record_answer(answer, ctx.tree.generation())
    }
}

/// Circular safe regions (Section 4, `Circle` in the experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircleEngine {
    /// Upper bound on the circle radius for degenerate data sets.
    pub radius_cap: f64,
}

impl CircleEngine {
    /// An engine with the given radius cap.
    #[must_use]
    pub fn new(radius_cap: f64) -> Self {
        Self { radius_cap }
    }
}

impl Default for CircleEngine {
    fn default() -> Self {
        Self { radius_cap: DEFAULT_RADIUS_CAP }
    }
}

impl SafeRegionEngine for CircleEngine {
    fn name(&self) -> &'static str {
        "Circle"
    }

    /// Circle-MSR is heading-oblivious: neither [`compute`](SafeRegionEngine::compute) below
    /// nor [`circle_msr_answer`] ever reads a predicted heading, so the monitoring layer may
    /// skip feeding the predictors for circle groups.
    fn uses_headings(&self) -> bool {
        false
    }

    fn compute_stateless(
        &self,
        ctx: EngineContext<'_>,
        users: &[Point],
        _headings: Option<&[Option<f64>]>,
    ) -> Answer {
        circle_msr_answer(ctx.tree, users, ctx.objective, self.radius_cap)
    }

    /// Circle-MSR ignores headings, so the stateful path skips the per-update
    /// `predicted_headings()` vector the default implementation would build — with a warm
    /// query cache the only allocation left in a circle update is the answer's region
    /// vector.
    fn compute<'s>(
        &self,
        ctx: EngineContext<'_>,
        users: &[Point],
        session: &'s mut SessionState,
    ) -> &'s Answer {
        let answer = self.compute_stateless(ctx, users, None);
        session.record_answer(answer, ctx.tree.generation())
    }
}

/// Tile-based safe regions (Section 5, `Tile` / `Tile-D` / `Tile-D-b` in the experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileEngine {
    /// The Tile-MSR configuration (ordering, verifier, buffering, …).
    pub config: TileMsrConfig,
}

impl TileEngine {
    /// An engine with the given Tile-MSR configuration.
    #[must_use]
    pub fn new(config: TileMsrConfig) -> Self {
        Self { config }
    }

    fn answer_from(out: TileMsr) -> Answer {
        Answer {
            optimal_index: out.optimal.entry.id,
            optimal_point: out.optimal.entry.location,
            optimal_dist: out.optimal.dist,
            regions: out.regions.into_iter().map(SafeRegion::Tiles).collect(),
            stats: out.stats,
        }
    }
}

impl SafeRegionEngine for TileEngine {
    fn name(&self) -> &'static str {
        self.config.name()
    }

    fn compute_stateless(
        &self,
        ctx: EngineContext<'_>,
        users: &[Point],
        headings: Option<&[Option<f64>]>,
    ) -> Answer {
        let out =
            tile_msr_cached(ctx.tree, users, ctx.objective, &self.config, headings, &mut None);
        Self::answer_from(out)
    }

    fn compute<'s>(
        &self,
        ctx: EngineContext<'_>,
        users: &[Point],
        session: &'s mut SessionState,
    ) -> &'s Answer {
        let headings = session.predicted_headings();
        let answer = if let Some(cache) = session.buffer_slot_mut() {
            let out = tile_msr_cached(
                ctx.tree,
                users,
                ctx.objective,
                &self.config,
                Some(&headings),
                cache,
            );
            if out.built_buffer {
                session.count_buffer_builds(1);
            }
            Self::answer_from(out)
        } else {
            self.compute_stateless(ctx, users, Some(&headings))
        };
        session.record_answer(answer, ctx.tree.generation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Method, MpnServer};
    use mpn_index::RTree;

    fn world() -> (RTree, Vec<Point>) {
        let pois: Vec<Point> =
            (0..64).map(|i| Point::new(f64::from(i % 8) * 5.0, f64::from(i / 8) * 5.0)).collect();
        let users = vec![Point::new(11.0, 12.0), Point::new(14.0, 16.0), Point::new(9.0, 17.0)];
        (RTree::bulk_load(&pois), users)
    }

    #[test]
    fn engines_match_the_method_dispatch() {
        let (tree, users) = world();
        let ctx = EngineContext::new(&tree, Objective::Max);
        for method in [
            Method::circle(),
            Method::tile(),
            Method::tile_directed(0.8),
            Method::tile_directed_buffered(0.8, 20),
        ] {
            let via_server = MpnServer::new(&tree, Objective::Max, method).compute(&users);
            let via_engine = method.engine().compute_stateless(ctx, &users, None);
            assert_eq!(via_server.optimal_index, via_engine.optimal_index);
            assert_eq!(via_server.stats, via_engine.stats);
            assert_eq!(via_server.regions.len(), via_engine.regions.len());
            assert_eq!(method.engine().name(), method.name());
        }
    }

    #[test]
    fn default_stateful_compute_records_the_answer() {
        let (tree, users) = world();
        let ctx = EngineContext::new(&tree, Objective::Max);
        let engine = CircleEngine::default();
        let mut session = SessionState::new(users.len(), 0.3);
        session.observe(&users);
        assert!(session.last_answer().is_none());
        let optimal = engine.compute(ctx, &users, &mut session).optimal_index;
        assert_eq!(session.last_answer().unwrap().optimal_index, optimal);
    }

    #[test]
    fn persistent_buffers_are_reused_across_updates() {
        let (tree, users) = world();
        let ctx = EngineContext::new(&tree, Objective::Max);
        let engine = TileEngine::new(TileMsrConfig::tile_directed_buffered(0.8, 20));
        let mut session = SessionState::new(users.len(), 0.3).with_persistent_buffers(true);

        session.observe(&users);
        let first = engine.compute(ctx, &users, &mut session);
        let (first_queries, first_optimal) = (first.stats.rtree_queries, first.optimal_index);
        assert_eq!(first_queries, 2, "first compute builds the buffer");
        assert_eq!(session.buffer_builds(), 1);
        assert!(session.has_cached_buffer());

        // A small move: the optimum is unchanged, so the buffer must be reused.
        let moved: Vec<Point> = users.iter().map(|u| Point::new(u.x + 0.2, u.y)).collect();
        session.observe(&moved);
        let second = engine.compute(ctx, &moved, &mut session);
        assert_eq!(second.stats.rtree_queries, 1, "second compute reuses the buffer");
        assert_eq!(second.optimal_index, first_optimal);
        assert_eq!(session.buffer_builds(), 1);
    }

    #[test]
    fn without_persistence_every_compute_rebuilds() {
        let (tree, users) = world();
        let ctx = EngineContext::new(&tree, Objective::Max);
        let engine = TileEngine::new(TileMsrConfig::tile_directed_buffered(0.8, 20));
        let mut session = SessionState::new(users.len(), 0.3);
        for _ in 0..3 {
            session.observe(&users);
            let answer = engine.compute(ctx, &users, &mut session);
            assert_eq!(answer.stats.rtree_queries, 2);
        }
    }
}
