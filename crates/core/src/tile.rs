//! Tile-based safe regions: the Tile-MSR algorithm (Section 5.2, Algorithm 3) together with
//! the divide-and-conquer verification (Algorithm 2), index pruning (Theorem 3 / Theorem 6)
//! and the buffering optimisation (Section 5.4, Algorithm 5).

use mpn_geom::{DistanceBounds, Point, Square};
use mpn_index::{GnnNeighbor, IndexView, PoiEntry};

use crate::buffer::BufferSet;
use crate::circle::{circle_msr, DEFAULT_RADIUS_CAP};
use crate::ordering::{TileOrdering, TileStream};
use crate::region::{TileCell, TileFrame, TileRegion};
use crate::tile_verify::{GtVerifier, ItVerifier, SumVerifier, TileVerifier, VerifierKind};
use crate::{ComputeStats, Objective};

/// Configuration of Tile-MSR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileMsrConfig {
    /// Tile limit `α`: the maximum number of round-robin passes over the users (Algorithm 3).
    pub alpha: usize,
    /// Split level `L`: how many quad subdivisions Divide-Verify may apply (Algorithm 2).
    pub split_level: u32,
    /// Tile ordering policy (undirected or directed, Section 5.2).
    pub ordering: TileOrdering,
    /// Verification strategy for the MAX objective (IT-Verify or GT-Verify, Section 5.3).
    /// The SUM objective always uses the hyperbola-based verifier of Algorithm 6.
    pub verifier: VerifierKind,
    /// Whether to prune candidate points with the R-tree (Theorem 3 / Theorem 6).
    /// When disabled every POI except `pᵒ` is verified — the unoptimised baseline.
    pub index_pruning: bool,
    /// Buffering parameter `b` of Section 5.4 (`None` disables buffering).
    pub buffering: Option<usize>,
    /// Upper bound on the circular radius used to seed the tile size (see Circle-MSR).
    pub radius_cap: f64,
}

impl Default for TileMsrConfig {
    fn default() -> Self {
        // Defaults follow Table 2 and the accompanying text: α = 30, L = 2, b = 100 when
        // buffering is enabled.
        Self {
            alpha: 30,
            split_level: 2,
            ordering: TileOrdering::Undirected,
            verifier: VerifierKind::Gt,
            index_pruning: true,
            buffering: None,
            radius_cap: DEFAULT_RADIUS_CAP,
        }
    }
}

impl TileMsrConfig {
    /// The paper's `Tile` configuration: undirected ordering, GT-Verify, index pruning.
    #[must_use]
    pub fn tile() -> Self {
        Self::default()
    }

    /// Legend name of this configuration (`Tile`, `Tile-b`, `Tile-D`, `Tile-D-b`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match (self.ordering, self.buffering) {
            (TileOrdering::Undirected, None) => "Tile",
            (TileOrdering::Undirected, Some(_)) => "Tile-b",
            (TileOrdering::Directed { .. }, None) => "Tile-D",
            (TileOrdering::Directed { .. }, Some(_)) => "Tile-D-b",
        }
    }

    /// The paper's `Tile-D` configuration: directed ordering with deviation `theta`.
    #[must_use]
    pub fn tile_directed(theta: f64) -> Self {
        Self { ordering: TileOrdering::Directed { theta }, ..Self::default() }
    }

    /// The paper's `Tile-D-b` configuration: directed ordering plus buffering with parameter `b`.
    #[must_use]
    pub fn tile_directed_buffered(theta: f64, b: usize) -> Self {
        Self { ordering: TileOrdering::Directed { theta }, buffering: Some(b), ..Self::default() }
    }
}

/// A §5.4 GNN buffer together with the user locations it was built at.
///
/// The threshold ladder of a [`BufferSet`] bounds how far each user may stray *from the
/// locations at build time*; anchoring the reuse check (and the per-tile distance of
/// Algorithm 5, line 1) to those locations keeps Theorem 4/7 sound when the buffer outlives
/// the computation that built it.  A stateful session
/// ([`SessionState`](crate::session::SessionState)) keeps one cache per group so that
/// subsequent updates skip the buffer-building GNN query entirely.
#[derive(Debug, Clone)]
pub struct BufferCache {
    pub(crate) set: BufferSet,
    pub(crate) anchors: Vec<Point>,
    /// The objective the threshold ladder was derived under (the SUM denominator is `2m`,
    /// the MAX one `2`, so a ladder is only valid for its own objective).
    objective: Objective,
    /// The buffering parameter `b` the set was built with.
    b: usize,
    /// [`IndexView::generation`] of the view the buffer was queried from: a process-unique
    /// stamp refreshed on every construction and mutation (for a mutable world, its
    /// *logical* generation — preserved across compaction), so a different or modified POI
    /// set is detected exactly, never probabilistically.
    tree_generation: u64,
}

impl BufferCache {
    /// Whether this buffer may serve a computation for the given current state.
    ///
    /// Reuse is allowed only when the cache was built from the same POI content (by logical
    /// generation), objective and buffer size, the group shape is unchanged, the optimal
    /// meeting point is still the one the ladder was derived from, and no user has strayed
    /// beyond half the largest threshold from her anchor location (a heuristic that rebuilds
    /// before the ladder degenerates into rejecting every tile).
    fn reusable_for(
        &self,
        generation: u64,
        users: &[Point],
        objective: Objective,
        b: usize,
        optimal_id: usize,
    ) -> bool {
        self.tree_generation == generation
            && self.objective == objective
            && self.b == b
            && self.anchors.len() == users.len()
            && self.set.optimal().id == optimal_id
            && users
                .iter()
                .zip(&self.anchors)
                .all(|(u, anchor)| u.dist(*anchor) <= 0.5 * self.set.beta())
    }

    /// Whether the buffered prefix contains the given POI (as the optimum or a candidate).
    ///
    /// Deleting a buffered POI can break the threshold ladder (Definition 6 ranks real
    /// neighbours), so the world-change invalidation pass treats any referenced deletion as
    /// breaking the session's cached state.
    pub(crate) fn references(&self, poi: usize) -> bool {
        self.set.optimal().id == poi || self.set.all_candidates().iter().any(|e| e.id == poi)
    }
}

/// Output of Tile-MSR.
#[derive(Debug, Clone)]
pub struct TileMsr {
    /// The optimal meeting point `pᵒ`.
    pub optimal: GnnNeighbor,
    /// The runner-up meeting point (drives the seed tile size), when it exists.
    pub runner_up: Option<GnnNeighbor>,
    /// Seed radius from Circle-MSR (`r_max`); the base tile side is `√2 · r_max`.
    pub radius: f64,
    /// One tile region per user.
    pub regions: Vec<TileRegion>,
    /// Work counters accumulated while computing the regions.
    pub stats: ComputeStats,
    /// Whether this computation built a fresh §5.4 GNN buffer (always `false` without
    /// buffering; `true` on every call when no cache is reused).
    pub built_buffer: bool,
}

/// Runs Tile-MSR (Algorithm 3) for the given group.
///
/// `headings[i]`, when provided, is user `i`'s predicted travel direction used by the directed
/// ordering; pass `None` (or `Some(None)` per user) when headings are unknown.
///
/// # Panics
/// Panics when the tree or the user group is empty.
#[must_use]
pub fn tile_msr<'a>(
    tree: impl Into<IndexView<'a>>,
    users: &[Point],
    objective: Objective,
    config: &TileMsrConfig,
    headings: Option<&[Option<f64>]>,
) -> TileMsr {
    tile_msr_cached(tree, users, objective, config, headings, &mut None)
}

/// Runs Tile-MSR with an optional persistent buffer cache.
///
/// When `config.buffering` is enabled and `cache` holds a [`BufferCache`] that is still valid
/// for the current locations and optimum, the buffered GNN query of Section 5.4 is skipped and
/// the cached prefix is verified against instead (its thresholds stay anchored to the
/// build-time locations, so Theorem 4/7 still hold).  An invalid or absent cache is rebuilt in
/// place.  Passing `&mut None` (what [`tile_msr`] does) builds a fresh buffer and discards it,
/// which is bit-identical to the historical stateless behaviour.
///
/// # Panics
/// Panics when the tree or the user group is empty.
#[must_use]
pub fn tile_msr_cached<'a>(
    tree: impl Into<IndexView<'a>>,
    users: &[Point],
    objective: Objective,
    config: &TileMsrConfig,
    headings: Option<&[Option<f64>]>,
    cache: &mut Option<BufferCache>,
) -> TileMsr {
    let view = tree.into();
    assert!(!view.is_empty(), "Tile-MSR requires a non-empty POI set");
    assert!(!users.is_empty(), "Tile-MSR requires at least one user");
    if let Some(h) = headings {
        assert_eq!(h.len(), users.len(), "one heading slot per user");
    }

    let mut stats = ComputeStats::default();

    // Lines 1-2: seed with Circle-MSR; the initial tile is the maximal square inside the circle.
    let seed = circle_msr(view, users, objective, config.radius_cap);
    stats.gnn.absorb(seed.stats);
    stats.rtree_queries += 1;
    let delta = std::f64::consts::SQRT_2 * seed.radius;

    // Lines 3-4: one seed tile per user.
    let mut regions: Vec<TileRegion> =
        users.iter().map(|u| TileRegion::with_seed(TileFrame::centered_at(*u, delta))).collect();

    // Degenerate seed (the two best meeting points are equidistant): the safe regions collapse
    // to the users' current locations and no browsing can grow them.
    if delta <= f64::EPSILON {
        return TileMsr {
            optimal: seed.optimal,
            runner_up: seed.runner_up,
            radius: seed.radius,
            regions,
            stats,
            built_buffer: false,
        };
    }

    let p_opt = seed.optimal.entry;

    // Optional buffering: one extra GNN query replaces all later candidate retrievals.  A
    // still-valid persistent cache skips even that query.
    let mut built_buffer = false;
    let buffer: Option<&BufferCache> = if let Some(b) = config.buffering {
        let reusable = cache
            .as_ref()
            .is_some_and(|c| c.reusable_for(view.generation(), users, objective, b, p_opt.id));
        if !reusable {
            let set = BufferSet::build(view, users, objective, b);
            stats.gnn.absorb(set.stats);
            stats.rtree_queries += 1;
            built_buffer = true;
            *cache = Some(BufferCache {
                set,
                anchors: users.to_vec(),
                objective,
                b,
                tree_generation: view.generation(),
            });
        }
        cache.as_ref()
    } else {
        None
    };

    let mut verifier: Box<dyn TileVerifier> = match (objective, config.verifier) {
        (Objective::Sum, _) => Box::new(SumVerifier::new(users.len())),
        (Objective::Max, VerifierKind::Gt) => Box::<GtVerifier>::default(),
        (Objective::Max, VerifierKind::It) => Box::<ItVerifier>::default(),
    };

    let mut streams: Vec<TileStream> = users
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let heading = headings.and_then(|h| h[i]);
            TileStream::new(config.ordering, heading, (config.alpha + 2) as i32)
        })
        .collect();

    // Lines 5-10: round-robin tile browsing bounded by α.
    for _round in 0..config.alpha {
        #[allow(clippy::needless_range_loop)] // the index addresses streams, regions and users
        for i in 0..users.len() {
            while let Some(cell) = streams[i].next_cell() {
                let accepted = try_tile(
                    view,
                    users,
                    &mut regions,
                    i,
                    cell,
                    p_opt,
                    objective,
                    config,
                    buffer,
                    verifier.as_mut(),
                    &mut stats,
                );
                if accepted {
                    streams[i].mark_accepted();
                    break;
                }
            }
        }
    }

    TileMsr {
        optimal: seed.optimal,
        runner_up: seed.runner_up,
        radius: seed.radius,
        regions,
        stats,
        built_buffer,
    }
}

/// Attempts one candidate tile for one user: gathers candidates (via the buffer or the R-tree)
/// and runs Divide-Verify / Buffer-Divide-Verify on it.
#[allow(clippy::too_many_arguments)]
fn try_tile(
    view: IndexView<'_>,
    users: &[Point],
    regions: &mut [TileRegion],
    user: usize,
    cell: TileCell,
    p_opt: PoiEntry,
    objective: Objective,
    config: &TileMsrConfig,
    buffer: Option<&BufferCache>,
    verifier: &mut dyn TileVerifier,
    stats: &mut ComputeStats,
) -> bool {
    if let Some(cache) = buffer {
        buffered_divide_verify(
            &cache.anchors,
            regions,
            user,
            cell,
            p_opt,
            &cache.set,
            config.split_level,
            verifier,
            stats,
        )
    } else {
        let square = regions[user].frame().square(cell);
        let candidates =
            gather_candidates(view, users, regions, user, &square, p_opt, objective, config, stats);
        divide_verify(
            regions,
            user,
            cell,
            p_opt.location,
            &candidates,
            config.split_level,
            verifier,
            stats,
        )
    }
}

/// Divide-Verify (Algorithm 2): verify the tile against every candidate; on failure subdivide
/// into four sub-tiles and recurse up to `level` times.  Returns `true` when the tile or at
/// least one of its descendants was added to the user's region.
#[allow(clippy::too_many_arguments)]
pub(crate) fn divide_verify(
    regions: &mut [TileRegion],
    user: usize,
    cell: TileCell,
    p_opt: Point,
    candidates: &[PoiEntry],
    level: u32,
    verifier: &mut dyn TileVerifier,
    stats: &mut ComputeStats,
) -> bool {
    let square = regions[user].frame().square(cell);
    stats.verify_calls += 1;
    let ok = candidates.iter().all(|c| {
        stats.candidates_checked += 1;
        verifier.verify(regions, user, &square, c.location, c.id, p_opt)
    });
    if ok {
        regions[user].push(cell);
        stats.tiles_accepted += 1;
        return true;
    }
    if level == 0 {
        stats.tiles_rejected += 1;
        return false;
    }
    let mut flag = false;
    for child in cell.children() {
        if divide_verify(regions, user, child, p_opt, candidates, level - 1, verifier, stats) {
            flag = true;
        }
    }
    flag
}

/// Buffer-Divide-Verify (Algorithm 5): pick the smallest buffered slot covering the current
/// region extent, verify only against that candidate prefix, and subdivide on failure.
///
/// `anchors` are the user locations *at buffer-build time*: the threshold ladder of Theorem 4
/// / Theorem 7 bounds distances from those, so a reused buffer must keep measuring against
/// them (for a freshly built buffer they equal the current locations).
#[allow(clippy::too_many_arguments)]
pub(crate) fn buffered_divide_verify(
    anchors: &[Point],
    regions: &mut [TileRegion],
    user: usize,
    cell: TileCell,
    p_opt: PoiEntry,
    buffer: &BufferSet,
    level: u32,
    verifier: &mut dyn TileVerifier,
    stats: &mut ComputeStats,
) -> bool {
    let square = regions[user].frame().square(cell);
    // Line 1: the distance any buffered location instance can stray from the buffer's anchor
    // locations — the new tile for this user, the existing regions for the others.
    let mut dist = square.max_dist(anchors[user]);
    for (j, region) in regions.iter().enumerate() {
        if j != user && !region.is_empty() {
            dist = dist.max(region.max_dist(anchors[j]));
        }
    }
    // Lines 2-4: find the smallest admissible slot; reject outright when none covers `dist`.
    let Some(slot) = buffer.slot_for(dist) else {
        stats.tiles_rejected += 1;
        return false;
    };
    let candidates = buffer.candidates(slot);

    stats.verify_calls += 1;
    let ok = candidates.iter().all(|c| {
        stats.candidates_checked += 1;
        verifier.verify(regions, user, &square, c.location, c.id, p_opt.location)
    });
    if ok {
        regions[user].push(cell);
        stats.tiles_accepted += 1;
        return true;
    }
    if level == 0 {
        stats.tiles_rejected += 1;
        return false;
    }
    let mut flag = false;
    for child in cell.children() {
        if buffered_divide_verify(
            anchors,
            regions,
            user,
            child,
            p_opt,
            buffer,
            level - 1,
            verifier,
            stats,
        ) {
            flag = true;
        }
    }
    flag
}

/// Retrieves the candidate points a tile must be verified against.
///
/// With index pruning enabled this applies Theorem 3 (MAX) or Theorem 6 (SUM) on the R-tree,
/// using region extents that already account for the tile under test so the candidate set is
/// conservative; otherwise every POI except `pᵒ` is returned.
#[allow(clippy::too_many_arguments)]
fn gather_candidates(
    view: IndexView<'_>,
    users: &[Point],
    regions: &[TileRegion],
    user: usize,
    tile: &Square,
    p_opt: PoiEntry,
    objective: Objective,
    config: &TileMsrConfig,
    stats: &mut ComputeStats,
) -> Vec<PoiEntry> {
    if !config.index_pruning {
        return view.iter().filter(|e| e.id != p_opt.id).collect();
    }
    stats.rtree_queries += 1;

    // r†ⱼ: how far user j may stray from her current location; for the user under test this
    // must include the new tile.
    let reach: Vec<f64> = users
        .iter()
        .enumerate()
        .map(|(j, u)| {
            let mut r = if regions[j].is_empty() { 0.0 } else { regions[j].max_dist(*u) };
            if j == user {
                r = r.max(tile.max_dist(*u));
            }
            r
        })
        .collect();

    let (candidates, qstats) = match objective {
        Objective::Max => {
            // ‖pᵒ, R‖⊤ including the tile under test.
            let mut dominant = tile.max_dist(p_opt.location);
            for (j, region) in regions.iter().enumerate() {
                if !region.is_empty() {
                    let d = region.max_dist(p_opt.location);
                    if j != user || d > dominant {
                        dominant = dominant.max(d);
                    }
                }
            }
            let radii: Vec<f64> = reach.iter().map(|r| dominant + r).collect();
            view.candidates_within_user_radii(users, &radii)
        }
        Objective::Sum => {
            let base: f64 = users.iter().map(|u| p_opt.location.dist(*u)).sum();
            let threshold = base + 2.0 * reach.iter().sum::<f64>();
            view.candidates_within_sum_radius(users, threshold)
        }
    };
    stats.candidate_retrieval.absorb(qstats);
    candidates.into_iter().filter(|e| e.id != p_opt.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_geom::max_dist_to_set;
    use mpn_index::RTree;

    fn grid_pois(n_side: usize, spacing: f64) -> Vec<Point> {
        (0..n_side * n_side)
            .map(|i| Point::new((i % n_side) as f64 * spacing, (i / n_side) as f64 * spacing))
            .collect()
    }

    fn world() -> (RTree, Vec<Point>) {
        let pois = grid_pois(8, 5.0);
        let users = vec![Point::new(11.0, 12.0), Point::new(14.0, 16.0), Point::new(9.0, 17.0)];
        (RTree::bulk_load(&pois), users)
    }

    #[test]
    fn tile_msr_regions_contain_the_users_and_the_seed_tiles() {
        let (tree, users) = world();
        let out = tile_msr(&tree, &users, Objective::Max, &TileMsrConfig::default(), None);
        assert_eq!(out.regions.len(), users.len());
        for (region, user) in out.regions.iter().zip(&users) {
            assert!(!region.is_empty());
            assert!(region.contains(*user), "the seed tile always covers the user");
        }
        assert!(out.radius > 0.0);
    }

    #[test]
    fn tile_regions_are_at_least_as_large_as_the_inscribed_circle_square() {
        let (tree, users) = world();
        let out = tile_msr(&tree, &users, Objective::Max, &TileMsrConfig::default(), None);
        let seed_area = (std::f64::consts::SQRT_2 * out.radius).powi(2);
        for region in &out.regions {
            assert!(region.area() + 1e-9 >= seed_area);
        }
        // With α = 30 rounds at least one user should have grown past the seed tile.
        let grown = out.regions.iter().any(|r| r.len() > 1);
        assert!(grown, "expected tile regions to grow beyond the seed");
    }

    /// Core invariant (Definition 3): for any instance of locations inside the safe regions,
    /// the optimal meeting point does not change.
    fn assert_safe_region_group_valid(
        tree: &RTree,
        users: &[Point],
        objective: Objective,
        out: &TileMsr,
    ) {
        let pois: Vec<Point> = tree.iter().map(|e| e.location).collect();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand01 = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let instance: Vec<Point> = out
                .regions
                .iter()
                .map(|region| {
                    // Pick a random point in a random tile of the region.
                    let tiles = region.squares();
                    let sq = tiles[(rand01() * tiles.len() as f64) as usize % tiles.len()];
                    let r = sq.to_rect();
                    Point::new(r.lo.x + r.width() * rand01(), r.lo.y + r.height() * rand01())
                })
                .collect();
            for (region, l) in out.regions.iter().zip(&instance) {
                assert!(region.contains(*l));
            }
            let agg = |p: Point| objective.aggregate().point_dist(p, &instance);
            let best = pois.iter().map(|p| agg(*p)).fold(f64::INFINITY, f64::min);
            let current = agg(out.optimal.entry.location);
            assert!(
                current <= best + 1e-6,
                "{objective:?}: optimum changed for locations {instance:?} (current {current}, best {best})"
            );
        }
        let _ = users;
    }

    #[test]
    fn max_tile_regions_never_invalidate_the_optimum() {
        let (tree, users) = world();
        for config in [
            TileMsrConfig::default(),
            TileMsrConfig { verifier: VerifierKind::It, alpha: 6, ..TileMsrConfig::default() },
            TileMsrConfig { index_pruning: false, alpha: 10, ..TileMsrConfig::default() },
            TileMsrConfig::tile_directed(std::f64::consts::FRAC_PI_4),
            TileMsrConfig::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 20),
        ] {
            let out = tile_msr(&tree, &users, Objective::Max, &config, None);
            assert_safe_region_group_valid(&tree, &users, Objective::Max, &out);
        }
    }

    #[test]
    fn sum_tile_regions_never_invalidate_the_optimum() {
        let (tree, users) = world();
        for config in [
            TileMsrConfig::default(),
            TileMsrConfig::tile_directed_buffered(std::f64::consts::FRAC_PI_4, 20),
        ] {
            let out = tile_msr(&tree, &users, Objective::Sum, &config, None);
            assert_safe_region_group_valid(&tree, &users, Objective::Sum, &out);
        }
    }

    #[test]
    fn buffer_cache_is_not_reused_across_objectives_trees_or_sizes() {
        let (tree, users) = world();
        let config = TileMsrConfig::tile_directed_buffered(0.8, 20);
        let mut cache = None;

        let first = tile_msr_cached(&tree, &users, Objective::Max, &config, None, &mut cache);
        assert!(first.built_buffer, "cold cache must build");
        let again = tile_msr_cached(&tree, &users, Objective::Max, &config, None, &mut cache);
        assert!(!again.built_buffer, "unchanged state must reuse");

        // The SUM ladder divides by 2m, not 2: a MAX cache must never serve a SUM query.
        let sum = tile_msr_cached(&tree, &users, Objective::Sum, &config, None, &mut cache);
        assert!(sum.built_buffer, "objective change must rebuild");

        // A different buffering parameter changes the prefix length.
        let bigger = TileMsrConfig::tile_directed_buffered(0.8, 30);
        let resized = tile_msr_cached(&tree, &users, Objective::Sum, &bigger, None, &mut cache);
        assert!(resized.built_buffer, "buffer-size change must rebuild");

        // A different tree (even with identical contents) must rebuild.
        let other_tree = RTree::bulk_load(&grid_pois(8, 5.0));
        let other = tile_msr_cached(&other_tree, &users, Objective::Sum, &bigger, None, &mut cache);
        assert!(other.built_buffer, "tree change must rebuild");

        // Mutating the tree bumps its generation and invalidates the cache.
        let mut mutable = RTree::bulk_load(&grid_pois(8, 5.0));
        let warm = tile_msr_cached(&mutable, &users, Objective::Sum, &bigger, None, &mut cache);
        assert!(warm.built_buffer);
        let reused = tile_msr_cached(&mutable, &users, Objective::Sum, &bigger, None, &mut cache);
        assert!(!reused.built_buffer, "unchanged tree must reuse");
        mutable.insert(Point::new(1.0, 2.0));
        let stale = tile_msr_cached(&mutable, &users, Objective::Sum, &bigger, None, &mut cache);
        assert!(stale.built_buffer, "tree mutation must rebuild");
    }

    #[test]
    fn optimal_point_matches_brute_force() {
        let (tree, users) = world();
        let out = tile_msr(&tree, &users, Objective::Max, &TileMsrConfig::default(), None);
        let brute = tree
            .iter()
            .min_by(|a, b| {
                max_dist_to_set(a.location, &users).total_cmp(&max_dist_to_set(b.location, &users))
            })
            .unwrap();
        assert_eq!(out.optimal.entry.id, brute.id);
    }

    #[test]
    fn buffering_reduces_rtree_queries() {
        let (tree, users) = world();
        let plain = tile_msr(&tree, &users, Objective::Max, &TileMsrConfig::default(), None);
        let buffered = tile_msr(
            &tree,
            &users,
            Objective::Max,
            &TileMsrConfig { buffering: Some(50), ..TileMsrConfig::default() },
            None,
        );
        assert!(
            buffered.stats.rtree_queries < plain.stats.rtree_queries,
            "buffering must avoid per-tile index accesses ({} vs {})",
            buffered.stats.rtree_queries,
            plain.stats.rtree_queries
        );
        assert_eq!(buffered.stats.rtree_queries, 2, "circle GNN + buffer GNN only");
    }

    #[test]
    fn directed_ordering_respects_headings() {
        let (tree, users) = world();
        let headings = vec![Some(0.0), Some(std::f64::consts::FRAC_PI_2), None];
        let out = tile_msr(
            &tree,
            &users,
            Objective::Max,
            &TileMsrConfig::tile_directed(std::f64::consts::FRAC_PI_4),
            Some(&headings),
        );
        // User 0 heads east: every non-seed tile must lie in the eastern half-plane.
        for cell in out.regions[0].cells().iter().filter(|c| !(c.ix == 0 && c.iy == 0)) {
            // Directed layer-1 cells for heading 0 with θ=π/4 are (1,0),(1,1),(1,-1) and their
            // outward continuations / subdivisions, all with positive x at level 0 geometry.
            let sq = out.regions[0].frame().square(*cell);
            assert!(
                sq.center.x >= users[0].x - 1e-9,
                "directed ordering produced a tile behind the user: {cell:?}"
            );
        }
    }

    #[test]
    fn zero_gap_between_best_meeting_points_degenerates_gracefully() {
        // Two POIs symmetric about the single user: best and runner-up tie, radius = 0.
        let tree = RTree::bulk_load(&[Point::new(-1.0, 0.0), Point::new(1.0, 0.0)]);
        let users = vec![Point::new(0.0, 0.0)];
        let out = tile_msr(&tree, &users, Objective::Max, &TileMsrConfig::default(), None);
        assert_eq!(out.radius, 0.0);
        assert_eq!(out.regions[0].len(), 1);
        assert!(out.regions[0].squares()[0].side() <= f64::EPSILON);
    }

    #[test]
    fn it_and_gt_verifiers_produce_valid_groups_of_similar_size() {
        let (tree, users) = world();
        let small = TileMsrConfig { alpha: 8, ..TileMsrConfig::default() };
        let gt = tile_msr(&tree, &users, Objective::Max, &small, None);
        let it = tile_msr(
            &tree,
            &users,
            Objective::Max,
            &TileMsrConfig { verifier: VerifierKind::It, ..small },
            None,
        );
        let gt_area: f64 = gt.regions.iter().map(TileRegion::area).sum();
        let it_area: f64 = it.regions.iter().map(TileRegion::area).sum();
        assert!(gt_area > 0.0 && it_area > 0.0);
        // IT enumerates exact combinations, so it never produces smaller regions than GT by
        // more than a subdivision artefact; both must stay within a factor of each other.
        assert!(gt_area <= it_area * 1.5 + 1e-9);
    }
}
