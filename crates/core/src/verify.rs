//! Conservative verification of safe-region groups (Section 4.1, Lemma 1).
//!
//! Verification answers: *given one region per user, can a candidate point `p` ever beat the
//! current optimum `pᵒ` while every user stays inside her region?*  Lemma 1 gives a
//! conservative sufficient condition using the dominant distances of Definition 5:
//!
//! ```text
//!   ‖pᵒ, R‖⊤  ≤  ‖p, R‖⊥        where   ‖p, R‖⊤ = max_i ‖p, Rᵢ‖max ,  ‖p, R‖⊥ = max_i ‖p, Rᵢ‖min
//! ```
//!
//! The predicate may produce false negatives (rejecting a valid group) but never false
//! positives, which is exactly what the safe-region algorithms need.
//!
//! The [`RegionView`] trait lets the same predicate run over whole tile regions, single tiles,
//! circles, and the *grouped* tile subsets used by GT-Verify (Theorem 2) without copying tiles.

use mpn_geom::{Circle, DistanceBounds, Point, Square, EPSILON};

use crate::region::TileRegion;

/// A read-only view of one user's region for verification purposes.
///
/// An *empty* view reports `min_dist = +∞` and `max_dist = −∞`; Lemma 1 then treats the user
/// as unconstrained, which makes checks over empty tile groups vacuously true — the behaviour
/// required by the grouped tests of Theorem 2.
pub trait RegionView {
    /// `‖p, Rᵢ‖min` (infinity when the view is empty).
    fn view_min_dist(&self, p: Point) -> f64;
    /// `‖p, Rᵢ‖max` (negative infinity when the view is empty).
    fn view_max_dist(&self, p: Point) -> f64;
    /// Whether the view contains no geometry.
    fn view_is_empty(&self) -> bool {
        false
    }
}

impl RegionView for Circle {
    fn view_min_dist(&self, p: Point) -> f64 {
        self.min_dist(p)
    }
    fn view_max_dist(&self, p: Point) -> f64 {
        self.max_dist(p)
    }
}

impl RegionView for Square {
    fn view_min_dist(&self, p: Point) -> f64 {
        self.min_dist(p)
    }
    fn view_max_dist(&self, p: Point) -> f64 {
        self.max_dist(p)
    }
}

impl RegionView for TileRegion {
    fn view_min_dist(&self, p: Point) -> f64 {
        self.min_dist(p)
    }
    fn view_max_dist(&self, p: Point) -> f64 {
        self.max_dist(p)
    }
    fn view_is_empty(&self) -> bool {
        self.is_empty()
    }
}

impl RegionView for Point {
    fn view_min_dist(&self, p: Point) -> f64 {
        self.dist(p)
    }
    fn view_max_dist(&self, p: Point) -> f64 {
        self.dist(p)
    }
}

/// A view over an arbitrary set of squares (borrowed), used by GT-Verify's tile groups.
#[derive(Debug, Clone)]
pub struct SquaresView<'a> {
    squares: &'a [Square],
    /// Indices of the squares included in this view; `None` means all of them.
    selection: Option<Vec<usize>>,
}

impl<'a> SquaresView<'a> {
    /// A view over every square in the slice.
    #[must_use]
    pub fn all(squares: &'a [Square]) -> Self {
        Self { squares, selection: None }
    }

    /// A view over the squares at the given indices.
    #[must_use]
    pub fn subset(squares: &'a [Square], selection: Vec<usize>) -> Self {
        Self { squares, selection: Some(selection) }
    }

    fn iter(&self) -> impl Iterator<Item = &Square> + '_ {
        let all = self.selection.is_none();
        let from_selection = self.selection.iter().flatten().map(move |&i| &self.squares[i]);
        let from_all = self.squares.iter().filter(move |_| all);
        from_selection.chain(from_all)
    }

    /// Number of squares visible through this view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.selection.as_ref().map_or(self.squares.len(), Vec::len)
    }

    /// Whether the view exposes no squares.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RegionView for SquaresView<'_> {
    fn view_min_dist(&self, p: Point) -> f64 {
        self.iter().map(|s| s.min_dist(p)).fold(f64::INFINITY, f64::min)
    }
    fn view_max_dist(&self, p: Point) -> f64 {
        self.iter().map(|s| s.max_dist(p)).fold(f64::NEG_INFINITY, f64::max)
    }
    fn view_is_empty(&self) -> bool {
        self.is_empty()
    }
}

/// A heterogeneous group of region views, one per user.
pub type ViewGroup<'a> = Vec<&'a dyn RegionView>;

/// Dominant maximum distance `‖p, R‖⊤ = max_i ‖p, Rᵢ‖max` (Definition 5).
///
/// Empty views contribute nothing; a group of only empty views yields `−∞`.
#[must_use]
pub fn dominant_max_dist(views: &[&dyn RegionView], p: Point) -> f64 {
    views
        .iter()
        .filter(|v| !v.view_is_empty())
        .map(|v| v.view_max_dist(p))
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Dominant minimum distance `‖p, R‖⊥ = max_i ‖p, Rᵢ‖min` (Definition 5).
#[must_use]
pub fn dominant_min_dist(views: &[&dyn RegionView], p: Point) -> f64 {
    views
        .iter()
        .filter(|v| !v.view_is_empty())
        .map(|v| v.view_min_dist(p))
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Index of the user contributing the dominant maximum distance (`u⊤_p`), if any.
#[must_use]
pub fn dominant_max_user(views: &[&dyn RegionView], p: Point) -> Option<usize> {
    views
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.view_is_empty())
        .max_by(|a, b| a.1.view_max_dist(p).total_cmp(&b.1.view_max_dist(p)))
        .map(|(i, _)| i)
}

/// Conservative verification of Lemma 1 for the MAX objective.
///
/// Returns `true` when the candidate `p` provably cannot have a smaller dominant distance than
/// the optimum `p_opt` for *any* instance of user locations inside their regions.  A small
/// epsilon is subtracted from the safe side so floating-point error only makes the check more
/// conservative.
#[must_use]
pub fn verify_max(views: &[&dyn RegionView], p_opt: Point, p: Point) -> bool {
    if views.iter().any(|v| v.view_is_empty()) {
        // A combination requires one location per user; with an empty member there is no
        // combination to invalidate the result, so the check is vacuously true.
        return true;
    }
    dominant_max_dist(views, p_opt) <= dominant_min_dist(views, p) + EPSILON
}

/// Exhaustive (exponential) verification used as a test oracle: checks Lemma 1 over every
/// combination of one square per user.  This matches the "IT-Verify" enumeration of
/// Section 5.3 and is only meant for small inputs.
#[must_use]
pub fn verify_max_exhaustive(per_user_squares: &[Vec<Square>], p_opt: Point, p: Point) -> bool {
    if per_user_squares.iter().any(Vec::is_empty) {
        return true;
    }
    let m = per_user_squares.len();
    let mut indices = vec![0usize; m];
    loop {
        let combo: Vec<&dyn RegionView> = indices
            .iter()
            .enumerate()
            .map(|(u, &i)| &per_user_squares[u][i] as &dyn RegionView)
            .collect();
        if !verify_max(&combo, p_opt, p) {
            return false;
        }
        // Advance the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == m {
                return true;
            }
            indices[k] += 1;
            if indices[k] < per_user_squares[k].len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{TileCell, TileFrame};

    fn tile_region(center: Point, delta: f64, cells: &[TileCell]) -> TileRegion {
        let mut r = TileRegion::new(TileFrame::centered_at(center, delta));
        for c in cells {
            r.push(*c);
        }
        r
    }

    #[test]
    fn dominant_distances_match_definition_5() {
        let r1 = Circle::new(Point::new(0.0, 0.0), 1.0);
        let r2 = Circle::new(Point::new(10.0, 0.0), 2.0);
        let views: Vec<&dyn RegionView> = vec![&r1, &r2];
        let p = Point::new(0.0, 0.0);
        // max over {maxdist(p,R1)=1, maxdist(p,R2)=12} = 12
        assert!((dominant_max_dist(&views, p) - 12.0).abs() < 1e-12);
        // max over {mindist=0, mindist=8} = 8
        assert!((dominant_min_dist(&views, p) - 8.0).abs() < 1e-12);
        assert_eq!(dominant_max_user(&views, p), Some(1));
    }

    #[test]
    fn lemma1_passes_and_fails_as_in_fig6a() {
        // Figure 6(a): kpo,R2kmax < kp1,R1kmin so the group verifies.
        let po = Point::new(0.0, 0.0);
        let p1 = Point::new(100.0, 0.0);
        let r1 = Circle::new(Point::new(10.0, 0.0), 1.0); // far from p1
        let r2 = Circle::new(Point::new(2.0, 0.0), 1.0);
        let r3 = Circle::new(Point::new(-2.0, 1.0), 1.0);
        let views: Vec<&dyn RegionView> = vec![&r1, &r2, &r3];
        assert!(verify_max(&views, po, p1));
        // A candidate sitting in the middle of the group is within the dominant max distance
        // of every region, so the conservative test must reject the group for it.
        let near = Point::new(5.0, 0.0);
        assert!(!verify_max(&views, po, near));
    }

    #[test]
    fn vacuous_verification_with_empty_member() {
        let r1 = tile_region(Point::new(0.0, 0.0), 2.0, &[TileCell::SEED]);
        let empty = tile_region(Point::new(5.0, 5.0), 2.0, &[]);
        let views: Vec<&dyn RegionView> = vec![&r1, &empty];
        assert!(verify_max(&views, Point::new(0.0, 0.0), Point::new(0.1, 0.0)));
    }

    #[test]
    fn point_views_reduce_to_exact_distances() {
        let u1 = Point::new(0.0, 0.0);
        let u2 = Point::new(4.0, 0.0);
        let views: Vec<&dyn RegionView> = vec![&u1, &u2];
        let po = Point::new(2.0, 0.0);
        let p = Point::new(10.0, 0.0);
        // With degenerate (point) regions Lemma 1 is exact: po dominates because
        // max(2,2)=2 <= max(10,6)=6.
        assert!(verify_max(&views, po, p));
        assert!(!verify_max(&views, p, po));
    }

    #[test]
    fn squares_view_subset_and_all() {
        let squares =
            vec![Square::new(Point::new(0.0, 0.0), 2.0), Square::new(Point::new(10.0, 0.0), 2.0)];
        let all = SquaresView::all(&squares);
        let only_far = SquaresView::subset(&squares, vec![1]);
        let empty = SquaresView::subset(&squares, vec![]);
        let p = Point::new(0.0, 0.0);
        assert_eq!(all.len(), 2);
        assert!((all.view_min_dist(p) - 0.0).abs() < 1e-12);
        assert!((only_far.view_min_dist(p) - 9.0).abs() < 1e-12);
        assert!(empty.is_empty());
        assert_eq!(empty.view_min_dist(p), f64::INFINITY);
        assert_eq!(empty.view_max_dist(p), f64::NEG_INFINITY);
    }

    #[test]
    fn exhaustive_verification_agrees_with_lemma1_on_singletons() {
        let per_user = vec![
            vec![Square::new(Point::new(0.0, 0.0), 1.0)],
            vec![Square::new(Point::new(3.0, 0.0), 1.0)],
        ];
        let po = Point::new(1.5, 0.0);
        let p_far = Point::new(50.0, 0.0);
        // A candidate right next to pᵒ (but off-axis) can win for some location instances,
        // so the conservative check must reject it.
        let p_near = Point::new(1.5, 0.2);
        assert!(verify_max_exhaustive(&per_user, po, p_far));
        assert!(!verify_max_exhaustive(&per_user, po, p_near));
    }

    #[test]
    fn exhaustive_verification_is_tighter_than_whole_region_lemma1() {
        // Reproduces the Fig. 6(b) phenomenon: Lemma 1 over a whole region fails because the
        // dominant max (w.r.t. pᵒ) and dominant min (w.r.t. p₁) are contributed by two
        // different locations inside the same region, which cannot co-occur.  Checking the
        // region tile-by-tile succeeds.
        let po = Point::new(0.0, 0.0);
        let p1 = Point::new(10.0, 0.0);
        // Users 1 and 3 have tiny regions near pᵒ; user 2's region is a tall strip that stays
        // strictly on pᵒ's side of the bisector (every point is closer to pᵒ than to p₁), so
        // the safe-region group is genuinely valid.
        let r1_tiles = vec![Square::new(Point::new(0.0, 1.0), 0.2)];
        let r3_tiles = vec![Square::new(Point::new(1.0, -1.0), 0.2)];
        let r2_tiles = vec![
            Square::new(Point::new(3.0, 8.5), 1.0),
            Square::new(Point::new(3.0, 9.5), 1.0),
            Square::new(Point::new(3.0, 10.5), 1.0),
            Square::new(Point::new(3.0, 11.5), 1.0),
        ];
        let whole_r1 = SquaresView::all(&r1_tiles);
        let whole_r2 = SquaresView::all(&r2_tiles);
        let whole_r3 = SquaresView::all(&r3_tiles);
        let whole: Vec<&dyn RegionView> = vec![&whole_r1, &whole_r2, &whole_r3];
        assert!(!verify_max(&whole, po, p1));
        assert!(verify_max_exhaustive(&[r1_tiles, r2_tiles, r3_tiles], po, p1));
    }
}
