//! A persistent, scoped worker pool built only on `std`.
//!
//! The monitoring engine in `mpn-sim` advances its shards in parallel on every tick.  Doing
//! that with [`std::thread::scope`] means spawning and joining one OS thread per shard per
//! tick — fine when a tick carries heavy safe-region computations, but measurable overhead on
//! quiet ticks where every shard only runs violation checks.  [`WorkerPool`] keeps the shard
//! workers alive instead: threads are spawned once, park on a channel between ticks, and a
//! [`scoped`](WorkerPool::scoped) call acts as the tick barrier — it hands one closure per
//! shard to the workers and blocks until all of them completed, so borrowed data (the shards,
//! the POI tree) may safely flow into the jobs.
//!
//! The external `rayon` crate would be the natural choice, but this workspace builds without
//! network access.  The pool follows the well-trodden `scoped_threadpool` design instead:
//!
//! * jobs are boxed closures whose borrow lifetime is erased to `'static` before crossing the
//!   channel — the **only** `unsafe` in the workspace;
//! * soundness comes from the barrier: [`Scope`] joins every submitted job before it is
//!   dropped (including during unwinding), so no job can outlive the borrows it captures;
//! * a job that panics is caught on the worker (keeping the pool alive), recorded, and the
//!   panic is re-raised on the caller of [`scoped`](WorkerPool::scoped) after the barrier.
//!
//! Workers are distributed jobs round-robin over per-worker channels; with one job per worker
//! (the engine's one-job-per-live-shard pattern) every worker receives exactly one wake-up
//! per barrier.  [`shutdown`](WorkerPool::shutdown) (also run on drop) closes the channels
//! and joins the threads, reporting whether every worker exited cleanly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job crossing to a worker: boxed so it can be sent, lifetime-erased by the scope.
type Thunk<'a> = Box<dyn FnOnce() + Send + 'a>;

/// State shared between the pool handle and its worker threads: the completion barrier.
#[derive(Debug)]
struct Barrier {
    /// Jobs submitted to the current scope that have not completed yet.
    pending: Mutex<usize>,
    /// Signalled whenever `pending` drops to zero.
    all_done: Condvar,
    /// Set by a worker whose job panicked; drained (and re-raised) by `scoped`.
    job_panicked: AtomicBool,
}

/// One long-lived worker: its job channel and its join handle.
#[derive(Debug)]
struct Worker {
    /// `None` once the pool has shut down (closing the channel stops the thread).
    sender: Option<Sender<Thunk<'static>>>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of persistent worker threads executing borrowed jobs scope by scope.
///
/// See the [module docs](self) for the design.  The pool is deliberately minimal: no work
/// stealing, no nested scopes, one scope at a time (enforced by `&mut self`).
#[derive(Debug)]
pub struct WorkerPool {
    workers: Vec<Worker>,
    barrier: Arc<Barrier>,
    /// Round-robin cursor for job distribution.
    next_worker: usize,
}

impl WorkerPool {
    /// Spawns `threads` parked worker threads (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let barrier = Arc::new(Barrier {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            job_panicked: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let (sender, receiver) = channel::<Thunk<'static>>();
                let barrier = Arc::clone(&barrier);
                let handle = std::thread::Builder::new()
                    .name(format!("mpn-pool-{i}"))
                    .spawn(move || {
                        // Park on the channel; exit when the pool closes it.
                        while let Ok(job) = receiver.recv() {
                            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                barrier.job_panicked.store(true, Ordering::SeqCst);
                            }
                            let mut pending = barrier
                                .pending
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            *pending -= 1;
                            if *pending == 0 {
                                barrier.all_done.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker thread");
                Worker { sender: Some(sender), handle: Some(handle) }
            })
            .collect();
        Self { workers, barrier, next_worker: 0 }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Runs a batch of borrowed jobs: `f` submits them via [`Scope::execute`], and `scoped`
    /// returns only after every submitted job completed (the tick barrier).
    ///
    /// # Panics
    /// Re-raises a panic from any job (after the barrier, so borrows stay sound), and panics
    /// when called on a pool that was already [`shutdown`](WorkerPool::shutdown).
    pub fn scoped<'pool, 'scope, R>(
        &'pool mut self,
        f: impl FnOnce(&mut Scope<'pool, 'scope>) -> R,
    ) -> R {
        let barrier = Arc::clone(&self.barrier);
        // A previous scope whose *body* panicked may have left a job-panic report undrained
        // (the re-raise below is skipped during unwinding — that scope's own panic already
        // propagated).  Don't charge it to this scope's jobs.
        barrier.job_panicked.store(false, Ordering::SeqCst);
        let mut scope = Scope { pool: self, _scope: std::marker::PhantomData };
        let result = f(&mut scope);
        scope.join_all();
        drop(scope); // explicit: the Drop barrier has already been satisfied
        if barrier.job_panicked.swap(false, Ordering::SeqCst) {
            panic!("a worker-pool job panicked");
        }
        result
    }

    /// Closes the job channels and joins every worker; returns whether all of them exited
    /// cleanly (no worker died, no unreported job panic).  Idempotent.
    pub fn shutdown(&mut self) -> bool {
        for worker in &mut self.workers {
            worker.sender.take();
        }
        let mut clean = true;
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                clean &= handle.join().is_ok();
            }
        }
        clean && !self.barrier.job_panicked.load(Ordering::SeqCst)
    }

    /// Whether [`shutdown`](WorkerPool::shutdown) has completed (all workers joined).
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        self.workers.iter().all(|w| w.handle.is_none())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A batch of jobs tied to one [`WorkerPool::scoped`] call.
///
/// Dropping the scope joins all outstanding jobs, which is what makes handing borrowed data
/// to the workers sound even when the scope body unwinds.
pub struct Scope<'pool, 'scope> {
    pool: &'pool mut WorkerPool,
    /// Invariant over `'scope` (mirrors `scoped_threadpool`): prevents the borrow checker
    /// from shrinking the scope lifetime below the borrows captured by submitted jobs.
    _scope: std::marker::PhantomData<std::cell::Cell<&'scope mut ()>>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Submits one job to the next worker (round-robin).  The job may borrow anything that
    /// outlives `'scope`; it is guaranteed to finish before `scoped` returns.
    pub fn execute<F: FnOnce() + Send + 'scope>(&mut self, f: F) {
        // Check the target worker is alive *before* bumping the barrier count: a panic on a
        // pool that was already shut down must not strand `pending` above zero, or the
        // unwinding scope's join barrier would wait forever instead of propagating the panic.
        let w = self.pool.next_worker % self.pool.workers.len();
        assert!(self.pool.workers[w].sender.is_some(), "worker pool already shut down");
        self.pool.next_worker = self.pool.next_worker.wrapping_add(1);
        {
            let mut pending =
                self.pool.barrier.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *pending += 1;
        }
        // The count must be raised before the send — a worker may finish the job (and
        // decrement) before this thread would otherwise get around to incrementing.
        let job: Thunk<'scope> = Box::new(f);
        // SAFETY: the lifetime of the boxed job is erased so it can cross the channel to a
        // long-lived worker thread.  `join_all` runs before `'scope` ends on every path —
        // `scoped` calls it after the body, and `Scope::drop` repeats it during unwinding —
        // so the job (and thus every borrow it captures) never outlives `'scope`.
        let job: Thunk<'static> =
            unsafe { std::mem::transmute::<Thunk<'scope>, Thunk<'static>>(job) };
        let sender = self.pool.workers[w].sender.as_ref().expect("liveness checked above");
        if sender.send(job).is_err() {
            // The job never reached a worker: roll the barrier back before reporting, so the
            // scope can still join what *was* submitted.
            let mut pending =
                self.pool.barrier.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *pending -= 1;
            drop(pending);
            panic!("worker thread exited while the pool was live");
        }
    }

    /// Blocks until every job submitted to this scope has completed.
    fn join_all(&self) {
        let mut pending =
            self.pool.barrier.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *pending > 0 {
            pending = self
                .pool
                .barrier
                .all_done
                .wait(pending)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn jobs_mutate_borrowed_data_through_the_barrier() {
        let mut pool = WorkerPool::new(4);
        assert_eq!(pool.worker_count(), 4);
        let mut values = vec![0usize; 16];
        pool.scoped(|scope| {
            for (i, slot) in values.iter_mut().enumerate() {
                scope.execute(move || *slot = i * i);
            }
        });
        assert_eq!(values, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn scopes_are_reusable_and_workers_persist() {
        let mut pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.scoped(|scope| {
                for _ in 0..2 {
                    scope.execute(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn empty_scopes_are_fine() {
        let mut pool = WorkerPool::new(3);
        let out = pool.scoped(|_| 7);
        assert_eq!(out, 7);
    }

    #[test]
    fn zero_thread_request_is_clamped() {
        let mut pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 5));
        assert_eq!(x, 5);
    }

    #[test]
    fn job_panics_are_reraised_after_the_barrier() {
        let mut pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("job boom"));
                scope.execute(|| {});
            });
        }));
        assert!(caught.is_err(), "the job panic must propagate to the scope caller");
        // The pool survives a job panic and keeps working.
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 1));
        assert_eq!(x, 1);
        assert!(pool.shutdown(), "a caught-and-reported panic leaves the shutdown clean");
    }

    #[test]
    fn execute_after_shutdown_panics_instead_of_hanging() {
        let mut pool = WorkerPool::new(2);
        assert!(pool.shutdown());
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| scope.execute(|| {}));
        }));
        // The panic must propagate: the barrier count is only raised after the liveness
        // check, so the unwinding scope's join does not wait for a job no worker ever saw.
        assert!(caught.is_err(), "submitting to a shut-down pool is a panic, not a hang");
    }

    #[test]
    fn a_panicking_scope_body_does_not_poison_the_next_scope() {
        let mut pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("job boom"));
                panic!("body boom");
            });
        }));
        assert!(caught.is_err());
        // The body panic propagated; the undrained job-panic report must not be charged to
        // the next, fully successful scope.
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 1));
        assert_eq!(x, 1);
    }

    #[test]
    fn shutdown_is_clean_and_idempotent() {
        let mut pool = WorkerPool::new(4);
        pool.scoped(|scope| scope.execute(|| {}));
        assert!(!pool.is_shut_down());
        assert!(pool.shutdown());
        assert!(pool.is_shut_down());
        assert!(pool.shutdown(), "second shutdown is a clean no-op");
    }
}
