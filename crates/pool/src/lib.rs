//! A persistent, work-stealing, scoped worker pool built only on `std`.
//!
//! The monitoring engine in `mpn-sim` advances its shards in parallel on every tick.  Doing
//! that with [`std::thread::scope`] means spawning and joining one OS thread per shard per
//! tick — fine when a tick carries heavy safe-region computations, but measurable overhead on
//! quiet ticks.  [`WorkerPool`] keeps the workers alive instead: threads are spawned once,
//! park on a condition variable between ticks, and a [`scoped`](WorkerPool::scoped) call acts
//! as the tick barrier — it hands closures to the workers and blocks until all of them
//! completed, so borrowed data (the shards, the POI tree) may safely flow into the jobs.
//!
//! # Deques and stealing
//!
//! A tick is only as fast as its slowest worker, and real fleets are skewed: one shard can
//! carry a group ten times the size of everyone else's.  The pool therefore follows the
//! classic work-stealing shape (Chase–Lev, here with a mutex-backed `VecDeque` since this
//! workspace builds without external crates):
//!
//! * **Ownership.**  Every worker owns one deque.  [`Scope::execute_on`] pushes a job onto a
//!   *specific* worker's deque (the engine routes a shard's session batches to the shard's
//!   worker, preserving locality); [`Scope::execute`] round-robins over the deques.  Only the
//!   submitting thread pushes — workers never re-enqueue — so a deque only shrinks while a
//!   scope's barrier is waiting.
//! * **LIFO owner pop, FIFO steal.**  An owner pops its own deque from the back (the most
//!   recently pushed job is the hottest in cache); a worker whose own deque is empty scans
//!   the other deques — starting after itself, so thieves spread out — and steals from the
//!   *front*, taking the oldest job, the one the owner would reach last.  Owner and thief
//!   therefore drain opposite ends and only contend on the final job.
//! * **Parking.**  A worker that finds every deque empty re-checks all of them *while
//!   holding the parking mutex* and only then waits on the condition variable; producers
//!   push first and then notify under the same mutex, so a wake-up can never be lost.
//!
//! Per-scope diagnostics — jobs submitted, steals, per-worker execution counts — are
//! captured at the barrier and exposed via [`WorkerPool::last_scope_stats`]; the engine
//! surfaces them as tick counters.  They describe *scheduling*, which is racy by design:
//! two runs of the same workload may steal differently while computing identical results.
//!
//! # Workers persist, and so do their arenas
//!
//! The pool's threads live for the lifetime of the pool, which is what makes *per-worker*
//! scratch state cheap: thread-keyed arenas (e.g. `mpn-index`'s query scratch, which keeps
//! the cache probe key and candidate staging buffers) are built once per worker and then
//! reused by every batch that worker executes, tick after tick.  A scoped-thread executor
//! gets fresh threads — and therefore cold arenas — every tick; routing the tick through
//! the pool is what turns those per-query allocations into steady-state zero.
//!
//! The dispatch path is deliberately lean for the same reason: the barrier count is a
//! plain atomic (no mutex round-trip per submitted job), and only the final decrement to
//! zero takes the completion lock to signal the barrier.
//!
//! # Panic semantics
//!
//! * A job that panics is caught on the worker (keeping the pool alive), recorded, and the
//!   panic is re-raised on the caller of [`scoped`](WorkerPool::scoped) after the barrier.
//! * Dispatch **fails fast**: [`Scope::execute`] / [`Scope::execute_on`] drain the panic
//!   flag before pushing, so once any job of the scope has panicked the next submission
//!   panics immediately instead of fanning more work onto a doomed tick and discovering the
//!   failure at the barrier.
//! * The scope's drop joins every outstanding job even during unwinding — the borrows jobs
//!   capture never outlive the scope — and a scope whose *body* panicked does not poison the
//!   next scope (the flag is reset when a new scope starts).
//!
//! Jobs are boxed closures whose borrow lifetime is erased to `'static` before reaching a
//! deque — the **only** `unsafe` in the workspace; soundness comes from the barrier, exactly
//! as in the well-trodden `scoped_threadpool` design.  [`shutdown`](WorkerPool::shutdown)
//! (also run on drop) raises the shutdown flag, wakes every worker and joins the threads,
//! reporting whether all of them exited cleanly.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A job crossing to a worker: boxed so it can be sent, lifetime-erased by the scope.
type Thunk<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Locks a mutex, ignoring poisoning (a panicking job is already recorded separately).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// One job deque per worker: the owner pops from the back, thieves pop from the front.
    deques: Vec<Mutex<VecDeque<Thunk<'static>>>>,
    /// Parking lock; the guarded flag is the shutdown request.  Producers notify
    /// [`Shared::work_ready`] under this mutex after pushing, workers re-check every deque
    /// under it before waiting, so no wake-up is ever lost.
    parking: Mutex<bool>,
    work_ready: Condvar,
    /// Jobs submitted to the current scope that have not completed yet.  A plain atomic so
    /// the dispatch hot path (thousands of batch jobs per tick) pays no mutex round-trip;
    /// [`Shared::done`] is locked only around the barrier wait and the final decrement.
    pending: AtomicUsize,
    /// Completion lock for the barrier: [`Scope::join_all`] re-checks `pending` under it
    /// before waiting, and a worker whose decrement hit zero locks it before notifying, so
    /// the wake-up can never be lost.
    done: Mutex<()>,
    /// Signalled whenever `pending` drops to zero.
    all_done: Condvar,
    /// Set by a worker whose job panicked; drained by dispatch (fail fast) or by `scoped`
    /// (re-raise after the barrier).
    job_panicked: AtomicBool,
    /// Jobs taken from another worker's deque during the current scope.
    steals: AtomicUsize,
    /// Jobs executed per worker during the current scope.
    executed: Vec<AtomicUsize>,
}

impl Shared {
    /// The worker loop: own deque from the back, then steal from the front of the others,
    /// then park.  Exits when the shutdown flag is raised (all deques are empty by then —
    /// every scope joins its jobs before returning, and shutdown needs `&mut` access).
    fn worker_loop(&self, me: usize) {
        loop {
            if let Some(job) = lock(&self.deques[me]).pop_back() {
                self.run_job(me, job);
                continue;
            }
            if let Some(job) = self.try_steal(me) {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.run_job(me, job);
                continue;
            }
            let parked = lock(&self.parking);
            if *parked {
                return;
            }
            // Re-check under the parking lock: a producer that pushed after the scans above
            // must either be seen here or notify after this thread started waiting.
            if self.deques.iter().any(|d| !lock(d).is_empty()) {
                continue;
            }
            drop(self.work_ready.wait(parked));
        }
    }

    /// Scans the other deques (starting after `me`, so thieves spread out) and steals the
    /// *oldest* job of the first non-empty one.
    fn try_steal(&self, me: usize) -> Option<Thunk<'static>> {
        let n = self.deques.len();
        (1..n).find_map(|step| lock(&self.deques[(me + step) % n]).pop_front())
    }

    fn run_job(&self, me: usize, job: Thunk<'static>) {
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            self.job_panicked.store(true, Ordering::SeqCst);
        }
        self.executed[me].fetch_add(1, Ordering::Relaxed);
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last job of the scope: take the completion lock before notifying.  A joiner
            // that saw `pending > 0` is either still holding the lock (we wait for it, then
            // our notify lands after its `wait` began) or already waiting — never between.
            let _done = lock(&self.done);
            self.all_done.notify_all();
        }
    }
}

/// Scheduling diagnostics of one completed [`WorkerPool::scoped`] call.
///
/// These counters describe how the barrier's work was *distributed*, not what it computed:
/// they depend on thread timing and differ run to run even for identical workloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Jobs submitted to the scope.
    pub jobs: usize,
    /// Jobs a worker took from another worker's deque (idle workers helping a straggler).
    pub steals: usize,
    /// Jobs executed by each worker, in worker order.  Sums to [`jobs`](ScopeStats::jobs).
    pub per_worker: Vec<usize>,
}

impl ScopeStats {
    /// Spread between the busiest and the laziest worker (0 for an empty scope): how uneven
    /// the tick's work ended up *after* stealing.
    #[must_use]
    pub fn imbalance(&self) -> usize {
        let max = self.per_worker.iter().copied().max().unwrap_or(0);
        let min = self.per_worker.iter().copied().min().unwrap_or(0);
        max - min
    }
}

/// A pool of persistent, work-stealing worker threads executing borrowed jobs scope by scope.
///
/// See the [module docs](self) for the deque/steal design and the panic semantics.  One
/// scope runs at a time (enforced by `&mut self`); nested scopes are not supported.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<Option<JoinHandle<()>>>,
    /// Round-robin cursor for [`Scope::execute`].
    next_worker: usize,
    shut_down: bool,
    last_stats: ScopeStats,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("shut_down", &self.shut_down)
            .field("last_stats", &self.last_stats)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` parked worker threads (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            parking: Mutex::new(false),
            work_ready: Condvar::new(),
            pending: AtomicUsize::new(0),
            done: Mutex::new(()),
            all_done: Condvar::new(),
            job_panicked: AtomicBool::new(false),
            steals: AtomicUsize::new(0),
            executed: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("mpn-pool-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("failed to spawn pool worker thread");
                Some(handle)
            })
            .collect();
        Self {
            shared,
            handles,
            next_worker: 0,
            shut_down: false,
            last_stats: ScopeStats::default(),
        }
    }

    /// Number of worker threads (and of job deques).
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Runs a batch of borrowed jobs: `f` submits them via [`Scope::execute`] /
    /// [`Scope::execute_on`], and `scoped` returns only after every submitted job completed
    /// (the tick barrier).
    ///
    /// # Panics
    /// Re-raises a panic from any job (after the barrier, so borrows stay sound), and panics
    /// when called on a pool that was already [`shutdown`](WorkerPool::shutdown).
    pub fn scoped<'pool, 'scope, R>(
        &'pool mut self,
        f: impl FnOnce(&mut Scope<'pool, 'scope>) -> R,
    ) -> R {
        let shared = Arc::clone(&self.shared);
        // A previous scope whose *body* panicked may have left a job-panic report undrained
        // (the re-raise below is skipped during unwinding — that scope's own panic already
        // propagated).  Don't charge it to this scope's jobs.
        shared.job_panicked.store(false, Ordering::SeqCst);
        shared.steals.store(0, Ordering::Relaxed);
        for count in &shared.executed {
            count.store(0, Ordering::Relaxed);
        }
        let mut scope = Scope { pool: self, jobs: 0, _scope: std::marker::PhantomData };
        let result = f(&mut scope);
        scope.join_all();
        scope.pool.last_stats = ScopeStats {
            jobs: scope.jobs,
            steals: shared.steals.load(Ordering::Relaxed),
            per_worker: shared.executed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        };
        drop(scope); // explicit: the Drop barrier has already been satisfied
        if shared.job_panicked.swap(false, Ordering::SeqCst) {
            panic!("a worker-pool job panicked");
        }
        result
    }

    /// Scheduling diagnostics of the most recent completed [`scoped`](WorkerPool::scoped)
    /// call (empty before the first one, unchanged by a scope whose body panicked).
    #[must_use]
    pub fn last_scope_stats(&self) -> &ScopeStats {
        &self.last_stats
    }

    /// Raises the shutdown flag, wakes and joins every worker; returns whether all of them
    /// exited cleanly (no worker died, no unreported job panic).  Idempotent.
    pub fn shutdown(&mut self) -> bool {
        if !self.shut_down {
            self.shut_down = true;
            *lock(&self.shared.parking) = true;
            self.shared.work_ready.notify_all();
        }
        let mut clean = true;
        for handle in &mut self.handles {
            if let Some(handle) = handle.take() {
                clean &= handle.join().is_ok();
            }
        }
        clean && !self.shared.job_panicked.load(Ordering::SeqCst)
    }

    /// Whether [`shutdown`](WorkerPool::shutdown) has completed (all workers joined).
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        self.handles.iter().all(Option::is_none)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A batch of jobs tied to one [`WorkerPool::scoped`] call.
///
/// Dropping the scope joins all outstanding jobs, which is what makes handing borrowed data
/// to the workers sound even when the scope body unwinds.
pub struct Scope<'pool, 'scope> {
    pool: &'pool mut WorkerPool,
    /// Jobs submitted to this scope (reported via [`WorkerPool::last_scope_stats`]).
    jobs: usize,
    /// Invariant over `'scope` (mirrors `scoped_threadpool`): prevents the borrow checker
    /// from shrinking the scope lifetime below the borrows captured by submitted jobs.
    _scope: std::marker::PhantomData<std::cell::Cell<&'scope mut ()>>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Submits one job to the next worker (round-robin).  The job may borrow anything that
    /// outlives `'scope`; it is guaranteed to finish before `scoped` returns.
    ///
    /// # Panics
    /// Panics when the pool was shut down, and fails fast (see the [module docs](self))
    /// when a job of this scope has already panicked.
    pub fn execute<F: FnOnce() + Send + 'scope>(&mut self, f: F) {
        let w = self.pool.next_worker % self.pool.worker_count();
        self.pool.next_worker = self.pool.next_worker.wrapping_add(1);
        self.execute_on(w, f);
    }

    /// Submits one job onto a *specific* worker's deque (`worker` taken modulo the worker
    /// count).  This is the locality hint of the engine's batched tick: a shard's batches go
    /// to the shard's worker and are only moved elsewhere by stealing.
    ///
    /// # Panics
    /// Panics when the pool was shut down, and fails fast (see the [module docs](self))
    /// when a job of this scope has already panicked.
    pub fn execute_on<F: FnOnce() + Send + 'scope>(&mut self, worker: usize, f: F) {
        // The liveness check runs *before* the barrier count is raised: a panic here must
        // not strand `pending` above zero, or the unwinding scope's join barrier would wait
        // forever instead of propagating the panic.
        assert!(!self.pool.shut_down, "worker pool already shut down");
        // Fail fast: once any job of this scope panicked the tick's outcome is a panic
        // anyway, so stop fanning out work at the first dispatch that notices.  Draining the
        // flag here (instead of at the barrier) is what the re-raise path would have done.
        if self.pool.shared.job_panicked.swap(false, Ordering::SeqCst) {
            panic!("a worker-pool job panicked; failing the scope fast");
        }
        let shared = &self.pool.shared;
        let w = worker % shared.deques.len();
        // The count must be raised before the push — a worker may finish the job (and
        // decrement) before this thread would otherwise get around to incrementing.
        shared.pending.fetch_add(1, Ordering::SeqCst);
        self.jobs += 1;
        let job: Thunk<'scope> = Box::new(f);
        // SAFETY: the lifetime of the boxed job is erased so it can sit on a deque consumed
        // by long-lived worker threads.  `join_all` runs before `'scope` ends on every path —
        // `scoped` calls it after the body, and `Scope::drop` repeats it during unwinding —
        // so the job (and thus every borrow it captures) never outlives `'scope`.
        let job: Thunk<'static> =
            unsafe { std::mem::transmute::<Thunk<'scope>, Thunk<'static>>(job) };
        lock(&shared.deques[w]).push_back(job);
        // Notify under the parking mutex: a worker re-checks the deques while holding it
        // before waiting, so the job pushed above is either seen or woken for.
        let _parked = lock(&shared.parking);
        shared.work_ready.notify_all();
    }

    /// Blocks until every job submitted to this scope has completed.
    fn join_all(&self) {
        let shared = &self.pool.shared;
        let mut done = lock(&shared.done);
        while shared.pending.load(Ordering::SeqCst) > 0 {
            done = shared.all_done.wait(done).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_mutate_borrowed_data_through_the_barrier() {
        let mut pool = WorkerPool::new(4);
        assert_eq!(pool.worker_count(), 4);
        let mut values = vec![0usize; 16];
        pool.scoped(|scope| {
            for (i, slot) in values.iter_mut().enumerate() {
                scope.execute(move || *slot = i * i);
            }
        });
        assert_eq!(values, (0..16).map(|i| i * i).collect::<Vec<_>>());
        let stats = pool.last_scope_stats();
        assert_eq!(stats.jobs, 16);
        assert_eq!(stats.per_worker.iter().sum::<usize>(), 16, "every job ran exactly once");
    }

    #[test]
    fn scopes_are_reusable_and_workers_persist() {
        let mut pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.scoped(|scope| {
                for _ in 0..2 {
                    scope.execute(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn empty_scopes_are_fine() {
        let mut pool = WorkerPool::new(3);
        let out = pool.scoped(|_| 7);
        assert_eq!(out, 7);
        assert_eq!(
            pool.last_scope_stats(),
            &ScopeStats { jobs: 0, steals: 0, per_worker: vec![0; 3] }
        );
        assert_eq!(pool.last_scope_stats().imbalance(), 0);
    }

    #[test]
    fn zero_thread_request_is_clamped() {
        let mut pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 5));
        assert_eq!(x, 5);
    }

    /// Jobs that rendezvous: each decrements the countdown and spins until it reaches zero,
    /// so all of them must run *concurrently* — on distinct workers — to complete at all.
    /// A missing steal (or a worker not woken) turns this into a visible test hang.
    fn rendezvous(count: &AtomicUsize) {
        count.fetch_sub(1, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while count.load(Ordering::SeqCst) > 0 {
            assert!(std::time::Instant::now() < deadline, "rendezvous starved: no steal");
            std::thread::yield_now();
        }
    }

    #[test]
    fn idle_workers_steal_from_a_hot_deque() {
        let mut pool = WorkerPool::new(2);
        let count = AtomicUsize::new(2);
        pool.scoped(|scope| {
            // Both jobs land on worker 0's deque; the rendezvous only completes if worker 1
            // steals one of them and runs it concurrently.
            for _ in 0..2 {
                scope.execute_on(0, || rendezvous(&count));
            }
        });
        let stats = pool.last_scope_stats();
        assert_eq!(stats.jobs, 2);
        assert!(stats.steals >= 1, "one of the two jobs must have been stolen");
        assert_eq!(stats.per_worker, vec![1, 1], "the rendezvous forces one job per worker");
        assert_eq!(stats.imbalance(), 0);
    }

    #[test]
    fn execute_on_spreads_affine_jobs_one_per_worker() {
        let mut pool = WorkerPool::new(4);
        let count = AtomicUsize::new(4);
        pool.scoped(|scope| {
            for w in 0..4 {
                scope.execute_on(w, || rendezvous(&count));
            }
        });
        let stats = pool.last_scope_stats();
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.per_worker, vec![1; 4], "four concurrent jobs pin one per worker");
    }

    #[test]
    fn job_panics_are_reraised_after_the_barrier() {
        let mut pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("job boom"));
                scope.execute(|| {});
            });
        }));
        assert!(caught.is_err(), "the job panic must propagate to the scope caller");
        // The pool survives a job panic and keeps working.
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 1));
        assert_eq!(x, 1);
        assert!(pool.shutdown(), "a caught-and-reported panic leaves the shutdown clean");
    }

    #[test]
    fn dispatch_fails_fast_once_a_job_panicked() {
        let mut pool = WorkerPool::new(2);
        let failed_fast = pool.scoped(|scope| {
            scope.execute(|| panic!("job boom"));
            // Poll until the panic report lands; the next dispatch must then refuse.
            for _ in 0..5_000 {
                std::thread::sleep(std::time::Duration::from_millis(1));
                if catch_unwind(AssertUnwindSafe(|| scope.execute(|| {}))).is_err() {
                    return true;
                }
            }
            false
        });
        assert!(failed_fast, "dispatch after a job panic must fail fast, not queue more work");
        // The fail-fast drain consumed the report; the pool stays usable and clean.
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 1));
        assert_eq!(x, 1);
        assert!(pool.shutdown());
    }

    #[test]
    fn execute_after_shutdown_panics_instead_of_hanging() {
        let mut pool = WorkerPool::new(2);
        assert!(pool.shutdown());
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| scope.execute(|| {}));
        }));
        // The panic must propagate: the barrier count is only raised after the liveness
        // check, so the unwinding scope's join does not wait for a job no worker ever saw.
        assert!(caught.is_err(), "submitting to a shut-down pool is a panic, not a hang");
    }

    #[test]
    fn a_panicking_scope_body_does_not_poison_the_next_scope() {
        let mut pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("job boom"));
                panic!("body boom");
            });
        }));
        assert!(caught.is_err());
        // The body panic propagated; the undrained job-panic report must not be charged to
        // the next, fully successful scope.
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 1));
        assert_eq!(x, 1);
    }

    #[test]
    fn shutdown_is_clean_and_idempotent() {
        let mut pool = WorkerPool::new(4);
        pool.scoped(|scope| scope.execute(|| {}));
        assert!(!pool.is_shut_down());
        assert!(pool.shutdown());
        assert!(pool.is_shut_down());
        assert!(pool.shutdown(), "second shutdown is a clean no-op");
    }
}
