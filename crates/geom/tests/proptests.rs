//! Property-based tests for the geometry primitives.

use mpn_geom::{
    focal_diff, min_focal_diff_over_square, Circle, DistanceBounds, Point, Rect, Square,
};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn triangle_inequality(a in pt(), b in pt(), c in pt()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
    }

    #[test]
    fn rect_min_le_max(a in pt(), b in pt(), p in pt()) {
        let r = Rect::new(a, b);
        prop_assert!(r.min_dist(p) <= r.max_dist(p) + 1e-9);
    }

    #[test]
    fn rect_distance_bounds_contain_distance_to_any_inner_point(
        a in pt(), b in pt(), p in pt(), tx in 0.0f64..=1.0, ty in 0.0f64..=1.0
    ) {
        let r = Rect::new(a, b);
        let inner = Point::new(r.lo.x + r.width() * tx, r.lo.y + r.height() * ty);
        let d = p.dist(inner);
        prop_assert!(d + 1e-9 >= r.min_dist(p));
        prop_assert!(d <= r.max_dist(p) + 1e-9);
    }

    #[test]
    fn circle_bounds_contain_distance_to_any_inner_point(
        c in pt(), radius in 0.0f64..50.0, p in pt(), ang in 0.0f64..std::f64::consts::TAU, t in 0.0f64..=1.0
    ) {
        let circle = Circle::new(c, radius);
        let inner = Point::new(c.x + radius * t * ang.cos(), c.y + radius * t * ang.sin());
        let d = p.dist(inner);
        prop_assert!(d + 1e-9 >= circle.min_dist(p));
        prop_assert!(d <= circle.max_dist(p) + 1e-9);
    }

    #[test]
    fn rect_union_contains_both(a in pt(), b in pt(), c in pt(), d in pt()) {
        let r1 = Rect::new(a, b);
        let r2 = Rect::new(c, d);
        let u = r1.union(r2);
        prop_assert!(u.contains_rect(&r1));
        prop_assert!(u.contains_rect(&r2));
        prop_assert!(u.area() + 1e-9 >= r1.area().max(r2.area()));
    }

    #[test]
    fn square_subdivision_partitions_distance_bounds(
        c in pt(), side in 0.01f64..40.0, p in pt()
    ) {
        let s = Square::new(c, side);
        let kids = s.subdivide();
        // The minimum (maximum) distance to the parent equals the min (max) over the children.
        let kid_min = kids.iter().map(|k| k.min_dist(p)).fold(f64::INFINITY, f64::min);
        let kid_max = kids.iter().map(|k| k.max_dist(p)).fold(0.0f64, f64::max);
        prop_assert!((kid_min - s.min_dist(p)).abs() < 1e-9);
        prop_assert!((kid_max - s.max_dist(p)).abs() < 1e-9);
    }

    #[test]
    fn focal_min_is_a_true_lower_bound(
        pp in pt(), po in pt(), c in pt(), side in 0.01f64..30.0,
        tx in 0.0f64..=1.0, ty in 0.0f64..=1.0
    ) {
        let tile = Square::new(c, side);
        let r = tile.to_rect();
        let inner = Point::new(r.lo.x + r.width() * tx, r.lo.y + r.height() * ty);
        let min = min_focal_diff_over_square(pp, po, &tile);
        prop_assert!(focal_diff(pp, po, inner) + 1e-7 >= min);
    }

    #[test]
    fn focal_min_bounded_by_focus_distance(pp in pt(), po in pt(), c in pt(), side in 0.01f64..30.0) {
        let tile = Square::new(c, side);
        let min = min_focal_diff_over_square(pp, po, &tile);
        prop_assert!(min >= -pp.dist(po) - 1e-9);
        prop_assert!(min <= pp.dist(po) + 1e-9);
    }
}
