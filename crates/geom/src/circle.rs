//! Circles: the circular safe regions of Section 4.

use crate::{DistanceBounds, Point, Rect};

/// A closed disk with a centre and radius.
///
/// Circle-MSR (Algorithm 1) assigns each user the circle centred at her current location with
/// the common maximal radius of Theorem 1 (MAX objective) or Theorem 5 (SUM objective).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Centre of the disk.
    pub center: Point,
    /// Radius of the disk (non-negative; a zero radius is a single point).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; a negative radius is clamped to zero.
    #[must_use]
    pub fn new(center: Point, radius: f64) -> Self {
        Self { center, radius: radius.max(0.0) }
    }

    /// Axis-aligned bounding rectangle of the disk.
    #[must_use]
    pub fn bounding_rect(&self) -> Rect {
        Rect::new(
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }

    /// Largest axis-aligned square inscribed in the disk (side `√2·r`), returned as a rectangle.
    ///
    /// Tile-MSR (Algorithm 3, line 2) seeds each user's tile region with this square.
    #[must_use]
    pub fn inscribed_square_rect(&self) -> Rect {
        let half = self.radius / std::f64::consts::SQRT_2;
        Rect::new(
            Point::new(self.center.x - half, self.center.y - half),
            Point::new(self.center.x + half, self.center.y + half),
        )
    }

    /// Area of the disk.
    #[must_use]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

impl DistanceBounds for Circle {
    /// `‖p, R‖min = max(‖p, c‖ − r, 0)`.
    fn min_dist(&self, p: Point) -> f64 {
        (self.center.dist(p) - self.radius).max(0.0)
    }

    /// `‖p, R‖max = ‖p, c‖ + r`.
    fn max_dist(&self, p: Point) -> f64 {
        self.center.dist(p) + self.radius
    }

    fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_radius_is_clamped() {
        let c = Circle::new(Point::ORIGIN, -3.0);
        assert_eq!(c.radius, 0.0);
        assert!(c.contains(Point::ORIGIN));
        assert!(!c.contains(Point::new(0.1, 0.0)));
    }

    #[test]
    fn distance_bounds_match_formulas() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        let p = Point::new(6.0, 1.0); // distance 5 from the centre
        assert!((c.min_dist(p) - 3.0).abs() < 1e-12);
        assert!((c.max_dist(p) - 7.0).abs() < 1e-12);
        // Inside the disk the min distance is zero.
        let q = Point::new(1.5, 1.0);
        assert_eq!(c.min_dist(q), 0.0);
        assert!((c.max_dist(q) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn containment_is_closed() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!(c.contains(Point::new(1.0, 0.0)));
        assert!(c.contains(Point::new(0.0, -1.0)));
        assert!(!c.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn bounding_and_inscribed_rects() {
        let c = Circle::new(Point::new(2.0, 3.0), 2.0);
        let b = c.bounding_rect();
        assert_eq!(b, Rect::new(Point::new(0.0, 1.0), Point::new(4.0, 5.0)));
        let s = c.inscribed_square_rect();
        // Every corner of the inscribed square lies on the circle boundary.
        for corner in s.corners() {
            assert!((c.center.dist(corner) - c.radius).abs() < 1e-12);
        }
        assert!((s.width() - 2.0 * 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn area_of_unit_circle() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!((c.area() - std::f64::consts::PI).abs() < 1e-12);
    }
}
