//! Planar geometry primitives used by the MPN safe-region algorithms.
//!
//! The crate is deliberately self-contained (no external geometry dependency) and provides
//! exactly the primitives the paper's algorithms need:
//!
//! * [`Point`] — a location in the plane with Euclidean distance helpers.
//! * [`Rect`] — an axis-aligned rectangle (R-tree MBRs) with min/max distance to a point.
//! * [`Circle`] — circular safe regions (Section 4 of the paper).
//! * [`Square`] — square tiles for tile-based safe regions (Section 5).
//! * [`Segment`] — line segments and segment/line intersection used by the hyperbola
//!   minimisation of the SUM objective (Section 6.3.1, Fig. 12).
//! * [`focal`] — minimisation of the focal difference `‖p', l‖ − ‖pᵒ, l‖` over a square.
//! * [`angle`] — heading arithmetic for the directed tile ordering (Section 5.2).
//!
//! All distances are Euclidean (`f64`). The crate never panics on degenerate inputs
//! (zero-size rectangles, coincident points); degenerate shapes behave as points.

#![forbid(unsafe_code)]

pub mod angle;
pub mod circle;
pub mod focal;
pub mod point;
pub mod rect;
pub mod segment;
pub mod square;

pub use angle::{angle_diff, heading, normalize_angle, HeadingPredictor};
pub use circle::Circle;
pub use focal::{focal_diff, min_focal_diff_over_square};
pub use point::{max_dist_to_set, sum_dist_to_set, Point};
pub use rect::Rect;
pub use segment::Segment;
pub use square::Square;

/// Numerical tolerance used across the workspace when comparing distances.
///
/// Verification predicates in `mpn-core` subtract this tolerance from the "safe" side of every
/// comparison so that floating-point rounding can only make the algorithms *more* conservative
/// (reject a valid tile), never less (accept an invalid one).
pub const EPSILON: f64 = 1e-9;

/// A minimum/maximum distance pair from a shape to a point.
///
/// Several algorithms need both bounds at once (e.g. the dominant distances of Definition 5);
/// returning them together avoids recomputing the per-axis deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistBounds {
    /// Smallest Euclidean distance from the point to the shape.
    pub min: f64,
    /// Largest Euclidean distance from the point to the shape.
    pub max: f64,
}

impl DistBounds {
    /// Creates a new bounds pair. `min` must not exceed `max` (checked in debug builds).
    #[must_use]
    pub fn new(min: f64, max: f64) -> Self {
        debug_assert!(min <= max + EPSILON, "min {min} > max {max}");
        Self { min, max }
    }
}

/// Trait for shapes that can report their minimum and maximum Euclidean distance to a point.
///
/// This is the geometric interface consumed by the safe-region verification predicates
/// (Lemma 1, Theorem 2): safe regions are unions of shapes and the dominant distances
/// `‖p, R‖⊥` / `‖p, R‖⊤` are computed from these per-shape bounds.
pub trait DistanceBounds {
    /// Minimum distance from `p` to the shape (0 when `p` lies inside the shape).
    fn min_dist(&self, p: Point) -> f64;
    /// Maximum distance from `p` to the shape.
    fn max_dist(&self, p: Point) -> f64;
    /// Both bounds at once; override when the two share work.
    fn dist_bounds(&self, p: Point) -> DistBounds {
        DistBounds::new(self.min_dist(p), self.max_dist(p))
    }
    /// Whether the point lies inside (or on the boundary of) the shape.
    fn contains(&self, p: Point) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_bounds_constructor_keeps_fields() {
        let b = DistBounds::new(1.0, 2.5);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 2.5);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn dist_bounds_rejects_inverted_pair_in_debug() {
        let _ = DistBounds::new(3.0, 1.0);
    }
}
