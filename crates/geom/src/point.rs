//! Points in the plane and Euclidean distance helpers.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A location (or displacement vector) in the two-dimensional Euclidean plane.
///
/// The paper denotes both a user `uᵢ` and her current location by the same symbol; in this
/// crate a user location, a POI and a displacement are all `Point`s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance `‖self, other‖` (Definition 1).
    #[must_use]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[must_use]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Length of the vector from the origin to this point.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.dist(Point::ORIGIN)
    }

    /// Dot product, treating both points as vectors.
    #[must_use]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product, treating both points as vectors.
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[must_use]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other` (at `t = 1`).
    #[must_use]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Midpoint of the segment between `self` and `other`.
    #[must_use]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Unit vector pointing from `self` towards `other`.
    ///
    /// Returns `None` when the two points coincide (within `1e-12`).
    #[must_use]
    pub fn direction_to(&self, other: Point) -> Option<Point> {
        let d = other - *self;
        let n = d.norm();
        if n < 1e-12 {
            None
        } else {
            Some(d / n)
        }
    }

    /// True when every coordinate is finite (not NaN / infinite).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Component-wise minimum of two points (lower-left corner of their bounding box).
    #[must_use]
    pub fn min_components(&self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points (upper-right corner of their bounding box).
    #[must_use]
    pub fn max_components(&self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

/// Maximum distance from a point `p` to a finite set of points (the dominant distance
/// `‖p, U‖†` of Definition 5 when the set is the user group `U`).
#[must_use]
pub fn max_dist_to_set(p: Point, set: &[Point]) -> f64 {
    set.iter().map(|u| p.dist(*u)).fold(0.0, f64::max)
}

/// Sum of distances from a point `p` to a finite set of points (`‖p, U‖sum`, Definition 7).
#[must_use]
pub fn sum_dist_to_set(p: Point, set: &[Point]) -> f64 {
    set.iter().map(|u| p.dist(*u)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.dist(b) - 5.0).abs() < 1e-12);
        assert!((b.dist(a) - 5.0).abs() < 1e-12);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn dist_sq_matches_dist() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(3.0, -0.5);
        assert!((a.dist_sq(b) - a.dist(b).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn lerp_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, -5.0));
    }

    #[test]
    fn direction_to_unit_vector() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        let d = a.direction_to(b).unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        assert!((d.x - 0.6).abs() < 1e-12);
        assert!((d.y - 0.8).abs() < 1e-12);
        assert!(a.direction_to(a).is_none());
    }

    #[test]
    fn component_min_max() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(3.0, 2.0);
        assert_eq!(a.min_components(b), Point::new(1.0, 2.0));
        assert_eq!(a.max_components(b), Point::new(3.0, 5.0));
    }

    #[test]
    fn aggregate_distances_over_sets() {
        let p = Point::new(0.0, 0.0);
        let set = [Point::new(3.0, 4.0), Point::new(1.0, 0.0), Point::new(0.0, 2.0)];
        assert!((max_dist_to_set(p, &set) - 5.0).abs() < 1e-12);
        assert!((sum_dist_to_set(p, &set) - 8.0).abs() < 1e-12);
        assert_eq!(max_dist_to_set(p, &[]), 0.0);
        assert_eq!(sum_dist_to_set(p, &[]), 0.0);
    }

    #[test]
    fn finite_check() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
