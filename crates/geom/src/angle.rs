//! Heading arithmetic for the directed tile ordering (Section 5.2).
//!
//! The directed ordering only admits tiles whose subtended angle at the user deviates from her
//! predicted travel direction by at most `θ`.  These helpers keep all angles in `(-π, π]` and
//! compute the smallest absolute difference between two headings.

use crate::Point;

/// Normalises an angle (radians) into the half-open interval `(-π, π]`.
#[must_use]
pub fn normalize_angle(a: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut r = a % two_pi;
    if r <= -std::f64::consts::PI {
        r += two_pi;
    } else if r > std::f64::consts::PI {
        r -= two_pi;
    }
    r
}

/// Heading (radians, in `(-π, π]`) of the displacement from `from` to `to`.
///
/// Returns `None` when the two points coincide and the heading is undefined.
#[must_use]
pub fn heading(from: Point, to: Point) -> Option<f64> {
    let d = to - from;
    if d.norm() < 1e-12 {
        None
    } else {
        Some(d.y.atan2(d.x))
    }
}

/// Smallest absolute angular difference between two headings, in `[0, π]`.
#[must_use]
pub fn angle_diff(a: f64, b: f64) -> f64 {
    normalize_angle(a - b).abs()
}

/// Exponentially-weighted heading predictor.
///
/// Tao et al. (the paper's reference [26]) observe that near-future travel directions deviate
/// from recent ones by a bounded angle `θ`.  The predictor maintains a smoothed heading from
/// the recent location history and exposes it for the directed ordering.
#[derive(Debug, Clone)]
pub struct HeadingPredictor {
    smoothing: f64,
    current: Option<f64>,
    last_position: Option<Point>,
}

impl HeadingPredictor {
    /// Creates a predictor; `smoothing ∈ (0, 1]` is the weight of the newest observation.
    #[must_use]
    pub fn new(smoothing: f64) -> Self {
        Self { smoothing: smoothing.clamp(1e-3, 1.0), current: None, last_position: None }
    }

    /// Feeds the next observed location and updates the smoothed heading.
    pub fn observe(&mut self, position: Point) {
        if let Some(prev) = self.last_position {
            if let Some(h) = heading(prev, position) {
                self.current = Some(match self.current {
                    None => h,
                    Some(old) => {
                        // Blend on the circle: rotate towards the new heading by `smoothing`
                        // of the (signed, wrapped) difference.
                        normalize_angle(old + self.smoothing * normalize_angle(h - old))
                    }
                });
            }
        }
        self.last_position = Some(position);
    }

    /// The current predicted heading, if at least one displacement has been observed.
    #[must_use]
    pub fn predicted(&self) -> Option<f64> {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn normalisation_wraps_into_range() {
        assert!((normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize_angle(0.5) - 0.5).abs() < 1e-12);
        assert!(normalize_angle(2.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn heading_of_cardinal_directions() {
        let o = Point::ORIGIN;
        assert!((heading(o, Point::new(1.0, 0.0)).unwrap()).abs() < 1e-12);
        assert!((heading(o, Point::new(0.0, 1.0)).unwrap() - FRAC_PI_2).abs() < 1e-12);
        assert!((heading(o, Point::new(-1.0, 0.0)).unwrap() - PI).abs() < 1e-12);
        assert!(heading(o, o).is_none());
    }

    #[test]
    fn angle_diff_is_symmetric_and_wraps() {
        assert!((angle_diff(0.1, -0.1) - 0.2).abs() < 1e-12);
        assert!((angle_diff(-0.1, 0.1) - 0.2).abs() < 1e-12);
        // Differences wrap around ±π: 170° vs −170° differ by 20°, not 340°.
        let a = 170.0_f64.to_radians();
        let b = -170.0_f64.to_radians();
        assert!((angle_diff(a, b) - 20.0_f64.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn predictor_follows_straight_motion() {
        let mut p = HeadingPredictor::new(0.5);
        assert!(p.predicted().is_none());
        for i in 0..5 {
            p.observe(Point::new(f64::from(i), 0.0));
        }
        assert!(p.predicted().unwrap().abs() < 1e-12);
    }

    #[test]
    fn predictor_turns_gradually() {
        let mut p = HeadingPredictor::new(0.5);
        p.observe(Point::new(0.0, 0.0));
        p.observe(Point::new(1.0, 0.0)); // heading 0
        p.observe(Point::new(1.0, 1.0)); // heading π/2
        let h = p.predicted().unwrap();
        assert!(h > 0.0 && h < FRAC_PI_2); // smoothed value lies between the two headings
    }

    #[test]
    fn predictor_ignores_repeated_positions() {
        let mut p = HeadingPredictor::new(0.5);
        p.observe(Point::new(0.0, 0.0));
        p.observe(Point::new(0.0, 0.0));
        assert!(p.predicted().is_none());
        p.observe(Point::new(1.0, 0.0));
        assert!(p.predicted().is_some());
    }
}
