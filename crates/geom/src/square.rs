//! Axis-aligned squares: the tiles of the tile-based safe regions (Section 5).

use crate::{DistanceBounds, Point, Rect, Segment};

/// An axis-aligned square described by its centre and half side length.
///
/// A *tile* in the paper is a square of side `δ` (possibly subdivided into quarters by the
/// divide-and-conquer verification of Algorithm 2).  The square keeps its centre/half-extent
/// representation because subdivision and grid arithmetic are exact in that form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Square {
    /// Centre of the square.
    pub center: Point,
    /// Half of the side length (non-negative).
    pub half: f64,
}

impl Square {
    /// Creates a square from its centre and side length. Negative sides are clamped to zero.
    #[must_use]
    pub fn new(center: Point, side: f64) -> Self {
        Self { center, half: (side / 2.0).max(0.0) }
    }

    /// Creates a square directly from its centre and half side length.
    #[must_use]
    pub fn from_half(center: Point, half: f64) -> Self {
        Self { center, half: half.max(0.0) }
    }

    /// Side length `δ` of the tile.
    #[must_use]
    pub fn side(&self) -> f64 {
        2.0 * self.half
    }

    /// Area of the tile.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.side() * self.side()
    }

    /// The square as an axis-aligned rectangle.
    #[must_use]
    pub fn to_rect(&self) -> Rect {
        Rect::new(
            Point::new(self.center.x - self.half, self.center.y - self.half),
            Point::new(self.center.x + self.half, self.center.y + self.half),
        )
    }

    /// The four corners in counter-clockwise order starting from the lower-left.
    #[must_use]
    pub fn corners(&self) -> [Point; 4] {
        self.to_rect().corners()
    }

    /// The four edges as segments, in counter-clockwise order.
    #[must_use]
    pub fn edges(&self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }

    /// Splits the square into its four quadrant sub-squares (Algorithm 2, line 6).
    ///
    /// Order: lower-left, lower-right, upper-right, upper-left.
    #[must_use]
    pub fn subdivide(&self) -> [Square; 4] {
        let q = self.half / 2.0;
        [
            Square::from_half(Point::new(self.center.x - q, self.center.y - q), q),
            Square::from_half(Point::new(self.center.x + q, self.center.y - q), q),
            Square::from_half(Point::new(self.center.x + q, self.center.y + q), q),
            Square::from_half(Point::new(self.center.x - q, self.center.y + q), q),
        ]
    }

    /// Whether the two squares overlap (closed intersection).
    #[must_use]
    pub fn intersects(&self, other: &Square) -> bool {
        self.to_rect().intersects(&other.to_rect())
    }
}

impl DistanceBounds for Square {
    fn min_dist(&self, p: Point) -> f64 {
        self.to_rect().min_dist(p)
    }

    fn max_dist(&self, p: Point) -> f64 {
        self.to_rect().max_dist(p)
    }

    fn contains(&self, p: Point) -> bool {
        self.to_rect().contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_and_area() {
        let s = Square::new(Point::new(1.0, 1.0), 4.0);
        assert_eq!(s.half, 2.0);
        assert_eq!(s.side(), 4.0);
        assert_eq!(s.area(), 16.0);
    }

    #[test]
    fn rect_conversion_round_trips_centre() {
        let s = Square::new(Point::new(-2.0, 3.0), 1.0);
        let r = s.to_rect();
        assert_eq!(r.center(), s.center);
        assert!((r.width() - 1.0).abs() < 1e-12);
        assert!((r.height() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subdivision_covers_parent_exactly() {
        let s = Square::new(Point::new(0.0, 0.0), 2.0);
        let kids = s.subdivide();
        let total: f64 = kids.iter().map(Square::area).sum();
        assert!((total - s.area()).abs() < 1e-12);
        // Children tile the parent: each child is contained and they only meet at edges.
        for k in &kids {
            assert!(s.to_rect().contains_rect(&k.to_rect()));
        }
        assert_eq!(kids[0].center, Point::new(-0.5, -0.5));
        assert_eq!(kids[2].center, Point::new(0.5, 0.5));
    }

    #[test]
    fn distance_bounds_agree_with_rect() {
        let s = Square::new(Point::new(0.0, 0.0), 2.0);
        let p = Point::new(3.0, 4.0);
        let r = s.to_rect();
        assert_eq!(s.min_dist(p), r.min_dist(p));
        assert_eq!(s.max_dist(p), r.max_dist(p));
        assert!(s.contains(Point::new(0.9, -0.9)));
        assert!(!s.contains(Point::new(1.1, 0.0)));
    }

    #[test]
    fn edges_form_a_closed_loop() {
        let s = Square::new(Point::new(1.0, 1.0), 2.0);
        let e = s.edges();
        for i in 0..4 {
            assert_eq!(e[i].b, e[(i + 1) % 4].a);
        }
    }

    #[test]
    fn degenerate_square_is_a_point() {
        let s = Square::new(Point::new(5.0, 5.0), 0.0);
        assert_eq!(s.min_dist(Point::new(5.0, 6.0)), 1.0);
        assert_eq!(s.max_dist(Point::new(5.0, 6.0)), 1.0);
        assert!(s.contains(Point::new(5.0, 5.0)));
    }
}
