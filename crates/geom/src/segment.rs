//! Line segments and segment/line intersection.
//!
//! The SUM-objective tile verification (Algorithm 6) needs the intersections between a tile's
//! edges and the *focal axis* — the infinite line through the candidate point `p'` and the
//! current optimum `pᵒ` (Fig. 12 of the paper).

use crate::Point;

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[must_use]
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Length of the segment.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[must_use]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Minimum distance from a point to the segment.
    #[must_use]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.dot(d);
        if len_sq < 1e-24 {
            return self.a.dist(p);
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.point_at(t).dist(p)
    }

    /// Intersection of this segment with the *infinite line* through `l0` and `l1`.
    ///
    /// Returns `None` when the segment is parallel to the line (including the collinear case,
    /// where callers should instead treat the segment endpoints as the relevant candidates) or
    /// when the intersection falls outside the segment.
    #[must_use]
    pub fn intersect_line(&self, l0: Point, l1: Point) -> Option<Point> {
        let r = self.b - self.a;
        let s = l1 - l0;
        let denom = r.cross(s);
        if denom.abs() < 1e-18 {
            return None;
        }
        // Solve a + t·r = l0 + u·s for t; only t must lie in [0, 1].
        let t = (l0 - self.a).cross(s) / denom;
        if (-1e-12..=1.0 + 1e-12).contains(&t) {
            Some(self.point_at(t.clamp(0.0, 1.0)))
        } else {
            None
        }
    }

    /// Intersection point of two segments, if they cross (closed endpoints, non-parallel).
    #[must_use]
    pub fn intersect_segment(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() < 1e-18 {
            return None;
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let tol = 1e-12;
        if (-tol..=1.0 + tol).contains(&t) && (-tol..=1.0 + tol).contains(&u) {
            Some(self.point_at(t.clamp(0.0, 1.0)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_interpolation() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert!((s.length() - 5.0).abs() < 1e-12);
        assert_eq!(s.point_at(0.0), s.a);
        assert_eq!(s.point_at(1.0), s.b);
        assert_eq!(s.point_at(0.5), Point::new(1.5, 2.0));
    }

    #[test]
    fn distance_to_point() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!((s.dist_to_point(Point::new(5.0, 3.0)) - 3.0).abs() < 1e-12);
        // Beyond an endpoint the closest point is the endpoint itself.
        assert!((s.dist_to_point(Point::new(13.0, 4.0)) - 5.0).abs() < 1e-12);
        // Degenerate segment behaves as a point.
        let d = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert!((d.dist_to_point(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn line_intersection_hits_and_misses() {
        let edge = Segment::new(Point::new(0.0, 0.0), Point::new(0.0, 10.0));
        // The focal axis here is the horizontal line y = 3.
        let hit = edge.intersect_line(Point::new(-5.0, 3.0), Point::new(5.0, 3.0)).unwrap();
        assert!((hit.y - 3.0).abs() < 1e-12);
        assert!((hit.x).abs() < 1e-12);
        // A line crossing outside the segment's parameter range yields no intersection.
        assert!(edge.intersect_line(Point::new(-5.0, 20.0), Point::new(5.0, 20.0)).is_none());
        // Parallel line: no intersection reported.
        assert!(edge.intersect_line(Point::new(1.0, 0.0), Point::new(1.0, 1.0)).is_none());
    }

    #[test]
    fn segment_intersection() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let b = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        let p = a.intersect_segment(&b).unwrap();
        assert!((p.x - 2.0).abs() < 1e-12);
        assert!((p.y - 2.0).abs() < 1e-12);
        let c = Segment::new(Point::new(10.0, 10.0), Point::new(11.0, 11.0));
        assert!(a.intersect_segment(&c).is_none());
    }

    #[test]
    fn endpoint_touch_counts_as_intersection() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let b = Segment::new(Point::new(2.0, 0.0), Point::new(2.0, 5.0));
        let p = a.intersect_segment(&b).unwrap();
        assert!((p.x - 2.0).abs() < 1e-9);
        assert!(p.y.abs() < 1e-9);
    }
}
