//! Axis-aligned rectangles: R-tree minimum bounding rectangles and range regions.

use crate::{DistanceBounds, Point};

/// An axis-aligned rectangle described by its lower-left and upper-right corners.
///
/// Rectangles are the MBRs stored in the R-tree of the POI set (`mpn-index`) and are also used
/// for pruning during candidate retrieval (Theorem 3 / Theorem 6).  A rectangle whose corners
/// coincide behaves as a single point; an "empty" rectangle (used as the identity for
/// [`Rect::union`]) has inverted corners and contains nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner (minimum x and y).
    pub lo: Point,
    /// Upper-right corner (maximum x and y).
    pub hi: Point,
}

impl Rect {
    /// The empty rectangle: the identity element of [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        lo: Point { x: f64::INFINITY, y: f64::INFINITY },
        hi: Point { x: f64::NEG_INFINITY, y: f64::NEG_INFINITY },
    };

    /// Creates a rectangle from two opposite corners (in any order).
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Self { lo: a.min_components(b), hi: a.max_components(b) }
    }

    /// Creates a degenerate rectangle covering a single point.
    #[must_use]
    pub fn from_point(p: Point) -> Self {
        Self { lo: p, hi: p }
    }

    /// Smallest rectangle enclosing all the given points; [`Rect::EMPTY`] for an empty slice.
    #[must_use]
    pub fn bounding(points: &[Point]) -> Self {
        points.iter().fold(Rect::EMPTY, |r, p| r.expanded(*p))
    }

    /// Whether this is the empty rectangle (contains no point).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Width along the x axis (0 for the empty rectangle).
    #[must_use]
    pub fn width(&self) -> f64 {
        (self.hi.x - self.lo.x).max(0.0)
    }

    /// Height along the y axis (0 for the empty rectangle).
    #[must_use]
    pub fn height(&self) -> f64 {
        (self.hi.y - self.lo.y).max(0.0)
    }

    /// Area of the rectangle.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half of the perimeter (the "margin" used by R-tree split heuristics).
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center of the rectangle.
    #[must_use]
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    /// The four corners in counter-clockwise order starting from the lower-left.
    #[must_use]
    pub fn corners(&self) -> [Point; 4] {
        [self.lo, Point::new(self.hi.x, self.lo.y), self.hi, Point::new(self.lo.x, self.hi.y)]
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: Rect) -> Rect {
        Rect { lo: self.lo.min_components(other.lo), hi: self.hi.max_components(other.hi) }
    }

    /// Smallest rectangle containing `self` and the point `p`.
    #[must_use]
    pub fn expanded(&self, p: Point) -> Rect {
        Rect { lo: self.lo.min_components(p), hi: self.hi.max_components(p) }
    }

    /// Increase in area caused by enlarging `self` to also cover `other`.
    #[must_use]
    pub fn enlargement(&self, other: Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Whether the two rectangles share at least one point.
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.lo.x > other.hi.x
            || other.lo.x > self.hi.x
            || self.lo.y > other.hi.y
            || other.lo.y > self.hi.y)
    }

    /// Whether `other` lies entirely inside `self`.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// Whether the rectangle intersects the closed disk of radius `r` centred at `c`.
    ///
    /// Used by the index-pruning rules: an R-tree MBR can only contain candidate meeting points
    /// when it intersects every user's candidate disk (Fig. 10 of the paper).
    #[must_use]
    pub fn intersects_circle(&self, c: Point, r: f64) -> bool {
        !self.is_empty() && self.min_dist(c) <= r
    }
}

impl DistanceBounds for Rect {
    /// Minimum Euclidean distance from `p` to the rectangle (`‖p, S‖min`, Definition 1).
    fn min_dist(&self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance from `p` to the rectangle (`‖p, S‖max`, Definition 1).
    fn max_dist(&self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::NEG_INFINITY;
        }
        let dx = (p.x - self.lo.x).abs().max((p.x - self.hi.x).abs());
        let dy = (p.y - self.lo.y).abs().max((p.y - self.hi.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    fn contains(&self, p: Point) -> bool {
        !self.is_empty()
            && p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn constructor_normalises_corners() {
        let r = Rect::new(Point::new(3.0, -1.0), Point::new(-2.0, 4.0));
        assert_eq!(r.lo, Point::new(-2.0, -1.0));
        assert_eq!(r.hi, Point::new(3.0, 4.0));
    }

    #[test]
    fn empty_rect_properties() {
        let e = Rect::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains(Point::ORIGIN));
        assert!(!e.intersects(&unit()));
        assert_eq!(e.union(unit()), unit());
    }

    #[test]
    fn geometry_measures() {
        let r = Rect::new(Point::new(1.0, 2.0), Point::new(4.0, 6.0));
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.margin(), 7.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
    }

    #[test]
    fn min_dist_inside_is_zero_and_outside_matches_hand_computation() {
        let r = unit();
        assert_eq!(r.min_dist(Point::new(0.5, 0.5)), 0.0);
        assert!((r.min_dist(Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        // Corner case: diagonal distance to the nearest corner.
        assert!((r.min_dist(Point::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_dist_reaches_farthest_corner() {
        let r = unit();
        // From the origin corner, the farthest corner is (1,1).
        assert!((r.max_dist(Point::new(0.0, 0.0)) - 2f64.sqrt()).abs() < 1e-12);
        // From outside, the farthest corner is the opposite one.
        assert!((r.max_dist(Point::new(-3.0, 0.0)) - (16.0f64 + 1.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_dist_never_exceeds_max_dist_on_grid() {
        let r = Rect::new(Point::new(-1.0, -2.0), Point::new(3.0, 1.0));
        for i in -10..=10 {
            for j in -10..=10 {
                let p = Point::new(f64::from(i) * 0.7, f64::from(j) * 0.7);
                assert!(r.min_dist(p) <= r.max_dist(p) + 1e-12);
                if r.contains(p) {
                    assert_eq!(r.min_dist(p), 0.0);
                }
            }
        }
    }

    #[test]
    fn union_and_enlargement() {
        let a = unit();
        let b = Rect::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        let u = a.union(b);
        assert_eq!(u, Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0)));
        assert!((a.enlargement(b) - 8.0).abs() < 1e-12);
        assert_eq!(a.enlargement(a), 0.0);
    }

    #[test]
    fn intersection_and_containment() {
        let a = unit();
        let b = Rect::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        let c = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains_rect(&Rect::new(Point::new(0.2, 0.2), Point::new(0.8, 0.8))));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn circle_intersection() {
        let r = unit();
        assert!(r.intersects_circle(Point::new(2.0, 0.5), 1.0));
        assert!(!r.intersects_circle(Point::new(2.0, 0.5), 0.5));
        assert!(r.intersects_circle(Point::new(0.5, 0.5), 0.01));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 0.0), Point::new(3.0, 2.0)];
        let r = Rect::bounding(&pts);
        assert_eq!(r.lo, Point::new(-2.0, 0.0));
        assert_eq!(r.hi, Point::new(3.0, 5.0));
        assert!(Rect::bounding(&[]).is_empty());
    }

    #[test]
    fn corners_are_in_ccw_order() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let c = r.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(2.0, 0.0));
        assert_eq!(c[2], Point::new(2.0, 1.0));
        assert_eq!(c[3], Point::new(0.0, 1.0));
    }
}
