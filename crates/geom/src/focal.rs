//! Minimisation of the focal difference `f(l) = ‖p', l‖ − ‖pᵒ, l‖` over a square tile.
//!
//! The SUM-objective verification (Section 6.3.1, Algorithm 6 of the paper) needs, for every
//! user tile `s`, the minimum of the focal difference between a candidate point `p'` and the
//! current optimum `pᵒ`.  The level sets of `f` are hyperbola branches with foci `p'` and `pᵒ`
//! (Fig. 12), and the paper observes that the minimum over a square occurs either at a corner
//! or where the square's boundary crosses the focal axis (the line through `p'` and `pᵒ`).
//!
//! We evaluate those analytical candidates *and* additionally run a bounded numeric
//! minimisation along every edge.  The extra pass costs a few dozen evaluations per tile and
//! guards against edge cases where an edge is tangent to a level hyperbola, so the returned
//! value can safely be used as a conservative lower bound by the verification predicates.

use crate::{DistanceBounds, Point, Square};

/// The focal difference `f(l) = ‖p_prime, l‖ − ‖p_opt, l‖` at a single location.
///
/// Negative values mean `l` is closer to the candidate `p_prime` than to the current optimum —
/// exactly the situation that can invalidate a safe region.
#[must_use]
pub fn focal_diff(p_prime: Point, p_opt: Point, l: Point) -> f64 {
    p_prime.dist(l) - p_opt.dist(l)
}

/// Minimum of the focal difference over a square tile.
///
/// This is the per-user term minimised independently in Equation (13) of the paper.  The value
/// is bounded below by `−‖p_prime, p_opt‖` and above by `+‖p_prime, p_opt‖` (triangle
/// inequality); the implementation asserts the lower bound in debug builds.
#[must_use]
pub fn min_focal_diff_over_square(p_prime: Point, p_opt: Point, tile: &Square) -> f64 {
    let mut best = f64::INFINITY;
    let mut consider = |l: Point| {
        let v = focal_diff(p_prime, p_opt, l);
        if v < best {
            best = v;
        }
    };

    // 1. Corners of the tile.
    for c in tile.corners() {
        consider(c);
    }

    // 2. Intersections of every edge with the focal axis (the infinite line p' pᵒ).
    let degenerate_axis = p_prime.dist(p_opt) < 1e-12;
    for edge in tile.edges() {
        if !degenerate_axis {
            if let Some(x) = edge.intersect_line(p_prime, p_opt) {
                consider(x);
            }
        }
        // 3. Numeric sweep + local refinement along the edge (robustness against tangency
        //    of an edge with a level hyperbola).
        const SAMPLES: usize = 16;
        let mut best_t = 0.0;
        let mut best_v = f64::INFINITY;
        for i in 0..=SAMPLES {
            let t = i as f64 / SAMPLES as f64;
            let v = focal_diff(p_prime, p_opt, edge.point_at(t));
            if v < best_v {
                best_v = v;
                best_t = t;
            }
        }
        // Golden-section refinement around the best sample.
        let mut lo = (best_t - 1.0 / SAMPLES as f64).max(0.0);
        let mut hi = (best_t + 1.0 / SAMPLES as f64).min(1.0);
        const PHI: f64 = 0.618_033_988_749_894_9;
        for _ in 0..32 {
            let m1 = hi - PHI * (hi - lo);
            let m2 = lo + PHI * (hi - lo);
            let f1 = focal_diff(p_prime, p_opt, edge.point_at(m1));
            let f2 = focal_diff(p_prime, p_opt, edge.point_at(m2));
            if f1 < f2 {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        consider(edge.point_at((lo + hi) / 2.0));
    }

    // 4. If the tile contains either focus, the extreme values are attained exactly there.
    if tile.contains(p_prime) {
        consider(p_prime);
    }
    if tile.contains(p_opt) {
        consider(p_opt);
    }

    debug_assert!(
        best >= -p_prime.dist(p_opt) - 1e-9,
        "focal minimum {best} below the analytic lower bound"
    );
    best
}

/// Maximum of the focal difference over a square tile.
///
/// By symmetry `max f = −min (‖p_opt, l‖ − ‖p_prime, l‖)`, so this reuses the minimiser with
/// the foci swapped.  It is used by tests and by diagnostic tooling; the verification
/// algorithms themselves only need the minimum.
#[must_use]
pub fn max_focal_diff_over_square(p_prime: Point, p_opt: Point, tile: &Square) -> f64 {
    -min_focal_diff_over_square(p_opt, p_prime, tile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_min(p_prime: Point, p_opt: Point, tile: &Square, n: usize) -> f64 {
        let r = tile.to_rect();
        let mut best = f64::INFINITY;
        for i in 0..=n {
            for j in 0..=n {
                let l = Point::new(
                    r.lo.x + r.width() * i as f64 / n as f64,
                    r.lo.y + r.height() * j as f64 / n as f64,
                );
                best = best.min(focal_diff(p_prime, p_opt, l));
            }
        }
        best
    }

    #[test]
    fn focal_diff_sign_matches_proximity() {
        let p_prime = Point::new(-1.0, 0.0);
        let p_opt = Point::new(1.0, 0.0);
        assert!(focal_diff(p_prime, p_opt, Point::new(-2.0, 0.0)) < 0.0);
        assert!(focal_diff(p_prime, p_opt, Point::new(2.0, 0.0)) > 0.0);
        assert_eq!(focal_diff(p_prime, p_opt, Point::new(0.0, 5.0)), 0.0);
    }

    #[test]
    fn min_over_square_matches_brute_force_on_axis_straddling_tile() {
        let p_prime = Point::new(-1.0, 0.0);
        let p_opt = Point::new(1.0, 0.0);
        let tile = Square::new(Point::new(-3.0, 0.5), 2.0);
        let fast = min_focal_diff_over_square(p_prime, p_opt, &tile);
        let brute = brute_force_min(p_prime, p_opt, &tile, 400);
        assert!(fast <= brute + 1e-6, "fast {fast} must lower-bound brute {brute}");
        assert!((fast - brute).abs() < 1e-3);
    }

    #[test]
    fn min_over_square_matches_brute_force_off_axis() {
        let p_prime = Point::new(0.0, 0.0);
        let p_opt = Point::new(3.0, 1.0);
        let tile = Square::new(Point::new(2.0, 4.0), 1.5);
        let fast = min_focal_diff_over_square(p_prime, p_opt, &tile);
        let brute = brute_force_min(p_prime, p_opt, &tile, 400);
        assert!(fast <= brute + 1e-6);
        assert!((fast - brute).abs() < 1e-3);
    }

    #[test]
    fn tile_containing_candidate_focus_attains_global_minimum() {
        let p_prime = Point::new(0.0, 0.0);
        let p_opt = Point::new(4.0, 0.0);
        // The tile contains p_prime and extends beyond it on the far side of the axis,
        // so the minimum is exactly −‖p', pᵒ‖.
        let tile = Square::new(Point::new(-0.5, 0.0), 2.0);
        let v = min_focal_diff_over_square(p_prime, p_opt, &tile);
        assert!((v - (-4.0)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_foci_give_zero() {
        let p = Point::new(1.0, 1.0);
        let tile = Square::new(Point::new(5.0, 5.0), 2.0);
        assert!(min_focal_diff_over_square(p, p, &tile).abs() < 1e-12);
    }

    #[test]
    fn max_is_negation_of_swapped_min() {
        let p_prime = Point::new(-2.0, 1.0);
        let p_opt = Point::new(1.0, -1.0);
        let tile = Square::new(Point::new(0.5, 2.0), 3.0);
        let max = max_focal_diff_over_square(p_prime, p_opt, &tile);
        let brute = {
            let r = tile.to_rect();
            let mut best = f64::NEG_INFINITY;
            for i in 0..=300 {
                for j in 0..=300 {
                    let l = Point::new(
                        r.lo.x + r.width() * f64::from(i) / 300.0,
                        r.lo.y + r.height() * f64::from(j) / 300.0,
                    );
                    best = best.max(focal_diff(p_prime, p_opt, l));
                }
            }
            best
        };
        assert!(max >= brute - 1e-6);
        assert!((max - brute).abs() < 1e-3);
    }

    #[test]
    fn value_is_within_triangle_inequality_bounds() {
        let p_prime = Point::new(-1.0, -2.0);
        let p_opt = Point::new(2.0, 2.0);
        let d = p_prime.dist(p_opt);
        for k in 0..20 {
            let tile = Square::new(Point::new(f64::from(k) - 10.0, 0.3 * f64::from(k)), 1.0);
            let v = min_focal_diff_over_square(p_prime, p_opt, &tile);
            assert!(v >= -d - 1e-9);
            assert!(v <= d + 1e-9);
        }
    }
}
