//! Property tests for the wire codec: every encodable message decodes back bit-identically,
//! and no byte soup makes the decoders panic.
//!
//! Uses the offline `proptest` shim: cases are deterministic (seeded from the test name), so
//! a failing case index reproduces exactly.

use mpn_core::{SafeRegion, TileCell, TileFrame, TileRegion};
use mpn_geom::{Circle, Point};
use mpn_proto::{
    AdminRequest, DecodeError, NotificationKind, Request, Response, WireConfig, WireMethod,
    WireObjective,
};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

fn wire_config(
    objective: usize,
    method: usize,
    theta: f64,
    buffer: u32,
    flags: usize,
    cap: Option<u32>,
) -> WireConfig {
    WireConfig {
        objective: if objective == 0 { WireObjective::Max } else { WireObjective::Sum },
        method: match method {
            0 => WireMethod::Circle,
            1 => WireMethod::Tile,
            2 => WireMethod::TileDirected { theta },
            _ => WireMethod::TileDirectedBuffered { theta, buffer },
        },
        compress_regions: flags & 1 != 0,
        persist_buffers: flags & 2 != 0,
        max_timestamps: cap,
    }
}

fn tile_region(origin: Point, delta: f64, cells: &[(usize, i32, i32)]) -> SafeRegion {
    let mut region = TileRegion::new(TileFrame { origin, delta });
    for &(level, ix, iy) in cells {
        region.push(TileCell::new(level as u8, ix, iy));
    }
    SafeRegion::Tiles(region)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn register_frames_round_trip(
        group_size in 1u32..10_000,
        objective in 0usize..2,
        method in 0usize..4,
        theta in 1e-3f64..std::f64::consts::PI,
        buffer in 1u32..1_000,
        flags in 0usize..4,
        cap in (0usize..2, 0u32..1_000_000).prop_map(|(set, v)| (set == 1).then_some(v)),
    ) {
        let request = Request::Register {
            group_size,
            config: wire_config(objective, method, theta, buffer, flags, cap),
        };
        let bytes = request.encoded();
        let (decoded, consumed) = Request::decode(&bytes).expect("a valid frame");
        prop_assert_eq!(decoded, request);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn report_and_deregister_frames_round_trip(
        group in 0u64..u64::MAX,
        coords in prop_vec((-50_000.0f64..50_000.0, -50_000.0f64..50_000.0), 1..40),
    ) {
        let positions: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let report = Request::Report { group, positions };
        let bytes = report.encoded();
        let (decoded, consumed) = Request::decode(&bytes).expect("a valid frame");
        prop_assert_eq!(&decoded, &report);
        prop_assert_eq!(consumed, bytes.len());

        let deregister = Request::Deregister { group };
        let bytes = deregister.encoded();
        let (decoded, _) = Request::decode(&bytes).expect("a valid frame");
        prop_assert_eq!(decoded, deregister);
    }

    #[test]
    fn circle_safe_region_frames_round_trip(
        group in 0u64..1 << 48,
        user in 0u32..256,
        mx in -10_000.0f64..10_000.0,
        my in -10_000.0f64..10_000.0,
        radius in 1e-6f64..5_000.0,
    ) {
        let response = Response::SafeRegion {
            group,
            user,
            meeting_point: Point::new(mx, my),
            region: SafeRegion::Circle(Circle::new(Point::new(mx + 1.0, my - 1.0), radius)),
        };
        let bytes = response.encoded();
        let (decoded, consumed) = Response::decode(&bytes).expect("a valid frame");
        prop_assert_eq!(decoded, response);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn tile_safe_region_frames_round_trip(
        ox in -10_000.0f64..10_000.0,
        oy in -10_000.0f64..10_000.0,
        delta in 0.5f64..500.0,
        cells in prop_vec((0usize..6, -2_000i32..2_000, -2_000i32..2_000), 1..80),
    ) {
        let response = Response::SafeRegion {
            group: 5,
            user: 1,
            meeting_point: Point::new(ox, oy),
            region: tile_region(Point::new(ox, oy), delta, &cells),
        };
        let bytes = response.encoded();
        let (decoded, consumed) = Response::decode(&bytes).expect("a valid frame");
        prop_assert_eq!(decoded, response);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn probe_and_notification_frames_round_trip(
        group in 0u64..u64::MAX,
        user in 0u32..10_000,
        kind in 0usize..4,
    ) {
        let probe = Response::ProbeRequest { group, user };
        let bytes = probe.encoded();
        prop_assert_eq!(Response::decode(&bytes).expect("a valid frame").0, probe);

        let kind = [
            NotificationKind::Registered,
            NotificationKind::Deregistered,
            NotificationKind::UnknownGroup,
            NotificationKind::BadRequest,
        ][kind];
        let notification = Response::Notification { group, kind };
        let bytes = notification.encoded();
        prop_assert_eq!(Response::decode(&bytes).expect("a valid frame").0, notification);
    }

    #[test]
    fn admin_frames_round_trip_and_truncate_cleanly(
        x in -50_000.0f64..50_000.0,
        y in -50_000.0f64..50_000.0,
        poi in 0u64..u64::MAX,
        cut_frac in 0.0f64..1.0,
    ) {
        for request in [
            Request::Admin(AdminRequest::PoiInsert { location: Point::new(x, y) }),
            Request::Admin(AdminRequest::PoiDelete { poi }),
        ] {
            let bytes = request.encoded();
            let (decoded, consumed) = Request::decode(&bytes).expect("a valid frame");
            prop_assert_eq!(decoded, request.clone());
            prop_assert_eq!(consumed, bytes.len());
            // Any prefix of a valid admin frame is Incomplete, never an error or a panic.
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert_eq!(Request::decode(&bytes[..cut]).unwrap_err(), DecodeError::Incomplete);
        }
    }

    #[test]
    fn world_update_and_admin_ack_frames_round_trip(
        group in 0u64..u64::MAX,
        generation in 0u64..u64::MAX,
        revised in 0u32..u32::MAX,
        kind in 0usize..3,
        cut_frac in 0.0f64..1.0,
    ) {
        let update = Response::WorldUpdate { group, generation, revised };
        let bytes = update.encoded();
        let (decoded, consumed) = Response::decode(&bytes).expect("a valid frame");
        prop_assert_eq!(decoded, update);
        prop_assert_eq!(consumed, bytes.len());
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert_eq!(Response::decode(&bytes[..cut]).unwrap_err(), DecodeError::Incomplete);

        // The admin acks reuse the notification frame; the group field carries the POI id.
        let kind = [
            NotificationKind::AdminApplied,
            NotificationKind::AdminDenied,
            NotificationKind::UnknownPoi,
        ][kind];
        let ack = Response::Notification { group, kind };
        let bytes = ack.encoded();
        prop_assert_eq!(Response::decode(&bytes).expect("a valid frame").0, ack);
    }

    #[test]
    fn corrupted_admin_and_world_update_frames_never_panic(
        position in 0usize..1_000,
        value in 0usize..256,
        oversize in ((16usize << 20) + 1)..(1 << 30),
    ) {
        for bytes in [
            Request::Admin(AdminRequest::PoiInsert { location: Point::new(3.0, -4.0) }).encoded(),
            Request::Admin(AdminRequest::PoiDelete { poi: 99 }).encoded(),
            Response::WorldUpdate { group: 1, generation: 2, revised: 3 }.encoded(),
        ] {
            let mut corrupt = bytes.clone();
            let index = position % corrupt.len();
            corrupt[index] = value as u8;
            // The flip may hit the tag, the admin sub-command, the length or a payload
            // byte; any outcome but a panic (or an over-allocation) is acceptable.
            let _ = Request::decode(&corrupt);
            let _ = Response::decode(&corrupt);

            // A frame whose length prefix claims more than the cap is rejected as
            // Oversize before any allocation happens.
            let mut huge = bytes;
            huge[..4].copy_from_slice(&(oversize as u32).to_le_bytes());
            prop_assert_eq!(Request::decode(&huge).unwrap_err(), DecodeError::Oversize(oversize));
            prop_assert_eq!(Response::decode(&huge).unwrap_err(), DecodeError::Oversize(oversize));
        }
    }

    #[test]
    fn truncated_frames_are_incomplete_never_panics(
        coords in prop_vec((-100.0f64..100.0, -100.0f64..100.0), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let positions: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let bytes = Request::Report { group: 3, positions }.encoded();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert_eq!(Request::decode(&bytes[..cut]).unwrap_err(), DecodeError::Incomplete);
    }

    #[test]
    fn byte_soup_never_panics_the_decoders(
        bytes in prop_vec(0usize..256, 0..96).prop_map(
            |v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()
        ),
    ) {
        // Whatever the bytes say, decoding returns — it must not panic or over-allocate.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn corrupting_one_byte_of_a_valid_frame_never_panics(
        position in 0usize..1_000,
        value in 0usize..256,
    ) {
        let mut bytes = Response::SafeRegion {
            group: 11,
            user: 3,
            meeting_point: Point::new(1.0, 2.0),
            region: tile_region(Point::new(0.0, 0.0), 2.0, &[(0, 0, 0), (1, 2, -3), (2, 4, 4)]),
        }
        .encoded();
        let index = position % bytes.len();
        bytes[index] = value as u8;
        // The result may be Ok (the flip hit a coordinate) or any error — just never a panic.
        let _ = Response::decode(&bytes);
    }
}
