//! The meeting-point monitoring protocol, wire-shaped.
//!
//! The paper's system architecture (Fig. 3) is a client/server protocol: clients stream
//! location reports uplink, the server answers downlink with safe regions, probes and
//! notifications.  The simulation layer in `mpn-sim` has always *accounted* for these
//! messages (its `Message`/`Traffic` cost model); this crate makes them **real**: a
//! transport-independent [`Request`] / [`Response`] pair with a compact length-prefixed
//! binary [`codec`], usable in-process (a queue of decoded values) or over any byte stream
//! (`std::net::TcpStream` in `examples/network_monitoring.rs`).
//!
//! # Message shapes
//!
//! Uplink ([`Request`], client → server):
//!
//! * [`Request::Register`] — open a monitoring session for a group (`group_size` users and a
//!   [`WireConfig`] choosing objective, safe-region method and horizon);
//! * [`Request::Report`] — one epoch of user positions for a registered group (both the
//!   spontaneous step-1 violation reports and the step-2 probe replies travel as reports);
//! * [`Request::Deregister`] — close the session;
//! * [`Request::Admin`] — a world mutation ([`AdminRequest`]: POI insert / delete), accepted
//!   only from clients the server has granted admin rights.
//!
//! Downlink ([`Response`], server → client):
//!
//! * [`Response::SafeRegion`] — the step-3 unicast: the fresh optimal meeting point plus one
//!   user's new independent safe region;
//! * [`Response::ProbeRequest`] — the step-2 downlink: the server asks one user for her
//!   current location;
//! * [`Response::Notification`] — control-plane acknowledgements and errors
//!   ([`NotificationKind`]); a `Registered` notification carries the server-assigned group
//!   id every later message is addressed by;
//! * [`Response::WorldUpdate`] — the **unsolicited push** of the mutable-world protocol:
//!   a POI change invalidated this group's safe regions, revised [`Response::SafeRegion`]s
//!   follow in the same batch.  Unlike every other downlink message it is not a reply to
//!   anything the receiving client sent.
//!
//! # Cost accounting
//!
//! The paper's evaluation measures communication in TCP packets of
//! [`VALUES_PER_PACKET`](mpn_core::VALUES_PER_PACKET) double-precision values (§7.1).  Every
//! protocol message exposes [`values`](Request::values) / [`packets`](Request::packets)
//! under exactly that model, **pinned equal** to the simulation's `Message` cost model
//! (`tests/proto_parity.rs`): a single-user report costs what a `Message::location_report`
//! costs, a probe request one value, and a safe-region response `2 +`
//! [`region_value_count`](mpn_core::region_value_count) values.  A multi-user
//! [`Request::Report`] is accounted as its constituent per-user reports — the users'
//! uplinks are physically separate transmissions, the batch is only the server-side framing.
//! The byte [`codec`] is an implementation detail underneath this model (and at 9 bytes per
//! tile it is itself well under the 24-byte plain-double encoding).
//!
//! Control-plane messages (`Register`, `Deregister`, `Notification`) have no counterpart in
//! the paper's Fig. 3 accounting; they are charged their literal payload (1–2 values) and
//! excluded from the parity pin.

#![forbid(unsafe_code)]

pub mod codec;

pub use codec::{read_frame, DecodeError, FrameReader, MAX_FRAME_LEN};

use mpn_core::{packets_for_values, region_value_count, Method, Objective, SafeRegion};
use mpn_geom::Point;

/// Server-assigned identifier of a monitored group, carried by every post-registration
/// message (`mpn-sim`'s dense `GroupId`, widened for the wire).
pub type WireGroupId = u64;

/// The objective a client requests, as shipped on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireObjective {
    /// Minimise the maximum user distance (MPN).
    Max,
    /// Minimise the total user distance (Sum-MPN).
    Sum,
}

impl From<WireObjective> for Objective {
    fn from(wire: WireObjective) -> Self {
        match wire {
            WireObjective::Max => Objective::Max,
            WireObjective::Sum => Objective::Sum,
        }
    }
}

impl From<Objective> for WireObjective {
    fn from(objective: Objective) -> Self {
        match objective {
            Objective::Max => WireObjective::Max,
            Objective::Sum => WireObjective::Sum,
        }
    }
}

/// The safe-region method a client requests, as shipped on the wire.
///
/// This is the compact client-facing description; it resolves to a full server-side
/// [`Method`] (with the server's default tuning parameters) via [`WireMethod::to_method`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireMethod {
    /// Circular safe regions (`Circle`).
    Circle,
    /// Tile-based safe regions with the default ordering (`Tile`).
    Tile,
    /// Tile-based regions with the directed ordering (`Tile-D`).
    TileDirected {
        /// Half-angle of the heading cone steering the ordering.
        theta: f64,
    },
    /// Tile-based regions with the directed ordering and §5.4 buffering (`Tile-D-b`).
    TileDirectedBuffered {
        /// Half-angle of the heading cone steering the ordering.
        theta: f64,
        /// Buffer size `b` (GNN prefix length).
        buffer: u32,
    },
}

impl WireMethod {
    /// Resolves the wire description to a server-side [`Method`] with default tuning.
    #[must_use]
    pub fn to_method(self) -> Method {
        match self {
            WireMethod::Circle => Method::circle(),
            WireMethod::Tile => Method::tile(),
            WireMethod::TileDirected { theta } => Method::tile_directed(theta),
            WireMethod::TileDirectedBuffered { theta, buffer } => {
                Method::tile_directed_buffered(theta, buffer as usize)
            }
        }
    }
}

/// The monitoring configuration a client chooses at registration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireConfig {
    /// MAX or SUM objective.
    pub objective: WireObjective,
    /// Safe-region method.
    pub method: WireMethod,
    /// Whether tile regions are shipped compressed (the paper's default).
    pub compress_regions: bool,
    /// Whether the server keeps the §5.4 GNN buffer alive across updates (Tile-D-b only).
    pub persist_buffers: bool,
    /// Cap on monitored timestamps; `None` = open horizon (monitor until deregistration).
    pub max_timestamps: Option<u32>,
}

impl Default for WireConfig {
    /// MAX objective, circular regions, compression on, open horizon.
    fn default() -> Self {
        Self {
            objective: WireObjective::Max,
            method: WireMethod::Circle,
            compress_regions: true,
            persist_buffers: false,
            max_timestamps: None,
        }
    }
}

/// An uplink protocol message (client → server).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a monitoring session for a group of `group_size` users.
    Register {
        /// Number of users in the group.
        group_size: u32,
        /// The requested monitoring configuration.
        config: WireConfig,
    },
    /// One epoch of location reports for the whole group (one position per user, in user
    /// order) — step 1 of Fig. 3 for violators, and the step-2 probe replies.
    Report {
        /// The group the positions belong to.
        group: WireGroupId,
        /// One position per user.
        positions: Vec<Point>,
    },
    /// Close the session; the server reclaims its state and retains the metrics.
    Deregister {
        /// The group to deregister.
        group: WireGroupId,
    },
    /// A POI world mutation, gated per-client: the server only honours it from clients it
    /// has granted admin rights (everyone else gets [`NotificationKind::AdminDenied`]).
    Admin(AdminRequest),
}

/// The world mutation an admin client requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdminRequest {
    /// A new POI appears at `location`; the server assigns its id and echoes it in the
    /// [`NotificationKind::AdminApplied`] acknowledgement.
    PoiInsert {
        /// Where the new POI appears.
        location: Point,
    },
    /// POI `poi` disappears; an unknown id earns [`NotificationKind::UnknownPoi`].
    PoiDelete {
        /// Id of the POI to remove.
        poi: u64,
    },
}

/// A downlink protocol message (server → client).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Step 3 of Fig. 3, per user: the fresh optimal meeting point together with the user's
    /// new independent safe region.
    SafeRegion {
        /// The group the assignment belongs to.
        group: WireGroupId,
        /// Index of the user inside her group.
        user: u32,
        /// The optimal meeting point of this update.
        meeting_point: Point,
        /// The user's new safe region.
        region: SafeRegion,
    },
    /// Step 2 of Fig. 3 (downlink): the server asks one user for her current location.
    ProbeRequest {
        /// The group being probed.
        group: WireGroupId,
        /// Index of the probed user.
        user: u32,
    },
    /// Control-plane acknowledgement or error.
    Notification {
        /// The group the notification concerns (the assigned id for
        /// [`NotificationKind::Registered`], the echoed id otherwise; for the admin
        /// acknowledgements this field carries the **POI id** instead).
        group: WireGroupId,
        /// What happened.
        kind: NotificationKind,
    },
    /// Unsolicited server push: a POI world change broke this group's safe regions and the
    /// server recomputed them.  `revised` [`Response::SafeRegion`] messages (one per user)
    /// follow in the same response batch.
    WorldUpdate {
        /// The affected group.
        group: WireGroupId,
        /// The world generation the revised regions are valid for.
        generation: u64,
        /// How many revised safe-region messages follow.
        revised: u32,
    },
}

/// What a [`Response::Notification`] announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotificationKind {
    /// The registration succeeded; the notification's `group` is the assigned id.
    Registered,
    /// The deregistration succeeded; the session's state was reclaimed.
    Deregistered,
    /// The addressed group is not registered (never was, or already deregistered).
    UnknownGroup,
    /// The request was malformed at the protocol level: a report whose batch does not hold
    /// one position per user, or a registration for an empty group.
    BadRequest,
    /// The admin request was applied; the notification's `group` field carries the POI id
    /// the change concerned (the freshly assigned id of an insert, or the deleted id).
    AdminApplied,
    /// The client holds no admin rights; the world was not touched.
    AdminDenied,
    /// The admin delete addressed a POI id the world does not contain (the `group` field
    /// echoes that id).
    UnknownPoi,
}

impl Request {
    /// Payload size of this message in §7.1 double-precision values.
    ///
    /// A [`Report`](Request::Report) is 2 values per contained position (each user's
    /// coordinates); the control-plane messages are charged their literal payload.
    #[must_use]
    pub fn values(&self) -> usize {
        match self {
            // Control plane: group size + config word.
            Request::Register { .. } => 2,
            Request::Report { positions, .. } => 2 * positions.len(),
            Request::Deregister { .. } => 1,
            // An insert carries one coordinate pair, a delete one id.
            Request::Admin(AdminRequest::PoiInsert { .. }) => 2,
            Request::Admin(AdminRequest::PoiDelete { .. }) => 1,
        }
    }

    /// Number of §7.1 TCP packets this message costs.
    ///
    /// A [`Report`](Request::Report) batch is accounted as its constituent per-user
    /// transmissions (each user uplinks separately; the batch is server-side framing), which
    /// pins it to `Message::location_report` / `Message::probe_reply` of the simulation.
    #[must_use]
    pub fn packets(&self) -> usize {
        match self {
            Request::Report { positions, .. } => positions.len() * packets_for_values(2),
            other => packets_for_values(other.values()),
        }
    }
}

impl Response {
    /// Payload size of this message in §7.1 double-precision values.
    ///
    /// A [`SafeRegion`](Response::SafeRegion) costs the meeting point (2 values) plus the
    /// shared region payload definition [`region_value_count`] — `compress` chooses the
    /// paper's compressed tile encoding, exactly like the group's
    /// `MonitorConfig::compress_regions`.
    #[must_use]
    pub fn values(&self, compress: bool) -> usize {
        match self {
            Response::SafeRegion { region, .. } => 2 + region_value_count(region, compress),
            Response::ProbeRequest { .. } => 1,
            Response::Notification { .. } => 1,
            // Generation stamp + revised-region count.
            Response::WorldUpdate { .. } => 2,
        }
    }

    /// Number of §7.1 TCP packets this message costs.
    #[must_use]
    pub fn packets(&self, compress: bool) -> usize {
        packets_for_values(self.values(compress))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_geom::Circle;

    #[test]
    fn wire_objective_and_method_resolve_to_core_types() {
        assert_eq!(Objective::from(WireObjective::Max), Objective::Max);
        assert_eq!(Objective::from(WireObjective::Sum), Objective::Sum);
        assert_eq!(WireObjective::from(Objective::Sum), WireObjective::Sum);
        assert_eq!(WireMethod::Circle.to_method().name(), "Circle");
        assert_eq!(WireMethod::Tile.to_method().name(), "Tile");
        assert_eq!(WireMethod::TileDirected { theta: 0.8 }.to_method().name(), "Tile-D");
        assert_eq!(
            WireMethod::TileDirectedBuffered { theta: 0.8, buffer: 50 }.to_method().name(),
            "Tile-D-b"
        );
    }

    #[test]
    fn report_accounting_is_per_user() {
        let report = Request::Report {
            group: 7,
            positions: vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0), Point::new(5.0, 6.0)],
        };
        assert_eq!(report.values(), 6);
        assert_eq!(report.packets(), 3, "three separate single-packet uplinks");
    }

    #[test]
    fn safe_region_response_counts_meeting_point_plus_region() {
        let response = Response::SafeRegion {
            group: 1,
            user: 0,
            meeting_point: Point::new(9.0, 9.0),
            region: SafeRegion::Circle(Circle::new(Point::new(9.0, 9.0), 4.0)),
        };
        assert_eq!(response.values(true), 5);
        assert_eq!(response.packets(true), 1);
        let probe = Response::ProbeRequest { group: 1, user: 2 };
        assert_eq!(probe.values(true), 1);
        assert_eq!(probe.packets(true), 1);
    }
}
