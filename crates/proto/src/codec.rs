//! The compact length-prefixed binary codec of the protocol.
//!
//! Every message travels as one **frame**: a little-endian `u32` payload length, a one-byte
//! message tag, then the tag's payload.  Primitives are little-endian; `f64`s ship as their
//! IEEE-754 bit patterns (the round-trip is exact, which the property tests pin); tile
//! regions ship as their shared frame plus 9 bytes per cell (level `u8`, grid coordinates
//! `i32`×2) and are rebuilt exactly on decode.
//!
//! Uplink and downlink tags live in disjoint ranges (`0x01..` vs `0x81..`), so a captured
//! frame identifies its direction and [`Request::decode`] cannot silently parse a response
//! (and vice versa).
//!
//! Decoding is incremental-friendly: [`DecodeError::Incomplete`] means "feed me more bytes",
//! which is exactly what a socket read loop needs — or use [`read_frame`] to pull one whole
//! frame off any [`std::io::Read`].  All other errors are malformed input; decoders never
//! panic and never allocate more than the declared (and [`MAX_FRAME_LEN`]-bounded) frame.

use std::io::Read;

use mpn_core::{SafeRegion, TileCell, TileFrame, TileRegion};
use mpn_geom::{Circle, Point};

use crate::{
    AdminRequest, NotificationKind, Request, Response, WireConfig, WireMethod, WireObjective,
};

/// Upper bound on a frame's declared payload length: decoders reject anything larger before
/// allocating.  16 MiB comfortably holds any realistic epoch batch or tile region while
/// keeping a malicious length prefix harmless.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends before the frame does — not an error over a stream, just "read more".
    Incomplete,
    /// The frame's message tag is unknown (or belongs to the opposite direction).
    UnknownTag(u8),
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversize(usize),
    /// The payload does not parse as the tag's message.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete => write!(f, "frame is incomplete; more bytes are needed"),
            DecodeError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            DecodeError::Oversize(len) => {
                write!(f, "declared frame length {len} exceeds the {MAX_FRAME_LEN} byte cap")
            }
            DecodeError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Message tags.  Uplink is 0x01.., downlink 0x81.. — disjoint on purpose.
const TAG_REGISTER: u8 = 0x01;
const TAG_REPORT: u8 = 0x02;
const TAG_DEREGISTER: u8 = 0x03;
const TAG_ADMIN: u8 = 0x04;
const TAG_SAFE_REGION: u8 = 0x81;
const TAG_PROBE_REQUEST: u8 = 0x82;
const TAG_NOTIFICATION: u8 = 0x83;
const TAG_WORLD_UPDATE: u8 = 0x84;

// Sub-tags.
const REGION_CIRCLE: u8 = 0;
const REGION_TILES: u8 = 1;
const ADMIN_POI_INSERT: u8 = 0;
const ADMIN_POI_DELETE: u8 = 1;

/// Highest subdivision level a decoded tile cell may carry.  `TileFrame::side_at` computes
/// `δ / 2^level`, so any level ≥ 32 would overflow the shift; real regions never exceed a
/// handful of levels (the §7.1 compressed encoding caps at 15), so 31 rejects corrupt frames
/// without ever refusing an encodable region.
const MAX_TILE_LEVEL: u8 = 31;

/// Sequential little-endian reader over one frame's payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(DecodeError::Malformed("truncated payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take returned 4 bytes")))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("take returned 4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take returned 8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn point(&mut self) -> Result<Point, DecodeError> {
        Ok(Point::new(self.f64()?, self.f64()?))
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Malformed("trailing bytes after the payload"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

/// Encodes `payload` as one frame (length prefix + tag + payload bytes) appended to `out`.
fn frame(out: &mut Vec<u8>, tag: u8, payload: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    out.push(tag);
    payload(out);
    let len = out.len() - len_at - 4;
    debug_assert!(len <= MAX_FRAME_LEN, "encoder produced an oversize frame");
    out[len_at..len_at + 4]
        .copy_from_slice(&u32::try_from(len).expect("frame fits u32").to_le_bytes());
}

/// Splits one frame off the front of `buf`: returns the payload (tag included) and the total
/// number of bytes consumed.
fn split_frame(buf: &[u8]) -> Result<(&[u8], usize), DecodeError> {
    let Some(len_bytes) = buf.get(..4) else {
        return Err(DecodeError::Incomplete);
    };
    let len = u32::from_le_bytes(len_bytes.try_into().expect("sliced 4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(DecodeError::Oversize(len));
    }
    if len == 0 {
        return Err(DecodeError::Malformed("empty frame (no message tag)"));
    }
    let Some(payload) = buf.get(4..4 + len) else {
        return Err(DecodeError::Incomplete);
    };
    Ok((payload, 4 + len))
}

fn encode_config(out: &mut Vec<u8>, config: &WireConfig) {
    out.push(match config.objective {
        WireObjective::Max => 0,
        WireObjective::Sum => 1,
    });
    match config.method {
        WireMethod::Circle => out.push(0),
        WireMethod::Tile => out.push(1),
        WireMethod::TileDirected { theta } => {
            out.push(2);
            put_f64(out, theta);
        }
        WireMethod::TileDirectedBuffered { theta, buffer } => {
            out.push(3);
            put_f64(out, theta);
            put_u32(out, buffer);
        }
    }
    out.push(u8::from(config.compress_regions) | (u8::from(config.persist_buffers) << 1));
    match config.max_timestamps {
        None => out.push(0),
        Some(cap) => {
            out.push(1);
            put_u32(out, cap);
        }
    }
}

fn decode_config(r: &mut Reader<'_>) -> Result<WireConfig, DecodeError> {
    let objective = match r.u8()? {
        0 => WireObjective::Max,
        1 => WireObjective::Sum,
        _ => return Err(DecodeError::Malformed("unknown objective")),
    };
    let method = match r.u8()? {
        0 => WireMethod::Circle,
        1 => WireMethod::Tile,
        2 => WireMethod::TileDirected { theta: r.f64()? },
        3 => WireMethod::TileDirectedBuffered { theta: r.f64()?, buffer: r.u32()? },
        _ => return Err(DecodeError::Malformed("unknown method")),
    };
    let flags = r.u8()?;
    if flags > 0b11 {
        return Err(DecodeError::Malformed("unknown config flags"));
    }
    let max_timestamps = match r.u8()? {
        0 => None,
        1 => Some(r.u32()?),
        _ => return Err(DecodeError::Malformed("unknown horizon marker")),
    };
    Ok(WireConfig {
        objective,
        method,
        compress_regions: flags & 1 != 0,
        persist_buffers: flags & 2 != 0,
        max_timestamps,
    })
}

fn encode_region(out: &mut Vec<u8>, region: &SafeRegion) {
    match region {
        SafeRegion::Circle(circle) => {
            out.push(REGION_CIRCLE);
            put_point(out, circle.center);
            put_f64(out, circle.radius);
        }
        SafeRegion::Tiles(tiles) => {
            out.push(REGION_TILES);
            let frame = tiles.frame();
            put_point(out, frame.origin);
            put_f64(out, frame.delta);
            put_u32(out, u32::try_from(tiles.len()).expect("tile count fits u32"));
            for cell in tiles.cells() {
                out.push(cell.level);
                put_i32(out, cell.ix);
                put_i32(out, cell.iy);
            }
        }
    }
}

fn decode_region(r: &mut Reader<'_>) -> Result<SafeRegion, DecodeError> {
    match r.u8()? {
        REGION_CIRCLE => {
            let center = r.point()?;
            let radius = r.f64()?;
            Ok(SafeRegion::Circle(Circle::new(center, radius)))
        }
        REGION_TILES => {
            let origin = r.point()?;
            let delta = r.f64()?;
            let count = r.u32()? as usize;
            // 9 bytes per cell must still fit the remaining payload, so a lying count cannot
            // trigger a huge allocation.
            if count.saturating_mul(9) > r.buf.len() - r.pos {
                return Err(DecodeError::Malformed("tile count exceeds the payload"));
            }
            let mut region = TileRegion::new(TileFrame { origin, delta });
            for _ in 0..count {
                let level = r.u8()?;
                if level > MAX_TILE_LEVEL {
                    return Err(DecodeError::Malformed("tile level out of range"));
                }
                let ix = r.i32()?;
                let iy = r.i32()?;
                region.push(TileCell::new(level, ix, iy));
            }
            if region.len() != count {
                return Err(DecodeError::Malformed("duplicate tile cells"));
            }
            Ok(SafeRegion::Tiles(region))
        }
        _ => Err(DecodeError::Malformed("unknown region kind")),
    }
}

impl Request {
    /// Appends this message to `out` as one length-prefixed frame.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Register { group_size, config } => frame(out, TAG_REGISTER, |out| {
                put_u32(out, *group_size);
                encode_config(out, config);
            }),
            Request::Report { group, positions } => frame(out, TAG_REPORT, |out| {
                put_u64(out, *group);
                put_u32(out, u32::try_from(positions.len()).expect("group size fits u32"));
                for p in positions {
                    put_point(out, *p);
                }
            }),
            Request::Deregister { group } => frame(out, TAG_DEREGISTER, |out| {
                put_u64(out, *group);
            }),
            Request::Admin(admin) => frame(out, TAG_ADMIN, |out| match admin {
                AdminRequest::PoiInsert { location } => {
                    out.push(ADMIN_POI_INSERT);
                    put_point(out, *location);
                }
                AdminRequest::PoiDelete { poi } => {
                    out.push(ADMIN_POI_DELETE);
                    put_u64(out, *poi);
                }
            }),
        }
    }

    /// This message as a fresh frame.
    #[must_use]
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one frame off the front of `buf`; returns the message and the bytes consumed.
    ///
    /// # Errors
    /// [`DecodeError::Incomplete`] when `buf` holds less than one whole frame (read more and
    /// retry); any other error means the frame is not a valid uplink message.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        let (payload, consumed) = split_frame(buf)?;
        let mut r = Reader::new(&payload[1..]);
        let request = match payload[0] {
            TAG_REGISTER => {
                let group_size = r.u32()?;
                let config = decode_config(&mut r)?;
                Request::Register { group_size, config }
            }
            TAG_REPORT => {
                let group = r.u64()?;
                let count = r.u32()? as usize;
                if count.saturating_mul(16) > r.buf.len() - r.pos {
                    return Err(DecodeError::Malformed("position count exceeds the payload"));
                }
                let mut positions = Vec::with_capacity(count);
                for _ in 0..count {
                    positions.push(r.point()?);
                }
                Request::Report { group, positions }
            }
            TAG_DEREGISTER => Request::Deregister { group: r.u64()? },
            TAG_ADMIN => Request::Admin(match r.u8()? {
                ADMIN_POI_INSERT => AdminRequest::PoiInsert { location: r.point()? },
                ADMIN_POI_DELETE => AdminRequest::PoiDelete { poi: r.u64()? },
                _ => return Err(DecodeError::Malformed("unknown admin command")),
            }),
            tag => return Err(DecodeError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok((request, consumed))
    }
}

impl Response {
    /// Appends this message to `out` as one length-prefixed frame.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::SafeRegion { group, user, meeting_point, region } => {
                frame(out, TAG_SAFE_REGION, |out| {
                    put_u64(out, *group);
                    put_u32(out, *user);
                    put_point(out, *meeting_point);
                    encode_region(out, region);
                });
            }
            Response::ProbeRequest { group, user } => frame(out, TAG_PROBE_REQUEST, |out| {
                put_u64(out, *group);
                put_u32(out, *user);
            }),
            Response::Notification { group, kind } => frame(out, TAG_NOTIFICATION, |out| {
                put_u64(out, *group);
                out.push(match kind {
                    NotificationKind::Registered => 0,
                    NotificationKind::Deregistered => 1,
                    NotificationKind::UnknownGroup => 2,
                    NotificationKind::BadRequest => 3,
                    NotificationKind::AdminApplied => 4,
                    NotificationKind::AdminDenied => 5,
                    NotificationKind::UnknownPoi => 6,
                });
            }),
            Response::WorldUpdate { group, generation, revised } => {
                frame(out, TAG_WORLD_UPDATE, |out| {
                    put_u64(out, *group);
                    put_u64(out, *generation);
                    put_u32(out, *revised);
                });
            }
        }
    }

    /// This message as a fresh frame.
    #[must_use]
    pub fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one frame off the front of `buf`; returns the message and the bytes consumed.
    ///
    /// # Errors
    /// [`DecodeError::Incomplete`] when `buf` holds less than one whole frame (read more and
    /// retry); any other error means the frame is not a valid downlink message.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), DecodeError> {
        let (payload, consumed) = split_frame(buf)?;
        let mut r = Reader::new(&payload[1..]);
        let response = match payload[0] {
            TAG_SAFE_REGION => {
                let group = r.u64()?;
                let user = r.u32()?;
                let meeting_point = r.point()?;
                let region = decode_region(&mut r)?;
                Response::SafeRegion { group, user, meeting_point, region }
            }
            TAG_PROBE_REQUEST => Response::ProbeRequest { group: r.u64()?, user: r.u32()? },
            TAG_NOTIFICATION => {
                let group = r.u64()?;
                let kind = match r.u8()? {
                    0 => NotificationKind::Registered,
                    1 => NotificationKind::Deregistered,
                    2 => NotificationKind::UnknownGroup,
                    3 => NotificationKind::BadRequest,
                    4 => NotificationKind::AdminApplied,
                    5 => NotificationKind::AdminDenied,
                    6 => NotificationKind::UnknownPoi,
                    _ => return Err(DecodeError::Malformed("unknown notification kind")),
                };
                Response::Notification { group, kind }
            }
            TAG_WORLD_UPDATE => {
                Response::WorldUpdate { group: r.u64()?, generation: r.u64()?, revised: r.u32()? }
            }
            tag => return Err(DecodeError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok((response, consumed))
    }
}

/// Reads exactly one frame (length prefix included) off a byte stream.
///
/// Returns `Ok(None)` on a clean end-of-stream *between* frames (the peer closed the
/// connection); an EOF in the middle of a frame is an [`std::io::ErrorKind::UnexpectedEof`]
/// error.  The returned bytes feed straight into [`Request::decode`] / [`Response::decode`].
///
/// # Errors
/// Propagates I/O errors; an oversize length prefix is reported as
/// [`std::io::ErrorKind::InvalidData`] before any payload allocation.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match stream.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame's length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            DecodeError::Oversize(len).to_string(),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&body);
    Ok(Some(out))
}

/// Incremental frame assembler for readiness-driven (non-blocking) transports.
///
/// [`read_frame`] needs a blocking [`Read`]; an event loop instead gets arbitrary byte chunks
/// whenever a socket is readable.  A `FrameReader` buffers those chunks
/// ([`feed`](FrameReader::feed)) and hands back whole decoded messages as soon as they are
/// complete ([`next_request`](FrameReader::next_request) /
/// [`next_response`](FrameReader::next_response)), mapping the codec's
/// [`DecodeError::Incomplete`] to `Ok(None)` — "wait for more bytes" is not an error on a
/// stream.  Every other [`DecodeError`] **is** final: the stream is desynchronised (unknown
/// tag, lying length, malformed payload) and the connection should be closed; the reader
/// makes no attempt to resynchronise.
///
/// Consumed bytes are compacted away lazily, so a long-lived connection's buffer stays
/// proportional to its largest in-flight frame, not its lifetime traffic.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` before this offset are already decoded and await compaction.
    pos: usize,
}

impl FrameReader {
    /// Creates an empty reader.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read off the transport (any chunking, including one byte at a time).
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: reuse the dead prefix instead of enlarging the buffer.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes fed but not yet decoded into a message.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete uplink message, `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    /// Any error other than the internally-absorbed [`DecodeError::Incomplete`]: the stream
    /// is broken and cannot be decoded further.
    pub fn next_request(&mut self) -> Result<Option<Request>, DecodeError> {
        self.next_with(Request::decode)
    }

    /// Decodes the next complete downlink message, `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    /// Any error other than the internally-absorbed [`DecodeError::Incomplete`]: the stream
    /// is broken and cannot be decoded further.
    pub fn next_response(&mut self) -> Result<Option<Response>, DecodeError> {
        self.next_with(Response::decode)
    }

    fn next_with<T>(
        &mut self,
        decode: impl FnOnce(&[u8]) -> Result<(T, usize), DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match decode(&self.buf[self.pos..]) {
            Ok((message, consumed)) => {
                self.pos += consumed;
                Ok(Some(message))
            }
            Err(DecodeError::Incomplete) => Ok(None),
            Err(fatal) => Err(fatal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_region() -> SafeRegion {
        let mut region = TileRegion::with_seed(TileFrame::centered_at(Point::new(4.0, -3.0), 2.0));
        for (level, ix, iy) in [(0, 1, 0), (1, -2, 3), (2, 5, -7)] {
            region.push(TileCell::new(level, ix, iy));
        }
        SafeRegion::Tiles(region)
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Register {
                group_size: 4,
                config: WireConfig {
                    objective: WireObjective::Sum,
                    method: WireMethod::TileDirectedBuffered { theta: 0.75, buffer: 100 },
                    compress_regions: true,
                    persist_buffers: true,
                    max_timestamps: Some(500),
                },
            },
            Request::Report {
                group: 42,
                positions: vec![Point::new(1.5, -2.5), Point::new(0.0, 9.75)],
            },
            Request::Deregister { group: u64::MAX },
            Request::Admin(AdminRequest::PoiInsert { location: Point::new(-7.25, 1e9) }),
            Request::Admin(AdminRequest::PoiDelete { poi: 123_456 }),
        ];
        for request in &requests {
            let bytes = request.encoded();
            let (decoded, consumed) = Request::decode(&bytes).expect("a valid frame");
            assert_eq!(&decoded, request);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn responses_round_trip_including_tile_regions() {
        let responses = [
            Response::SafeRegion {
                group: 3,
                user: 1,
                meeting_point: Point::new(10.0, 20.0),
                region: SafeRegion::Circle(Circle::new(Point::new(1.0, 2.0), 5.5)),
            },
            Response::SafeRegion {
                group: 3,
                user: 2,
                meeting_point: Point::new(-4.0, 0.25),
                region: tile_region(),
            },
            Response::ProbeRequest { group: 3, user: 0 },
            Response::Notification { group: 9, kind: NotificationKind::Registered },
            Response::Notification { group: 9, kind: NotificationKind::BadRequest },
            Response::Notification { group: 17, kind: NotificationKind::AdminApplied },
            Response::Notification { group: 0, kind: NotificationKind::AdminDenied },
            Response::Notification { group: 17, kind: NotificationKind::UnknownPoi },
            Response::WorldUpdate { group: 5, generation: u64::MAX, revised: 3 },
        ];
        for response in &responses {
            let bytes = response.encoded();
            let (decoded, consumed) = Response::decode(&bytes).expect("a valid frame");
            assert_eq!(&decoded, response);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn concatenated_frames_decode_sequentially() {
        let mut wire = Vec::new();
        Request::Deregister { group: 1 }.encode(&mut wire);
        Request::Report { group: 2, positions: vec![Point::new(3.0, 4.0)] }.encode(&mut wire);
        let (first, used) = Request::decode(&wire).unwrap();
        assert_eq!(first, Request::Deregister { group: 1 });
        let (second, used_second) = Request::decode(&wire[used..]).unwrap();
        assert_eq!(second, Request::Report { group: 2, positions: vec![Point::new(3.0, 4.0)] });
        assert_eq!(used + used_second, wire.len());
    }

    #[test]
    fn incomplete_buffers_ask_for_more_bytes() {
        let bytes = Request::Report { group: 5, positions: vec![Point::new(1.0, 1.0)] }.encoded();
        for cut in 0..bytes.len() {
            assert_eq!(
                Request::decode(&bytes[..cut]).unwrap_err(),
                DecodeError::Incomplete,
                "a {cut}-byte prefix is incomplete, not malformed"
            );
        }
    }

    #[test]
    fn malformed_frames_are_rejected_without_panicking() {
        // Unknown tag (a downlink tag fed to the request decoder and vice versa).
        let bytes = Response::ProbeRequest { group: 0, user: 0 }.encoded();
        assert_eq!(Request::decode(&bytes).unwrap_err(), DecodeError::UnknownTag(0x82));
        let bytes = Request::Deregister { group: 0 }.encoded();
        assert_eq!(Response::decode(&bytes).unwrap_err(), DecodeError::UnknownTag(0x03));

        // Oversize declared length.
        let mut huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        huge.push(TAG_DEREGISTER);
        assert!(matches!(Request::decode(&huge).unwrap_err(), DecodeError::Oversize(_)));

        // A lying position count must not over-allocate or panic.
        let mut lying = Vec::new();
        frame(&mut lying, TAG_REPORT, |out| {
            put_u64(out, 1);
            put_u32(out, u32::MAX);
        });
        assert!(matches!(Request::decode(&lying).unwrap_err(), DecodeError::Malformed(_)));

        // Trailing garbage inside the frame is malformed.
        let mut padded = Vec::new();
        frame(&mut padded, TAG_DEREGISTER, |out| {
            put_u64(out, 1);
            out.push(0xEE);
        });
        assert!(matches!(Request::decode(&padded).unwrap_err(), DecodeError::Malformed(_)));

        // An unknown admin sub-command is malformed, not a new message.
        let mut odd = Vec::new();
        frame(&mut odd, TAG_ADMIN, |out| {
            out.push(2);
            put_u64(out, 1);
        });
        assert_eq!(
            Request::decode(&odd).unwrap_err(),
            DecodeError::Malformed("unknown admin command")
        );

        // A world update truncated mid-generation is malformed once the frame is complete.
        let mut short = Vec::new();
        frame(&mut short, TAG_WORLD_UPDATE, |out| {
            put_u64(out, 1);
            put_u32(out, 0);
        });
        assert!(matches!(Response::decode(&short).unwrap_err(), DecodeError::Malformed(_)));

        // An out-of-range tile level is rejected before it can overflow the tile geometry
        // (`TileFrame::side_at` shifts by the level).
        let mut deep = Vec::new();
        frame(&mut deep, TAG_SAFE_REGION, |out| {
            put_u64(out, 1);
            put_u32(out, 0);
            put_point(out, Point::new(0.0, 0.0));
            out.push(REGION_TILES);
            put_point(out, Point::new(0.0, 0.0));
            put_f64(out, 2.0);
            put_u32(out, 1);
            out.push(MAX_TILE_LEVEL + 1);
            put_i32(out, 0);
            put_i32(out, 0);
        });
        assert_eq!(
            Response::decode(&deep).unwrap_err(),
            DecodeError::Malformed("tile level out of range")
        );
    }

    #[test]
    fn frame_reader_reassembles_any_chunking() {
        let requests = [
            Request::Register { group_size: 3, config: WireConfig::default() },
            Request::Report { group: 7, positions: vec![Point::new(1.0, 2.0)] },
            Request::Deregister { group: 7 },
        ];
        let mut wire = Vec::new();
        for request in &requests {
            request.encode(&mut wire);
        }
        // Feed the whole trace one byte at a time: every prefix must park as `Ok(None)`,
        // every completed frame must pop out exactly once, in order.
        for chunk in [1usize, 2, 3, 5, wire.len()] {
            let mut reader = FrameReader::new();
            let mut decoded = Vec::new();
            for bytes in wire.chunks(chunk) {
                reader.feed(bytes);
                while let Some(request) = reader.next_request().expect("a clean stream") {
                    decoded.push(request);
                }
            }
            assert_eq!(decoded, requests, "chunk size {chunk}");
            assert_eq!(reader.buffered(), 0, "nothing left over");
        }
    }

    #[test]
    fn frame_reader_surfaces_fatal_errors_and_compacts() {
        // Oversize prefix is fatal on the first look.
        let mut reader = FrameReader::new();
        reader.feed(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
        assert!(matches!(reader.next_request(), Err(DecodeError::Oversize(_))));

        // A downlink frame on the uplink decoder is fatal too.
        let mut reader = FrameReader::new();
        reader.feed(&Response::ProbeRequest { group: 0, user: 0 }.encoded());
        assert!(matches!(reader.next_request(), Err(DecodeError::UnknownTag(_))));

        // The dead prefix is compacted away once consumed: buffer stays bounded by the
        // in-flight frame, not the connection's lifetime traffic.
        let mut reader = FrameReader::new();
        let frame = Request::Deregister { group: 1 }.encoded();
        for _ in 0..2_000 {
            reader.feed(&frame);
            assert!(reader.next_request().unwrap().is_some());
        }
        assert_eq!(reader.buffered(), 0);
        assert!(reader.buf.len() < 8192, "consumed bytes must not accumulate");
    }

    #[test]
    fn read_frame_pulls_whole_frames_off_a_stream() {
        let mut wire = Vec::new();
        Request::Register { group_size: 2, config: WireConfig::default() }.encode(&mut wire);
        Request::Deregister { group: 0 }.encode(&mut wire);
        let mut cursor = std::io::Cursor::new(wire);
        let first = read_frame(&mut cursor).unwrap().expect("first frame");
        assert!(matches!(Request::decode(&first).unwrap().0, Request::Register { .. }));
        let second = read_frame(&mut cursor).unwrap().expect("second frame");
        assert!(matches!(Request::decode(&second).unwrap().0, Request::Deregister { .. }));
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF between frames");

        // EOF inside a frame is an error, not a silent None.
        let mut truncated = std::io::Cursor::new(vec![9u8, 0, 0, 0, TAG_DEREGISTER]);
        assert!(read_frame(&mut truncated).is_err());
    }
}
