//! Connection state-machine tests for the multiplexed front-end: frame reassembly across
//! fragmented reads, malformed-uplink closes, both phases of the backpressure contract, and
//! mid-session disconnect cleanup.
//!
//! Every test drives a real [`MuxServer`] over loopback sockets from a single thread,
//! interleaving `poll_once` with client-side socket work, so the event loop's behaviour is
//! observed end to end without sleeps or cross-thread races.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpn_index::RTree;
use mpn_mobility::poi::{clustered_pois, PoiConfig};
use mpn_mobility::waypoint::{taxi_trajectory, TaxiConfig};
use mpn_net::{MuxConfig, MuxServer};
use mpn_proto::{
    DecodeError, NotificationKind, Request, Response, WireConfig, WireMethod, WireObjective,
};
use mpn_sim::{ServerCore, TrajectoryFeed};

const DEADLINE: Duration = Duration::from_secs(30);

fn test_core() -> ServerCore {
    let pois = clustered_pois(
        &PoiConfig { count: 400, domain: 2_000.0, clusters: 4, ..PoiConfig::default() },
        11,
    );
    ServerCore::new(Arc::new(RTree::bulk_load(&pois)), 2)
}

fn circle_config() -> WireConfig {
    WireConfig {
        objective: WireObjective::Max,
        method: WireMethod::Circle,
        compress_regions: true,
        persist_buffers: false,
        max_timestamps: None,
    }
}

fn feed(seed: u64, size: usize, epochs: usize) -> TrajectoryFeed {
    let taxi = TaxiConfig {
        domain: 2_000.0,
        speed_limit: 9.0,
        timestamps: epochs,
        ..TaxiConfig::default()
    };
    TrajectoryFeed::new(
        (0..size).map(|i| taxi_trajectory(&taxi, seed + i as u64)).collect::<Vec<_>>(),
    )
}

/// A non-blocking loopback client that reassembles count-prefixed response batches from raw
/// bytes and queues its own uplink, so tests never issue a blocking call that could deadlock
/// against a backpressured server or consume half a batch.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
    pending: Vec<u8>,
    sent: usize,
    dead: bool,
}

impl Client {
    fn connect(server: &MuxServer) -> Self {
        let stream = TcpStream::connect(server.local_addr().expect("addr")).expect("connect");
        stream.set_nonblocking(true).expect("nonblocking client");
        stream.set_nodelay(true).expect("nodelay client");
        Self { stream, buf: Vec::new(), pos: 0, pending: Vec::new(), sent: 0, dead: false }
    }

    /// Drains whatever downlink bytes the kernel has for us.
    fn pump_read(&mut self) {
        let mut scratch = [0u8; 4096];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => break,
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("client read failed: {e}"),
            }
        }
    }

    /// Parses one whole batch out of the buffer, or `None` until more bytes arrive.
    fn try_batch(&mut self) -> Option<Vec<Response>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return None;
        }
        let count = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        let mut at = 4;
        let mut responses = Vec::with_capacity(count);
        for _ in 0..count {
            match Response::decode(&avail[at..]) {
                Ok((response, consumed)) => {
                    responses.push(response);
                    at += consumed;
                }
                Err(DecodeError::Incomplete) => return None,
                Err(e) => panic!("undecodable downlink: {e}"),
            }
        }
        self.pos += at;
        Some(responses)
    }

    /// Pumps the event loop until one whole batch arrives.
    fn read_batch(&mut self, server: &mut MuxServer) -> Vec<Response> {
        let deadline = Instant::now() + DEADLINE;
        loop {
            server.poll_once(Some(Duration::from_millis(1))).expect("poll");
            self.flush_uplink();
            self.pump_read();
            if let Some(batch) = self.try_batch() {
                return batch;
            }
            assert!(Instant::now() < deadline, "no batch within the deadline");
        }
    }

    /// Queues uplink bytes without touching the socket (delivery happens in
    /// [`flush_uplink`](Self::flush_uplink)).
    fn enqueue(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
    }

    /// Writes as much queued uplink as the kernel accepts.  A connection reset (the server
    /// dropped us) marks the client dead instead of panicking — the backpressure tests
    /// expect exactly that.
    fn flush_uplink(&mut self) {
        while self.sent < self.pending.len() && !self.dead {
            match self.stream.write(&self.pending[self.sent..]) {
                Ok(0) => self.dead = true,
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
    }

    /// Queues and immediately delivers uplink; for the lock-step tests whose payloads always
    /// fit the kernel buffers.
    fn send(&mut self, bytes: &[u8]) {
        self.enqueue(bytes);
        self.flush_uplink();
        assert_eq!(self.sent, self.pending.len(), "lock-step uplink fits the socket buffers");
    }
}

fn pump(server: &mut MuxServer, times: usize) {
    for _ in 0..times {
        server.poll_once(Some(Duration::from_millis(1))).expect("poll");
    }
}

fn registered_id(batch: &[Response]) -> u64 {
    batch
        .iter()
        .find_map(|r| match r {
            Response::Notification { group, kind: NotificationKind::Registered } => Some(*group),
            _ => None,
        })
        .expect("registration ack")
}

#[test]
fn partial_frames_reassemble_across_reads() {
    let mut server =
        MuxServer::bind("127.0.0.1:0", test_core(), MuxConfig::default()).expect("bind");
    let mut client = Client::connect(&server);
    pump(&mut server, 2); // accept

    // Register, one byte at a time, polling between every byte: the FrameReader must park
    // the partial frame across an arbitrary number of reads.
    let mut group = feed(500, 3, 8);
    let register =
        Request::Register { group_size: group.group_size() as u32, config: circle_config() }
            .encoded();
    for &byte in &register {
        client.send(&[byte]);
        pump(&mut server, 1);
    }
    let ack = client.read_batch(&mut server);
    let id = registered_id(&ack);
    assert_eq!(server.stats().requests, 1, "exactly one request decoded from the byte dribble");

    // Report in ragged 3-byte chunks: same reassembly, and the epoch round-trips.
    let positions = group.next_epoch().expect("epoch");
    let report = Request::Report { group: id, positions }.encoded();
    for chunk in report.chunks(3) {
        client.send(chunk);
        pump(&mut server, 1);
    }
    let epoch = client.read_batch(&mut server);
    assert!(
        epoch.iter().any(|r| matches!(r, Response::SafeRegion { .. })),
        "the first epoch assigns initial safe regions"
    );
    assert_eq!(server.stats().requests, 2);

    // Deregister whole; the farewell comes back and the engine is empty again.
    client.send(&Request::Deregister { group: id }.encoded());
    let farewell = client.read_batch(&mut server);
    assert!(farewell
        .contains(&Response::Notification { group: id, kind: NotificationKind::Deregistered }));
    assert_eq!(server.core().engine().group_count(), 0);
}

#[test]
fn malformed_frame_closes_the_connection_but_honours_earlier_requests() {
    let mut server =
        MuxServer::bind("127.0.0.1:0", test_core(), MuxConfig::default()).expect("bind");
    let mut client = Client::connect(&server);
    pump(&mut server, 2);

    // A valid registration followed, in the same write, by garbage that decodes as no
    // request: the register must still be applied, then the connection closed.
    let mut bytes = Request::Register { group_size: 2, config: circle_config() }.encoded();
    bytes.extend_from_slice(&[0xFF; 16]);
    client.send(&bytes);

    let deadline = Instant::now() + DEADLINE;
    while server.stats().closed_malformed == 0 {
        pump(&mut server, 1);
        assert!(Instant::now() < deadline, "malformed close not observed");
    }
    assert_eq!(server.stats().requests, 1, "the valid frame before the garbage was decoded");
    assert_eq!(server.connection_count(), 0);
    // The close disconnects the client, so the group it had registered is gone again.
    assert_eq!(server.core().engine().group_count(), 0);
}

#[test]
fn mid_session_disconnect_deregisters_owned_groups() {
    let mut server =
        MuxServer::bind("127.0.0.1:0", test_core(), MuxConfig::default()).expect("bind");
    let mut client = Client::connect(&server);
    pump(&mut server, 2);

    let mut group = feed(900, 2, 8);
    client.send(
        &Request::Register { group_size: group.group_size() as u32, config: circle_config() }
            .encoded(),
    );
    let id = registered_id(&client.read_batch(&mut server));
    for _ in 0..3 {
        let positions = group.next_epoch().expect("epoch");
        client.send(&Request::Report { group: id, positions }.encoded());
        client.read_batch(&mut server);
    }
    assert_eq!(server.core().engine().group_count(), 1);

    // The phone dies mid-session: EOF must deregister the group, not leak the session.
    drop(client.stream);
    let deadline = Instant::now() + DEADLINE;
    while server.stats().disconnected == 0 {
        pump(&mut server, 1);
        assert!(Instant::now() < deadline, "disconnect not observed");
    }
    assert_eq!(server.connection_count(), 0);
    assert_eq!(server.core().engine().group_count(), 0);
    assert_eq!(server.core().backlog(), 0, "inbox epochs of the dead client are reclaimed");
}

/// Queues registrations and one report epoch for `groups` two-user groups, without ever
/// reading the downlink — the slow-reader setup both backpressure tests start from.  The
/// uplink is queued, not written: the tests deliver it with `flush_uplink` as the (shrunken)
/// kernel buffers allow.
fn blast(client: &mut Client, groups: u64, positions_seed: u64) {
    let mut group = feed(positions_seed, 2, 8);
    let positions = group.next_epoch().expect("epoch");
    for _ in 0..groups {
        client.enqueue(&Request::Register { group_size: 2, config: circle_config() }.encoded());
    }
    // Group ids are assigned from the fresh engine's free-list in queue order: 0, 1, 2, ...
    for id in 0..groups {
        client.enqueue(&Request::Report { group: id, positions: positions.clone() }.encoded());
    }
}

/// Groups each backpressure test bursts: enough downlink (~350 KiB of acks and initial
/// safe-region assignments) to overwhelm the pinned server send buffer plus the client's
/// ~128 KiB receive window.
const BURST_GROUPS: u64 = 2_500;

#[test]
fn soft_backpressure_pauses_reads_and_resumes_after_drain() {
    let config = MuxConfig {
        soft_outbox_limit: 32 << 10,
        hard_outbox_limit: 64 << 20, // Never reached: this test is about the pause phase.
        socket_send_buffer: Some(4 << 10),
        ..MuxConfig::default()
    };
    let mut server = MuxServer::bind("127.0.0.1:0", test_core(), config).expect("bind");
    let mut client = Client::connect(&server);
    pump(&mut server, 2);

    // A downlink burst the unread client cannot absorb: once the kernel buffers fill the
    // outbox retains bytes far past the soft limit.
    blast(&mut client, BURST_GROUPS, 700);
    let deadline = Instant::now() + DEADLINE;
    while server.stats().paused == 0 && server.outbox_bytes() <= 32 << 10 {
        client.flush_uplink();
        pump(&mut server, 1);
        assert!(Instant::now() < deadline, "outbox never backed up past the soft limit");
    }

    // The next uplink frame meets a backed-up outbox: the loop must pause the connection
    // instead of decoding it.  (If uplink was still in flight when the outbox backed up,
    // the pause has already happened — either way the deregister stays parked.)
    client.enqueue(&Request::Deregister { group: 0 }.encoded());
    let deadline = Instant::now() + DEADLINE;
    while server.stats().paused == 0 {
        client.flush_uplink();
        pump(&mut server, 1);
        assert!(Instant::now() < deadline, "pause not observed");
    }
    assert_eq!(server.connection_count(), 1, "pause is containment, not a close");
    assert!(
        server.stats().requests < 2 * BURST_GROUPS + 1,
        "a paused connection's trailing uplink stays undecoded"
    );

    // While paused and undrained, the decoded-request count must freeze even though uplink
    // keeps arriving in the kernel.
    let frozen = server.stats().requests;
    for _ in 0..20 {
        client.flush_uplink();
        pump(&mut server, 1);
    }
    assert_eq!(server.stats().requests, frozen, "paused means not reading");

    // The client finally drains its downlink: the outbox empties, reading resumes, and the
    // whole parked uplink — through the final deregister — goes through.
    let deadline = Instant::now() + DEADLINE;
    while server.stats().requests < 2 * BURST_GROUPS + 1
        || server.core().engine().group_count() != BURST_GROUPS as usize - 1
    {
        client.flush_uplink();
        client.pump_read();
        pump(&mut server, 1);
        assert!(Instant::now() < deadline, "read interest did not resume");
    }
    assert!(!client.dead, "soft backpressure never drops the connection");
}

#[test]
fn hard_backpressure_drops_the_connection_and_deregisters() {
    let config = MuxConfig {
        soft_outbox_limit: 16 << 10,
        hard_outbox_limit: 64 << 10,
        socket_send_buffer: Some(4 << 10),
        ..MuxConfig::default()
    };
    let mut server = MuxServer::bind("127.0.0.1:0", test_core(), config).expect("bind");
    let mut client = Client::connect(&server);
    pump(&mut server, 2);

    // The same burst, but with a hard limit the unread downlink must cross: the connection
    // is dropped outright and every session it owned is reclaimed.
    blast(&mut client, BURST_GROUPS, 800);
    let deadline = Instant::now() + DEADLINE;
    while server.stats().closed_backpressure == 0 {
        client.flush_uplink();
        pump(&mut server, 1);
        assert!(Instant::now() < deadline, "hard-limit drop not observed");
    }
    assert_eq!(server.connection_count(), 0);
    assert_eq!(server.core().engine().group_count(), 0);
    assert_eq!(server.core().backlog(), 0);
}
