//! The legacy blocking front-end: one OS thread, one connection, the shared core.
//!
//! [`serve_blocking`] is the one-thread-per-connection loop the multiplexed front-end
//! replaces at scale, kept because it is the simplest possible transport over the same
//! [`ServerCore`]: read one whole frame ([`read_frame`]), enqueue it, run one engine tick,
//! write this client's responses back under the count-prefixed batch envelope.  Running the
//! identical core and the identical envelope is what pins the two TCP paths byte-identical
//! (`tests/mux_parity.rs`).

use std::io;
use std::net::TcpStream;

use mpn_proto::{read_frame, Request};
use mpn_sim::{ClientId, ServerCore};

use crate::envelope::write_batch;

/// Serves one blocking connection on `core` as client `client` until the peer disconnects.
///
/// Each uplink request is applied in its own engine tick and answered with one response
/// batch; on EOF the client is [`disconnect`](ServerCore::disconnect)ed, deregistering any
/// groups it still owns.  Responses the tick addressed to *other* clients are dropped (the
/// blocking path has no route to them) — give each blocking connection its own core, or
/// accept that only the multiplexed front-end multiplexes.
///
/// # Errors
/// `InvalidData` when the uplink stream does not decode, plus any socket I/O error.  The
/// client is disconnected from the core on every exit path.
pub fn serve_blocking(
    stream: &mut TcpStream,
    core: &mut ServerCore,
    client: ClientId,
) -> io::Result<()> {
    let result = serve_loop(stream, core, client);
    core.disconnect(client);
    result
}

fn serve_loop(stream: &mut TcpStream, core: &mut ServerCore, client: ClientId) -> io::Result<()> {
    while let Some(frame) = read_frame(stream)? {
        let (request, _) = Request::decode(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        core.enqueue(client, request);
        // Drain the request *and* any inbox epochs a burst left behind, answering each tick
        // with its own batch — the same cadence the lock-step client observes from the mux.
        while core.has_work() {
            let output = core.process();
            let own: Vec<_> = output
                .responses
                .into_iter()
                .filter_map(|(to, response)| (to == client).then_some(response))
                .collect();
            write_batch(stream, &own)?;
        }
    }
    Ok(())
}
