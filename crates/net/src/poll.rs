//! A std-only readiness facility: the thin slice of `epoll` (Linux) / `poll` (other Unixes)
//! the event loop needs, with no external crates.
//!
//! The build environment is offline, so this module binds the two libc entry points by hand
//! (`std` already links libc on every Unix target; declaring the prototypes costs nothing).
//! The surface is deliberately tiny and `mio`-shaped: register a file descriptor under a
//! caller-chosen [`Token`] with a read/write [`Interest`], then [`Poller::wait`] for
//! [`PollEvent`]s.  Readiness is **level-triggered** on both backends: an event repeats every
//! wait until the condition is drained, which keeps the connection state machine free of
//! edge-triggered starvation hazards.
//!
//! This module contains the workspace's only networking `unsafe` (FFI calls and the
//! `epoll_event` layout); everything above it is safe Rust.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered file descriptor and echoed in every
/// [`PollEvent`] — the key into the owner's connection slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or a peer hangup is pending).
    pub read: bool,
    /// Wake when the descriptor is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Self = Self { read: true, write: false };
    /// Write-only interest.
    pub const WRITE: Self = Self { read: false, write: true };
    /// Both directions.
    pub const BOTH: Self = Self { read: true, write: true };
    /// Neither direction: the descriptor stays registered but wakes only for errors/hangups
    /// (how the loop parks a backpressured connection without losing its slot).
    pub const NONE: Self = Self { read: false, write: false };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered under.
    pub token: Token,
    /// The descriptor is readable (data, or EOF, is waiting).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; the owner should read to the error/EOF
    /// and close.
    pub closed: bool,
}

/// Pins a socket's kernel **send** buffer to roughly `bytes`.
///
/// Setting `SO_SNDBUF` explicitly also disables the kernel's autotuning, which on Linux
/// loopback otherwise grows the buffer to megabytes — at thousands of connections that
/// dominates server memory, so the event loop offers this as a
/// [`MuxConfig`](crate::MuxConfig) knob; the backpressure tests use it to make kernel
/// absorption small and deterministic.  The kernel clamps and rounds the value (Linux
/// doubles it and enforces a floor), so the result is best-effort by design.
///
/// # Errors
/// Propagates the OS error (e.g. a bad descriptor).
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    sockopt::set_buffer(fd, sockopt::SO_SNDBUF, bytes)
}

/// Pins a socket's kernel **receive** buffer to roughly `bytes` — same caveats as
/// [`set_send_buffer`].  Beware that shrinking the receive side of an active connection
/// introduces TCP zero-window persist-timer stalls under load; prefer pinning the send side.
///
/// # Errors
/// Propagates the OS error (e.g. a bad descriptor).
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    sockopt::set_buffer(fd, sockopt::SO_RCVBUF, bytes)
}

mod sockopt {
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(target_os = "linux")]
    const SOL_SOCKET: i32 = 1;
    #[cfg(target_os = "linux")]
    pub const SO_SNDBUF: i32 = 7;
    #[cfg(target_os = "linux")]
    pub const SO_RCVBUF: i32 = 8;

    #[cfg(all(unix, not(target_os = "linux")))]
    const SOL_SOCKET: i32 = 0xffff;
    #[cfg(all(unix, not(target_os = "linux")))]
    pub const SO_SNDBUF: i32 = 0x1001;
    #[cfg(all(unix, not(target_os = "linux")))]
    pub const SO_RCVBUF: i32 = 0x1002;

    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
    }

    pub fn set_buffer(fd: RawFd, name: i32, bytes: usize) -> io::Result<()> {
        let value = i32::try_from(bytes).unwrap_or(i32::MAX);
        // SAFETY: `value` outlives the call and the length matches its type.
        let ret =
            unsafe { setsockopt(fd, SOL_SOCKET, name, &value, std::mem::size_of::<i32>() as u32) };
        if ret < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

/// Converts a wait timeout to the millisecond argument both backends take (`-1` = forever).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    let Some(t) = timeout else { return -1 };
    // Round sub-millisecond (but non-zero) timeouts up so they do not busy-spin as 0 ms.
    let ms = match t.as_millis() {
        0 if !t.is_zero() => 1,
        ms => ms,
    };
    i32::try_from(ms).unwrap_or(i32::MAX)
}

#[cfg(target_os = "linux")]
mod backend {
    use super::{timeout_ms, Interest, PollEvent, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // The `epoll_event` layout: packed on x86-64 (the kernel ABI packs the struct there),
    // natural alignment elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.read {
            events |= EPOLLIN;
        }
        if interest.write {
            events |= EPOLLOUT;
        }
        events
    }

    /// The Linux epoll readiness backend.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall; the returned fd is owned by the Poller and closed on drop.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self { epfd })
        }

        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // A non-null event pointer keeps pre-2.6.9 kernels happy; the contents are unused.
            let mut event = EpollEvent { events: 0, data: 0 };
            // SAFETY: `event` outlives the call; the kernel copies what it needs.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent { events: mask(interest), data: token.0 as u64 };
            // SAFETY: `event` outlives the call; the kernel copies what it needs.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) }).map(|_| ())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut events = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                // SAFETY: the buffer pointer/length pair is valid for the whole call.
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for event in &events[..n] {
                let (bits, data) = (event.events, event.data);
                out.push(PollEvent {
                    token: Token(data as usize),
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: the fd was created by `epoll_create1` and is closed exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    //! Portable `poll(2)` fallback for non-Linux Unixes (macOS, the BSDs): O(n) per wait,
    //! which is fine for tests and development boxes; the Linux deployment target gets epoll.

    use super::{timeout_ms, Interest, PollEvent, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    #[derive(Debug)]
    pub struct Poller {
        registered: Vec<(RawFd, Token, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self { registered: Vec::new() })
        }

        pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            if self.registered.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
            }
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let entry =
                self.registered.iter_mut().find(|(f, _, _)| *f == fd).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotFound, "fd is not registered")
                })?;
            *entry = (fd, token, interest);
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.registered.len();
            self.registered.retain(|(f, _, _)| *f != fd);
            if self.registered.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd is not registered"));
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: (if interest.read { POLLIN } else { 0 })
                        | (if interest.write { POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            let n = loop {
                // SAFETY: the buffer pointer/length pair is valid for the whole call.
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if ret >= 0 {
                    break ret as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for (pollfd, (_, token, _)) in fds.iter().zip(&self.registered) {
                if pollfd.revents != 0 {
                    out.push(PollEvent {
                        token: *token,
                        readable: pollfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pollfd.revents & POLLOUT != 0,
                        closed: pollfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(n)
        }
    }
}

#[cfg(not(unix))]
compile_error!("mpn-net's readiness poller requires a Unix target (epoll or poll)");

/// The platform readiness poller: `epoll` on Linux, `poll(2)` elsewhere on Unix.
///
/// See the [module docs](self) for the model; all methods are level-triggered.
#[derive(Debug)]
pub struct Poller {
    inner: backend::Poller,
}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    /// Propagates the OS error when the underlying facility cannot be created.
    pub fn new() -> io::Result<Self> {
        Ok(Self { inner: backend::Poller::new()? })
    }

    /// Starts watching `fd` under `token` with the given interest.
    ///
    /// # Errors
    /// Propagates the OS error (e.g. the fd is already registered or invalid).
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Replaces the token/interest of an already-registered `fd`.
    ///
    /// # Errors
    /// Propagates the OS error (e.g. the fd was never registered).
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    /// Stops watching `fd`.
    ///
    /// # Errors
    /// Propagates the OS error (e.g. the fd was never registered).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks until readiness (or `timeout`), appending events to `out`; returns the number
    /// of ready descriptors (0 on timeout).  `None` blocks indefinitely.  `EINTR` is retried
    /// internally.
    ///
    /// # Errors
    /// Propagates unexpected OS errors.
    pub fn wait(
        &mut self,
        out: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        self.inner.wait(out, timeout)
    }
}
