//! Network front-ends for the meeting-point monitoring server.
//!
//! `mpn-sim`'s [`ServerCore`](mpn_sim::ServerCore) is transport-agnostic: a queue of
//! client-tagged requests, an engine tick, client-tagged responses.  This crate supplies the
//! transports — and nothing but the transports — on top of `std` alone (no external event
//! library; the readiness layer talks to `epoll`/`poll` directly in [`poll`]).
//!
//! # The three front-end paths
//!
//! All three produce **byte-identical downlinks for the same lock-step request trace**
//! (pinned by the workspace test `tests/mux_parity.rs`):
//!
//! 1. **In-process** — no transport at all: [`mpn_sim::MonitoringServer`] enqueues decoded
//!    requests and `process()`es on the caller's cadence.  What tests and `mpn-bench` use.
//! 2. **Blocking TCP** — [`serve_blocking`]: one OS thread per connection, whole-frame
//!    blocking reads, one engine tick per request, responses under the count-prefixed batch
//!    [`envelope`].  Simple and fine for a handful of sockets.
//! 3. **Multiplexed** — [`MuxServer`]: one event-loop thread, thousands of non-blocking
//!    sockets, one *shared* core.  Readiness events ([`poll::Poller`]) drive per-connection
//!    state machines ([`conn::Connection`]) whose incremental [`mpn_proto::FrameReader`]s
//!    reassemble frames across arbitrarily fragmented reads; decoded requests from every
//!    ready socket batch into the core, one engine tick runs per loop iteration, and each
//!    addressed client gets one enveloped batch written back through its outbox.
//!
//! # The backpressure contract
//!
//! A multiplexed client that stops draining its downlink is contained in two phases, sized
//! by [`MuxConfig`]:
//!
//! 1. **Pause** — once a connection's outbox exceeds `soft_outbox_limit`, the loop stops
//!    *reading* it (read interest is dropped).  The client can no longer submit work, so its
//!    sessions go quiet and the outbox stops growing from its own traffic; TCP flow control
//!    propagates the stall to the peer.  Reading resumes as soon as the outbox drains back
//!    under the soft limit.
//! 2. **Drop** — a paused connection can still accrue downlink from already-submitted epochs
//!    (inbox backlog).  If the outbox ever exceeds `hard_outbox_limit`, the connection is
//!    closed outright and [`disconnect`](mpn_sim::ServerCore::disconnect)ed from the core:
//!    its owned groups are deregistered and its queued requests dropped.  A slow reader is
//!    never allowed to hold unbounded server memory, and a vanished client never leaks live
//!    sessions.
//!
//! The same disconnect path runs on EOF, on undecodable uplink bytes (framing cannot be
//! resynchronised, so the connection is closed — requests decoded before the bad frame are
//! still honoured), and on socket errors.
//!
//! # The push path (server-initiated downlink)
//!
//! Since the mutable world landed, downlink is no longer purely reactive: an admin client's
//! [`Request::Admin`](mpn_proto::Request::Admin) world mutation (a POI insert or delete,
//! gated per client by [`grant_admin`](mpn_sim::ServerCore::grant_admin), reachable on a
//! running [`MuxServer`] via [`core_mut`](MuxServer::core_mut) between poll iterations) can
//! force safe-region recomputations for groups owned by clients that sent **nothing** this
//! tick.  No transport code changed for this: the core tags the resulting responses — a
//! [`Response::WorldUpdate`](mpn_proto::Response::WorldUpdate) announcing the new world
//! generation, then the revised `SafeRegion`s — with the affected owners, and the event
//! loop already envelopes one batch for *every* client with pending responses, idle or not.
//! An idle connection simply receives an unsolicited batch through its outbox, subject to
//! the exact same backpressure contract as solicited downlink (a paused client's pushes
//! accumulate toward its hard limit like any other traffic).  Delivery is pinned end to end
//! by the workspace test `tests/world_mutation.rs`.
//!
//! Per-client ordering guarantee: the owner of an affected group always sees the
//! `WorldUpdate` before the revised regions it announces, because the core queues the
//! announcement during request application and the recomputed regions drain from the
//! session event log only after the tick.

#![forbid(unsafe_op_in_unsafe_fn)]

pub mod blocking;
pub mod conn;
pub mod envelope;
pub mod mux;
pub mod poll;

pub use blocking::serve_blocking;
pub use conn::{CloseReason, Connection, ReadOutcome};
pub use envelope::{encode_batch, read_batch, write_batch};
pub use mux::{MuxConfig, MuxServer, MuxStats};
pub use poll::{Interest, PollEvent, Poller, Token};
