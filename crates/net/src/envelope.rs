//! The count-prefixed response batch envelope shared by every TCP front-end.
//!
//! One uplink request (or, on the multiplexed path, one engine tick addressing a client) is
//! answered with a 4-byte little-endian response count followed by that many encoded
//! [`Response`] frames.  The count makes quiet epochs observable: a client in lock-step can
//! block on the header and learn "zero notifications this epoch" instead of guessing from a
//! read timeout.  Both [`serve_blocking`](crate::serve_blocking) and
//! [`MuxServer`](crate::MuxServer) emit exactly this layout, which is what makes their
//! downlinks byte-identical for the same request trace.

use std::io::{self, Read, Write};

use mpn_proto::{read_frame, Response};

/// Appends one batch — `u32` little-endian count, then the encoded frames — to `out`.
///
/// # Panics
/// Panics if the batch exceeds `u32::MAX` responses (unreachable in practice: a tick's
/// response count is bounded by fleet size).
pub fn encode_batch(responses: &[Response], out: &mut Vec<u8>) {
    let count = u32::try_from(responses.len()).expect("batch fits u32");
    out.extend_from_slice(&count.to_le_bytes());
    for response in responses {
        response.encode(out);
    }
}

/// Writes one batch to a blocking stream.
///
/// # Errors
/// Propagates write errors.
pub fn write_batch(stream: &mut impl Write, responses: &[Response]) -> io::Result<()> {
    let mut wire = Vec::new();
    encode_batch(responses, &mut wire);
    stream.write_all(&wire)
}

/// Reads one batch (count header + frames) off a blocking stream — the client-side helper.
///
/// # Errors
/// `UnexpectedEof` when the stream closes mid-batch, `InvalidData` when a frame does not
/// decode as a downlink response, plus any underlying read error.
pub fn read_batch(stream: &mut impl Read) -> io::Result<Vec<Response>> {
    let mut count_bytes = [0u8; 4];
    stream.read_exact(&mut count_bytes)?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    let mut responses = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let frame = read_frame(stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "stream closed mid-batch")
        })?;
        let (response, _) = Response::decode(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        responses.push(response);
    }
    Ok(responses)
}
