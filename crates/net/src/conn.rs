//! The per-connection state machine of the multiplexed front-end.
//!
//! One [`Connection`] owns one non-blocking [`TcpStream`] and the two buffers that decouple
//! it from the shared engine:
//!
//! * **uplink** — raw readable bytes feed a [`FrameReader`]; whole decoded [`Request`]s pop
//!   out and go to the server core.  Partial frames park in the reader across any number of
//!   reads; a malformed/oversize frame is fatal for the connection (the stream cannot be
//!   resynchronised).
//! * **downlink** — encoded response bytes queue in an outbox and drain whenever the socket
//!   is writable.  The outbox level drives the **backpressure contract** (see the crate
//!   docs): above the soft limit the connection stops being read, above the hard limit it is
//!   dropped.
//!
//! The connection never talks to the engine itself; it only classifies what happened
//! ([`ReadOutcome`]) and lets the event loop decide.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use mpn_proto::{DecodeError, FrameReader, Request};
use mpn_sim::ClientId;

use crate::poll::{Interest, Token};

/// Why a connection must be closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed the stream (EOF) — the normal end of a session.
    Disconnected,
    /// The uplink byte stream does not decode (unknown tag, lying length, oversize frame,
    /// malformed payload): the framing is unrecoverable.
    Malformed,
    /// The peer stopped draining its downlink and the outbox crossed the hard limit.
    Backpressure,
    /// An I/O error other than `WouldBlock`/`Interrupted`.
    Error,
}

/// What one readable-event handling pass produced.
#[derive(Debug, Default)]
pub struct ReadOutcome {
    /// Whole requests decoded off the stream, in arrival order.
    pub requests: Vec<Request>,
    /// Set when the connection must be closed (requests decoded before the failure are still
    /// delivered — they were validly framed).
    pub close: Option<CloseReason>,
}

/// One multiplexed client connection.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    /// The poll registration of this connection.
    pub token: Token,
    /// The core-level identity (never reused, unlike tokens).
    pub client: ClientId,
    reader: FrameReader,
    outbox: Vec<u8>,
    /// Bytes of `outbox` already written to the socket.
    sent: usize,
    /// The interest currently registered with the poller (kept here so the loop only issues
    /// `reregister` syscalls on actual changes).
    pub interest: Interest,
    /// Whether reads are paused by backpressure (outbox above the soft limit).
    paused: bool,
}

impl Connection {
    /// Wraps an accepted stream (the caller has already made it non-blocking).
    pub fn new(stream: TcpStream, token: Token, client: ClientId) -> Self {
        Self {
            stream,
            token,
            client,
            reader: FrameReader::new(),
            outbox: Vec::new(),
            sent: 0,
            interest: Interest::READ,
            paused: false,
        }
    }

    /// The underlying stream (for fd registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Bytes queued for the peer and not yet written to the socket.
    #[must_use]
    pub fn outbox_len(&self) -> usize {
        self.outbox.len() - self.sent
    }

    /// Whether reads are currently paused by backpressure.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Handles a readable event: drains the socket into the frame reader and decodes every
    /// whole request.  Reading stops early (without consuming the socket dry) when the
    /// outbox is already above `soft_limit` — a client that does not drain its downlink does
    /// not get to keep filling the uplink.
    ///
    /// Returns the decoded requests plus an optional close verdict; `bytes_in` is
    /// incremented by the number of bytes consumed off the socket.
    pub fn handle_readable(&mut self, soft_limit: usize, bytes_in: &mut u64) -> ReadOutcome {
        let mut outcome = ReadOutcome::default();
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if self.outbox_len() > soft_limit {
                self.paused = true;
                break;
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    outcome.close = Some(CloseReason::Disconnected);
                    break;
                }
                Ok(n) => {
                    *bytes_in += n as u64;
                    self.reader.feed(&scratch[..n]);
                    loop {
                        match self.reader.next_request() {
                            Ok(Some(request)) => outcome.requests.push(request),
                            Ok(None) => break,
                            Err(DecodeError::Incomplete) => unreachable!("absorbed by FrameReader"),
                            Err(_) => {
                                outcome.close = Some(CloseReason::Malformed);
                                return outcome;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    outcome.close = Some(CloseReason::Error);
                    break;
                }
            }
        }
        outcome
    }

    /// Queues downlink bytes (already-encoded frames / envelope headers) for the peer.
    pub fn queue_write(&mut self, bytes: &[u8]) {
        self.outbox.extend_from_slice(bytes);
    }

    /// Writes as much of the outbox as the socket accepts right now.
    ///
    /// Returns `Ok(true)` when the outbox drained completely; `Err` means the connection is
    /// dead.  `bytes_out` is incremented by what was written.  Once the outbox falls back
    /// below `soft_limit` a paused connection resumes reading (the caller re-registers
    /// interest afterwards).
    pub fn flush(&mut self, soft_limit: usize, bytes_out: &mut u64) -> io::Result<bool> {
        while self.sent < self.outbox.len() {
            match self.stream.write(&self.outbox[self.sent..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.sent += n;
                    *bytes_out += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.sent == self.outbox.len() {
            self.outbox.clear();
            self.sent = 0;
        } else if self.sent >= 64 * 1024 {
            // Compact occasionally so a long-lived slow reader does not pin dead bytes.
            self.outbox.drain(..self.sent);
            self.sent = 0;
        }
        if self.paused && self.outbox_len() <= soft_limit {
            self.paused = false;
        }
        Ok(self.outbox_len() == 0)
    }

    /// The interest this connection wants right now: read unless paused, write while the
    /// outbox holds bytes.
    #[must_use]
    pub fn desired_interest(&self) -> Interest {
        Interest { read: !self.paused, write: self.outbox_len() > 0 }
    }
}
