//! The readiness-driven multiplexed front-end: one event loop, thousands of sockets, one
//! shared [`ServerCore`].
//!
//! [`MuxServer`] owns a non-blocking listener, a slab of [`Connection`]s keyed by poll
//! [`Token`], and the shared core.  One [`poll_once`](MuxServer::poll_once) iteration:
//!
//! 1. waits for readiness (accepts, reads, writes) under the caller's timeout;
//! 2. drains every readable socket through its incremental [`FrameReader`] state machine,
//!    enqueueing whole decoded requests into the core tagged with the connection's
//!    [`ClientId`] — partial frames simply park in the per-connection reader;
//! 3. if the core has work (queued requests, or inbox epochs from an earlier burst), runs
//!    **one** engine tick and routes the client-tagged responses back: each addressed
//!    connection gets one count-prefixed batch (the same envelope as the blocking path)
//!    queued in its outbox and flushed as far as the socket accepts.
//!
//! Closed, malformed and backpressured connections are deregistered from both the poller and
//! the core ([`ServerCore::disconnect`]), so a vanished client never leaks live sessions.
//! See the crate docs for the full backpressure contract.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use mpn_proto::Response;
use mpn_sim::{ClientId, ServerCore};

use crate::conn::{CloseReason, Connection};
use crate::envelope::encode_batch;
use crate::poll::{Interest, PollEvent, Poller, Token};

/// Tuning of the event loop's buffers and limits.
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// Outbox level above which a connection stops being read (backpressure, phase 1).
    pub soft_outbox_limit: usize,
    /// Outbox level above which a connection is dropped and deregistered (phase 2).
    pub hard_outbox_limit: usize,
    /// Accepted connections beyond this are closed immediately.
    pub max_connections: usize,
    /// When set, each accepted socket's kernel send buffer is pinned to roughly this many
    /// bytes ([`crate::poll::set_send_buffer`]), which also disables autotuning — at
    /// thousands of connections the multi-megabyte autotuned default dominates server
    /// memory, and an unpinned buffer absorbs a slow reader's downlink long before the
    /// outbox limits can act.
    pub socket_send_buffer: Option<usize>,
}

impl Default for MuxConfig {
    /// 256 KiB soft / 4 MiB hard outbox limits, 16k connections, default kernel buffers.
    fn default() -> Self {
        Self {
            soft_outbox_limit: 256 << 10,
            hard_outbox_limit: 4 << 20,
            max_connections: 16 * 1024,
            socket_send_buffer: None,
        }
    }
}

/// Lifetime counters of one event loop (all monotone).
#[derive(Debug, Clone, Copy, Default)]
pub struct MuxStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections the `max_connections` cap refused.
    pub rejected: u64,
    /// Connections closed by peer EOF.
    pub disconnected: u64,
    /// Connections closed over an undecodable uplink stream.
    pub closed_malformed: u64,
    /// Connections dropped by the hard backpressure limit.
    pub closed_backpressure: u64,
    /// Connections closed on I/O errors.
    pub closed_error: u64,
    /// Times a connection entered the read-paused (soft backpressure) state.
    pub paused: u64,
    /// Engine ticks run.
    pub ticks: u64,
    /// Requests decoded and enqueued.
    pub requests: u64,
    /// Responses encoded and queued.
    pub responses: u64,
    /// Bytes consumed off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

/// The poll token of the listener; connections use `slot + 1`.
const LISTENER: Token = Token(0);

/// Connection slab: slot-addressed storage with free-list reuse, `Token(slot + 1)` keys.
#[derive(Debug, Default)]
struct Slab {
    entries: Vec<Option<Connection>>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self, make: impl FnOnce(Token) -> Connection) -> Token {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.entries.push(None);
            self.entries.len() - 1
        });
        let token = Token(slot + 1);
        self.entries[slot] = Some(make(token));
        token
    }

    fn get_mut(&mut self, token: Token) -> Option<&mut Connection> {
        self.entries.get_mut(token.0.checked_sub(1)?)?.as_mut()
    }

    fn remove(&mut self, token: Token) -> Option<Connection> {
        let slot = token.0.checked_sub(1)?;
        let conn = self.entries.get_mut(slot)?.take()?;
        self.free.push(slot);
        Some(conn)
    }

    fn len(&self) -> usize {
        self.entries.len() - self.free.len()
    }
}

/// A multiplexed monitoring server: many clients, one event-loop thread, one shared engine.
#[derive(Debug)]
pub struct MuxServer {
    poller: Poller,
    listener: TcpListener,
    conns: Slab,
    /// Live client → connection token (client ids are never reused; tokens are).
    clients: HashMap<ClientId, Token>,
    core: ServerCore,
    config: MuxConfig,
    stats: MuxStats,
    next_client: ClientId,
    events: Vec<PollEvent>,
}

impl MuxServer {
    /// Binds a listener and wraps it around the given core.
    ///
    /// # Errors
    /// Propagates bind/poller-creation errors.
    pub fn bind(addr: impl ToSocketAddrs, core: ServerCore, config: MuxConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER, Interest::READ)?;
        Ok(Self {
            poller,
            listener,
            conns: Slab::default(),
            clients: HashMap::new(),
            core,
            config,
            stats: MuxStats::default(),
            // Client 0 is reserved for the in-process `MonitoringServer` convention.
            next_client: 1,
            events: Vec::new(),
        })
    }

    /// The bound listening address.
    ///
    /// # Errors
    /// Propagates the OS error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared server core (engine telemetry, fleet metrics).
    #[must_use]
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// Mutable access to the shared core, for out-of-band administration between poll
    /// iterations — above all [`grant_admin`](ServerCore::grant_admin): connections are
    /// numbered from 1 in accept order, so a deployment that connects its operator console
    /// first grants client 1 here before serving tenants.
    pub fn core_mut(&mut self) -> &mut ServerCore {
        &mut self.core
    }

    /// Lifetime event-loop counters.
    #[must_use]
    pub fn stats(&self) -> &MuxStats {
        &self.stats
    }

    /// Currently open connections.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Total downlink bytes buffered in connection outboxes (not yet accepted by the
    /// kernel) — the server-side memory the backpressure limits bound.
    #[must_use]
    pub fn outbox_bytes(&self) -> usize {
        self.conns.entries.iter().flatten().map(Connection::outbox_len).sum()
    }

    /// Runs one event-loop iteration: wait (up to `timeout`), service every ready socket,
    /// then — iff the core has work — run one engine tick and send the responses.
    ///
    /// Returns the number of readiness events serviced (0 = the wait timed out idle).
    ///
    /// # Errors
    /// Propagates unexpected poller/listener errors; per-connection I/O errors close that
    /// connection instead of failing the loop.
    pub fn poll_once(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        self.events.clear();
        self.poller.wait(&mut self.events, timeout)?;
        let events = std::mem::take(&mut self.events);
        for event in &events {
            if event.token == LISTENER {
                self.accept_ready()?;
            } else {
                self.service(event);
            }
        }
        self.events = events;
        if self.core.has_work() {
            self.tick();
        }
        Ok(self.events.len())
    }

    /// Drives the loop until `stop` is raised, polling at `interval`.
    ///
    /// # Errors
    /// Propagates [`poll_once`](MuxServer::poll_once) errors.
    pub fn run(&mut self, stop: &AtomicBool, interval: Duration) -> io::Result<()> {
        while !stop.load(Ordering::Relaxed) {
            self.poll_once(Some(interval))?;
        }
        Ok(())
    }

    /// Accepts every pending connection (the listener is level-triggered, but draining here
    /// saves wait round-trips under an accept burst).
    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.config.max_connections {
                        self.stats.rejected += 1;
                        drop(stream);
                        continue;
                    }
                    stream.set_nonblocking(true)?;
                    // Lock-step request/response traffic: never trade latency for Nagle.
                    let _ = stream.set_nodelay(true);
                    if let Some(bytes) = self.config.socket_send_buffer {
                        let _ = crate::poll::set_send_buffer(stream.as_raw_fd(), bytes);
                    }
                    let client = self.next_client;
                    self.next_client += 1;
                    let token = self.conns.insert(|token| Connection::new(stream, token, client));
                    let conn = self.conns.get_mut(token).expect("just inserted");
                    let fd = conn.stream().as_raw_fd();
                    self.poller.register(fd, token, conn.interest)?;
                    self.clients.insert(client, token);
                    self.stats.accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED &c) are skipped.
                Err(_) => return Ok(()),
            }
        }
    }

    /// Services one connection's readiness event.
    fn service(&mut self, event: &PollEvent) {
        let Some(conn) = self.conns.get_mut(event.token) else {
            return; // Already closed earlier in this iteration.
        };
        if event.readable || event.closed {
            let was_paused = conn.is_paused();
            let outcome =
                conn.handle_readable(self.config.soft_outbox_limit, &mut self.stats.bytes_in);
            if conn.is_paused() && !was_paused {
                self.stats.paused += 1;
            }
            let client = conn.client;
            self.stats.requests += outcome.requests.len() as u64;
            for request in outcome.requests {
                self.core.enqueue(client, request);
            }
            if let Some(reason) = outcome.close {
                self.close(event.token, reason);
                return;
            }
            if event.closed {
                // Error/hangup without data: read returned WouldBlock but the peer is gone.
                self.close(event.token, CloseReason::Error);
                return;
            }
        }
        if event.writable {
            self.flush_and_sync(event.token);
        } else {
            self.sync_interest(event.token);
        }
    }

    /// Runs one engine tick over the queued requests and routes the responses: one
    /// count-prefixed batch per addressed connection.
    fn tick(&mut self) {
        let output = self.core.process();
        self.stats.ticks += 1;
        self.stats.responses += output.responses.len() as u64;

        // One batch per client this tick: every client with an applied request answers
        // (possibly count 0 — a quiet epoch), plus any client whose sessions produced
        // events without a fresh request (burst uplink draining from the inbox).
        let mut batches: Vec<(ClientId, Vec<Response>)> = Vec::new();
        let mut index: HashMap<ClientId, usize> = HashMap::new();
        for &client in &output.applied {
            index.insert(client, batches.len());
            batches.push((client, Vec::new()));
        }
        for (client, response) in output.responses {
            let at = *index.entry(client).or_insert_with(|| {
                batches.push((client, Vec::new()));
                batches.len() - 1
            });
            batches[at].1.push(response);
        }

        let mut wire = Vec::new();
        for (client, responses) in batches {
            let Some(&token) = self.clients.get(&client) else {
                continue; // The client vanished mid-tick; its sessions are already gone.
            };
            wire.clear();
            encode_batch(&responses, &mut wire);
            if let Some(conn) = self.conns.get_mut(token) {
                conn.queue_write(&wire);
            }
            self.flush_and_sync(token);
        }
    }

    /// Flushes a connection's outbox, then applies the backpressure verdict and re-registers
    /// interest if it changed.
    fn flush_and_sync(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        match conn.flush(self.config.soft_outbox_limit, &mut self.stats.bytes_out) {
            Ok(_drained) => {
                if conn.outbox_len() > self.config.hard_outbox_limit {
                    self.close(token, CloseReason::Backpressure);
                } else {
                    self.sync_interest(token);
                }
            }
            Err(_) => self.close(token, CloseReason::Error),
        }
    }

    /// Re-registers a connection's poll interest when it differs from what is registered.
    fn sync_interest(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        let desired = conn.desired_interest();
        if desired != conn.interest {
            let fd = conn.stream().as_raw_fd();
            if self.poller.reregister(fd, token, desired).is_ok() {
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.interest = desired;
                }
            }
        }
    }

    /// Closes a connection: poller deregistration, slab removal, and core disconnect (owned
    /// groups are deregistered, queued requests dropped).
    fn close(&mut self, token: Token, reason: CloseReason) {
        let Some(conn) = self.conns.remove(token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream().as_raw_fd());
        self.clients.remove(&conn.client);
        self.core.disconnect(conn.client);
        match reason {
            CloseReason::Disconnected => self.stats.disconnected += 1,
            CloseReason::Malformed => self.stats.closed_malformed += 1,
            CloseReason::Backpressure => self.stats.closed_backpressure += 1,
            CloseReason::Error => self.stats.closed_error += 1,
        }
    }
}
