//! Free-space trajectory generators.
//!
//! Two generators are provided:
//!
//! * [`random_waypoint`] — the classic random-waypoint model (pick a destination uniformly,
//!   travel to it at a random speed, repeat).  Used as a simple baseline workload.
//! * [`taxi_trajectory`] — a hotspot-biased waypoint model standing in for the GeoLife taxi
//!   data set: destinations are drawn from a small set of urban hotspots, speeds vary per leg
//!   (traffic), and consecutive legs prefer bounded heading changes, which is the property the
//!   directed tile ordering exploits (Section 5.2, reference [26]).

use mpn_geom::{angle_diff, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trajectory::Trajectory;
use crate::{DEFAULT_DOMAIN, DEFAULT_SPEED_LIMIT, DEFAULT_TIMESTAMPS};

/// Configuration of the plain random-waypoint generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointConfig {
    /// Side length of the square domain.
    pub domain: f64,
    /// Maximum speed `V` in domain units per timestamp.
    pub speed_limit: f64,
    /// Number of timestamps to generate.
    pub timestamps: usize,
}

impl Default for WaypointConfig {
    fn default() -> Self {
        Self {
            domain: DEFAULT_DOMAIN,
            speed_limit: DEFAULT_SPEED_LIMIT,
            timestamps: DEFAULT_TIMESTAMPS,
        }
    }
}

/// Configuration of the taxi-like (GeoLife substitute) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxiConfig {
    /// Side length of the square domain.
    pub domain: f64,
    /// Maximum speed `V` in domain units per timestamp.
    pub speed_limit: f64,
    /// Number of timestamps to generate.
    pub timestamps: usize,
    /// Number of hotspots (popular destinations) in the city.
    pub hotspots: usize,
    /// Standard deviation around a hotspot when picking a destination, as a domain fraction.
    pub hotspot_spread: f64,
    /// Maximum heading change between consecutive legs, in radians.
    pub max_turn: f64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        Self {
            domain: DEFAULT_DOMAIN,
            speed_limit: DEFAULT_SPEED_LIMIT,
            timestamps: DEFAULT_TIMESTAMPS,
            hotspots: 12,
            hotspot_spread: 0.04,
            max_turn: std::f64::consts::FRAC_PI_3,
        }
    }
}

/// Generates one random-waypoint trajectory.
#[must_use]
pub fn random_waypoint(config: &WaypointConfig, seed: u64) -> Trajectory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(config.timestamps);
    let mut pos = uniform_point(&mut rng, config.domain);
    let mut dest = uniform_point(&mut rng, config.domain);
    let mut speed = leg_speed(&mut rng, config.speed_limit);
    points.push(pos);
    while points.len() < config.timestamps.max(2) {
        if pos.dist(dest) <= speed {
            pos = dest;
            dest = uniform_point(&mut rng, config.domain);
            speed = leg_speed(&mut rng, config.speed_limit);
        } else if let Some(dir) = pos.direction_to(dest) {
            pos = pos + dir * speed;
        }
        points.push(pos);
    }
    Trajectory::new(points)
}

/// Generates one taxi-like trajectory (GeoLife substitute).
#[must_use]
pub fn taxi_trajectory(config: &TaxiConfig, seed: u64) -> Trajectory {
    let mut rng = StdRng::seed_from_u64(seed);
    let hotspots: Vec<Point> =
        (0..config.hotspots.max(1)).map(|_| uniform_point(&mut rng, config.domain)).collect();
    let sigma = config.hotspot_spread * config.domain;

    let mut points = Vec::with_capacity(config.timestamps);
    let mut pos = near_hotspot(&mut rng, &hotspots, sigma, config.domain);
    let mut dest = near_hotspot(&mut rng, &hotspots, sigma, config.domain);
    let mut speed = leg_speed(&mut rng, config.speed_limit);
    let mut last_heading: Option<f64> = None;
    points.push(pos);
    while points.len() < config.timestamps.max(2) {
        if pos.dist(dest) <= speed {
            // Arrive this timestamp, then pick the next destination for subsequent steps.
            pos = dest;
            // Prefer a destination reachable without a sharp turn, retrying a few times.
            let mut best = near_hotspot(&mut rng, &hotspots, sigma, config.domain);
            if let Some(h) = last_heading {
                for _ in 0..8 {
                    if let Some(dir) = pos.direction_to(best) {
                        if angle_diff(dir.y.atan2(dir.x), h) <= config.max_turn {
                            break;
                        }
                    }
                    best = near_hotspot(&mut rng, &hotspots, sigma, config.domain);
                }
            }
            dest = best;
            speed = leg_speed(&mut rng, config.speed_limit);
        } else if let Some(dir) = pos.direction_to(dest) {
            last_heading = Some(dir.y.atan2(dir.x));
            pos = pos + dir * speed.min(pos.dist(dest));
        }
        points.push(pos);
    }
    Trajectory::new(points)
}

fn uniform_point<R: Rng>(rng: &mut R, domain: f64) -> Point {
    Point::new(rng.gen_range(0.0..=domain), rng.gen_range(0.0..=domain))
}

fn near_hotspot<R: Rng>(rng: &mut R, hotspots: &[Point], sigma: f64, domain: f64) -> Point {
    let centre = hotspots[rng.gen_range(0..hotspots.len())];
    let (dx, dy) = (gaussian(rng) * sigma, gaussian(rng) * sigma);
    Point::new((centre.x + dx).clamp(0.0, domain), (centre.y + dy).clamp(0.0, domain))
}

fn leg_speed<R: Rng>(rng: &mut R, limit: f64) -> f64 {
    // Traffic: each leg runs somewhere between 30% and 100% of the speed limit.
    rng.gen_range(0.3..=1.0) * limit
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_waypoint_respects_speed_and_domain() {
        let config = WaypointConfig { domain: 1000.0, speed_limit: 5.0, timestamps: 2000 };
        let t = random_waypoint(&config, 17);
        assert_eq!(t.len(), 2000);
        assert!(t.max_step() <= 5.0 + 1e-9);
        assert!(t
            .points()
            .iter()
            .all(|p| (0.0..=1000.0).contains(&p.x) && (0.0..=1000.0).contains(&p.y)));
        // Reproducibility.
        assert_eq!(t, random_waypoint(&config, 17));
        assert_ne!(t, random_waypoint(&config, 18));
    }

    #[test]
    fn taxi_trajectory_respects_speed_and_domain() {
        let config = TaxiConfig {
            domain: 1000.0,
            speed_limit: 8.0,
            timestamps: 3000,
            ..TaxiConfig::default()
        };
        let t = taxi_trajectory(&config, 4);
        assert_eq!(t.len(), 3000);
        assert!(t.max_step() <= 8.0 + 1e-9);
        assert!(t
            .points()
            .iter()
            .all(|p| (0.0..=1000.0).contains(&p.x) && (0.0..=1000.0).contains(&p.y)));
        // The taxi must actually move around (not be stationary).
        assert!(t.arc_length() > 100.0);
    }

    #[test]
    fn taxi_headings_change_gradually_most_of_the_time() {
        let config = TaxiConfig {
            domain: 1000.0,
            speed_limit: 6.0,
            timestamps: 4000,
            ..TaxiConfig::default()
        };
        let t = taxi_trajectory(&config, 21);
        let mut moves = 0usize;
        let mut smooth = 0usize;
        let pts = t.points();
        for w in pts.windows(3) {
            let h1 = mpn_geom::heading(w[0], w[1]);
            let h2 = mpn_geom::heading(w[1], w[2]);
            if let (Some(a), Some(b)) = (h1, h2) {
                moves += 1;
                if angle_diff(a, b) <= config.max_turn + 1e-9 {
                    smooth += 1;
                }
            }
        }
        assert!(moves > 1000);
        // Temporal heading correlation: the overwhelming majority of consecutive displacements
        // deviate by at most max_turn (the property the directed ordering relies on).
        assert!(
            smooth as f64 / moves as f64 > 0.9,
            "only {smooth}/{moves} steps had bounded heading change"
        );
    }

    #[test]
    fn taxi_visits_multiple_hotspot_areas() {
        let config = TaxiConfig { domain: 1000.0, timestamps: 5000, ..TaxiConfig::default() };
        let t = taxi_trajectory(&config, 33);
        // Coarse 5x5 occupancy: a hotspot-driven taxi covers several distinct cells but not
        // necessarily the whole city.
        let mut cells = std::collections::HashSet::new();
        for p in t.points() {
            cells.insert((((p.x / 200.0) as i32).min(4), ((p.y / 200.0) as i32).min(4)));
        }
        assert!(cells.len() >= 3, "taxi should visit several areas, saw {}", cells.len());
    }

    #[test]
    fn tiny_timestamp_counts_still_produce_valid_trajectories() {
        let t = random_waypoint(&WaypointConfig { timestamps: 1, ..WaypointConfig::default() }, 0);
        assert_eq!(t.len(), 2);
        let t2 = taxi_trajectory(&TaxiConfig { timestamps: 0, ..TaxiConfig::default() }, 0);
        assert_eq!(t2.len(), 2);
    }
}
