//! Point-of-interest data-set generators.
//!
//! The paper indexes a real set of 21,287 POIs; these generators produce synthetic sets with
//! controllable size and skew.  The clustered generator mimics the skew of real POI data
//! (restaurants and cafes concentrate in urban centres) by drawing points from a Gaussian
//! mixture whose component centres are themselves uniform in the domain.

use mpn_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the clustered POI generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoiConfig {
    /// Number of POIs to generate.
    pub count: usize,
    /// Side length of the square domain.
    pub domain: f64,
    /// Number of Gaussian clusters ("city centres").
    pub clusters: usize,
    /// Standard deviation of each cluster, as a fraction of the domain side.
    pub spread: f64,
    /// Fraction of POIs drawn uniformly instead of from a cluster (background noise).
    pub uniform_fraction: f64,
}

impl Default for PoiConfig {
    fn default() -> Self {
        Self {
            count: crate::DEFAULT_POI_COUNT,
            domain: crate::DEFAULT_DOMAIN,
            clusters: 24,
            spread: 0.03,
            uniform_fraction: 0.2,
        }
    }
}

/// Generates `count` POIs uniformly distributed over the square `[0, domain]²`.
#[must_use]
pub fn uniform_pois(count: usize, domain: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Point::new(rng.gen_range(0.0..=domain), rng.gen_range(0.0..=domain)))
        .collect()
}

/// Generates a clustered POI data set according to `config`.
///
/// The same seed always produces the same data set, so experiments are reproducible.
#[must_use]
pub fn clustered_pois(config: &PoiConfig, seed: u64) -> Vec<Point> {
    assert!(config.domain > 0.0, "domain must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters = config.clusters.max(1);
    let centres: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.gen_range(0.0..=config.domain), rng.gen_range(0.0..=config.domain)))
        .collect();
    let sigma = config.spread * config.domain;
    (0..config.count)
        .map(|_| {
            if rng.gen::<f64>() < config.uniform_fraction {
                Point::new(rng.gen_range(0.0..=config.domain), rng.gen_range(0.0..=config.domain))
            } else {
                let centre = centres[rng.gen_range(0..clusters)];
                let p = Point::new(
                    centre.x + gaussian(&mut rng) * sigma,
                    centre.y + gaussian(&mut rng) * sigma,
                );
                clamp_to_domain(p, config.domain)
            }
        })
        .collect()
}

/// Keeps a deterministic fraction of the data set (used by the "vary data size n" experiments,
/// which evaluate `0.25 N`, `0.5 N`, `0.75 N` and `1.0 N`).
#[must_use]
pub fn subsample(pois: &[Point], fraction: f64, seed: u64) -> Vec<Point> {
    let fraction = fraction.clamp(0.0, 1.0);
    let target = ((pois.len() as f64) * fraction).round() as usize;
    if target >= pois.len() {
        return pois.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..pois.len()).collect();
    // Partial Fisher-Yates: the first `target` positions end up with a uniform sample.
    for i in 0..target {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    indices.truncate(target);
    indices.sort_unstable();
    indices.into_iter().map(|i| pois[i]).collect()
}

/// Standard normal sample via the Box-Muller transform (keeps the dependency set minimal).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn clamp_to_domain(p: Point, domain: f64) -> Point {
    Point::new(p.x.clamp(0.0, domain), p.y.clamp(0.0, domain))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_pois_stay_in_the_domain_and_are_reproducible() {
        let a = uniform_pois(500, 100.0, 42);
        let b = uniform_pois(500, 100.0, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|p| (0.0..=100.0).contains(&p.x) && (0.0..=100.0).contains(&p.y)));
        let c = uniform_pois(500, 100.0, 43);
        assert_ne!(a, c, "different seeds must give different data");
    }

    #[test]
    fn clustered_pois_are_skewed() {
        let config = PoiConfig {
            count: 4000,
            clusters: 4,
            spread: 0.02,
            uniform_fraction: 0.0,
            domain: 1000.0,
        };
        let pois = clustered_pois(&config, 7);
        assert_eq!(pois.len(), 4000);
        assert!(pois.iter().all(|p| (0.0..=1000.0).contains(&p.x)));
        // Skew check: split the domain into a 10x10 grid; a clustered set concentrates most
        // points into a few cells, unlike a uniform set.
        let mut cells = vec![0usize; 100];
        for p in &pois {
            let cx = ((p.x / 100.0) as usize).min(9);
            let cy = ((p.y / 100.0) as usize).min(9);
            cells[cy * 10 + cx] += 1;
        }
        let occupied = cells.iter().filter(|&&c| c > 0).count();
        assert!(occupied < 60, "clustered POIs should not cover most grid cells ({occupied})");
        let max_cell = cells.iter().max().copied().unwrap_or(0);
        assert!(max_cell > 4000 / 20, "some cell should hold a large share of the POIs");
    }

    #[test]
    fn clustered_with_full_uniform_fraction_behaves_like_uniform() {
        let config =
            PoiConfig { count: 2000, uniform_fraction: 1.0, domain: 500.0, ..PoiConfig::default() };
        let pois = clustered_pois(&config, 3);
        let mut cells = [0usize; 25];
        for p in &pois {
            let cx = ((p.x / 100.0) as usize).min(4);
            let cy = ((p.y / 100.0) as usize).min(4);
            cells[cy * 5 + cx] += 1;
        }
        assert!(cells.iter().all(|&c| c > 0), "uniform data should touch every coarse cell");
    }

    #[test]
    fn subsample_sizes_and_determinism() {
        let pois = uniform_pois(1000, 50.0, 1);
        for fraction in [0.25, 0.5, 0.75, 1.0] {
            let s = subsample(&pois, fraction, 9);
            assert_eq!(s.len(), (1000.0 * fraction) as usize);
            // Every sampled point must come from the original set.
            assert!(s.iter().all(|p| pois.contains(p)));
        }
        assert_eq!(subsample(&pois, 0.5, 9), subsample(&pois, 0.5, 9));
        assert_eq!(subsample(&pois, 2.0, 9).len(), 1000);
        assert!(subsample(&pois, 0.0, 9).is_empty());
    }

    #[test]
    fn gaussian_samples_have_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }
}
