//! Network-based trajectory generation (Brinkhoff-style, the "Oldenburg" substitute).
//!
//! Brinkhoff's generator moves objects along the edges of a real road network.  This module
//! builds a synthetic road network — a perturbed grid with a fraction of edges removed and a
//! few diagonal shortcuts added — and moves objects along shortest paths between randomly
//! chosen nodes, at per-object speed classes.  The resulting trajectories exhibit the
//! properties the safe-region algorithms are sensitive to: piecewise-straight movement, turns
//! at intersections, and heterogeneous speeds.

use std::collections::BinaryHeap;

use mpn_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trajectory::Trajectory;
use crate::{DEFAULT_DOMAIN, DEFAULT_SPEED_LIMIT, DEFAULT_TIMESTAMPS};

/// Configuration of the synthetic road network and of the objects moving on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Side length of the square domain.
    pub domain: f64,
    /// Number of grid nodes per side (the network has roughly `grid²` nodes).
    pub grid: usize,
    /// Random perturbation of node positions, as a fraction of the grid cell size.
    pub jitter: f64,
    /// Fraction of grid edges removed (dead ends, rivers, …).
    pub removal_fraction: f64,
    /// Number of extra diagonal shortcut edges added.
    pub shortcuts: usize,
    /// Maximum object speed `V` in domain units per timestamp.
    pub speed_limit: f64,
    /// Number of timestamps per trajectory.
    pub timestamps: usize,
    /// Number of speed classes (Brinkhoff's vehicle classes); class `c` travels at
    /// `(c + 1) / classes · V`.
    pub speed_classes: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            domain: DEFAULT_DOMAIN,
            grid: 24,
            jitter: 0.3,
            removal_fraction: 0.12,
            shortcuts: 40,
            speed_limit: DEFAULT_SPEED_LIMIT,
            timestamps: DEFAULT_TIMESTAMPS,
            speed_classes: 4,
        }
    }
}

/// A synthetic road network: nodes with planar coordinates and undirected weighted edges.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    /// Adjacency list: `adjacency[u]` holds `(v, length)` pairs.
    adjacency: Vec<Vec<(usize, f64)>>,
    config: NetworkConfig,
}

impl RoadNetwork {
    /// Generates a road network from the configuration (deterministic per seed).
    #[must_use]
    pub fn generate(config: &NetworkConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.grid.max(2);
        let cell = config.domain / (n - 1) as f64;

        let mut nodes = Vec::with_capacity(n * n);
        for iy in 0..n {
            for ix in 0..n {
                let jx = (rng.gen::<f64>() - 0.5) * 2.0 * config.jitter * cell;
                let jy = (rng.gen::<f64>() - 0.5) * 2.0 * config.jitter * cell;
                nodes.push(Point::new(
                    (ix as f64 * cell + jx).clamp(0.0, config.domain),
                    (iy as f64 * cell + jy).clamp(0.0, config.domain),
                ));
            }
        }

        let mut network = Self { nodes, adjacency: vec![Vec::new(); n * n], config: *config };
        let index = |ix: usize, iy: usize| iy * n + ix;

        // Grid edges, with a fraction removed.
        for iy in 0..n {
            for ix in 0..n {
                if ix + 1 < n && rng.gen::<f64>() >= config.removal_fraction {
                    network.add_edge(index(ix, iy), index(ix + 1, iy));
                }
                if iy + 1 < n && rng.gen::<f64>() >= config.removal_fraction {
                    network.add_edge(index(ix, iy), index(ix, iy + 1));
                }
            }
        }
        // Diagonal shortcuts.
        for _ in 0..config.shortcuts {
            let ix = rng.gen_range(0..n - 1);
            let iy = rng.gen_range(0..n - 1);
            network.add_edge(index(ix, iy), index(ix + 1, iy + 1));
        }
        // Guarantee full connectivity.  The removal pass above can leave whole disjoint
        // components behind (not just degree-0 nodes), and with `removal_fraction >= 1.0`
        // and no shortcuts *every* node starts isolated — a zero-edge network on which
        // every shortest-path query fails.  Bridge everything into node 0's component.
        network.connect_components();
        network
    }

    /// Bridges every component disconnected from node 0 into one connected network.
    ///
    /// BFS from node 0 marks the reached set; while any node is unreached, the unreached
    /// node closest to the reached set is bridged to its nearest reached node and its whole
    /// component is flooded in.  This is a Prim-style pass — deterministic (distance ties
    /// break on the lowest node index), uses no randomness (so the generator's RNG stream is
    /// untouched), and O(n²) total regardless of how fragmented the edge pass left the grid.
    fn connect_components(&mut self) {
        let n = self.nodes.len();
        if n == 0 {
            return;
        }
        let mut reached = vec![false; n];
        // `closest[v]`: for an unreached `v`, the nearest reached node and its distance,
        // relaxed as nodes join the reached set.
        let mut closest: Vec<(f64, usize)> = vec![(f64::INFINITY, usize::MAX); n];
        let mut frontier = vec![0usize];
        reached[0] = true;
        loop {
            // Flood the newly attached component, relaxing the remaining unreached nodes.
            while let Some(u) = frontier.pop() {
                for &(v, _) in &self.adjacency[u] {
                    if !reached[v] {
                        reached[v] = true;
                        frontier.push(v);
                    }
                }
                for v in 0..n {
                    if !reached[v] {
                        let d = self.nodes[v].dist(self.nodes[u]);
                        if d < closest[v].0 {
                            closest[v] = (d, u);
                        }
                    }
                }
            }
            let Some(next) = (0..n)
                .filter(|&v| !reached[v])
                .min_by(|&a, &b| closest[a].0.total_cmp(&closest[b].0))
            else {
                break;
            };
            self.add_edge(next, closest[next].1);
            reached[next] = true;
            frontier.push(next);
        }
    }

    fn add_edge(&mut self, a: usize, b: usize) {
        if a == b || self.adjacency[a].iter().any(|(v, _)| *v == b) {
            return;
        }
        let len = self.nodes[a].dist(self.nodes[b]).max(1e-9);
        self.adjacency[a].push((b, len));
        self.adjacency[b].push((a, len));
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Coordinates of a node.
    #[must_use]
    pub fn node(&self, id: usize) -> Point {
        self.nodes[id]
    }

    /// Shortest path between two nodes (Dijkstra).  Returns the node sequence including both
    /// endpoints, or `None` when they are disconnected.
    #[must_use]
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        #[derive(PartialEq)]
        struct Item(f64, usize);
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.total_cmp(&self.0) // min-heap
            }
        }

        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(Item(0.0, from));
        while let Some(Item(d, u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == to {
                break;
            }
            for &(v, w) in &self.adjacency[u] {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(Item(nd, v));
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Generates one network-constrained trajectory for an object of the given speed class.
    ///
    /// The object repeatedly picks a random reachable destination node, follows the shortest
    /// path to it at its class speed, and continues until `timestamps` locations are produced.
    #[must_use]
    pub fn trajectory(&self, seed: u64, speed_class: usize) -> Trajectory {
        let config = &self.config;
        let classes = config.speed_classes.max(1);
        let class = speed_class % classes;
        let speed = config.speed_limit * (class + 1) as f64 / classes as f64;

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(17));
        let mut points = Vec::with_capacity(config.timestamps);
        let mut current = rng.gen_range(0..self.nodes.len());
        let mut pos = self.nodes[current];
        points.push(pos);

        let mut path: Vec<usize> = Vec::new();
        let mut path_idx = 0usize;
        while points.len() < config.timestamps.max(2) {
            if path_idx >= path.len() {
                // Pick a new reachable destination.
                let mut attempts = 0;
                loop {
                    let dest = rng.gen_range(0..self.nodes.len());
                    attempts += 1;
                    if dest != current {
                        if let Some(p) = self.shortest_path(current, dest) {
                            path = p;
                            path_idx = 1; // path[0] == current
                            break;
                        }
                    }
                    if attempts > 50 {
                        // Extremely fragmented network: stay put for this step.
                        path = vec![current];
                        path_idx = 1;
                        break;
                    }
                }
            }
            let target_node = path.get(path_idx).copied().unwrap_or(current);
            let target = self.nodes[target_node];
            let step = speed.min(config.speed_limit);
            if pos.dist(target) <= step {
                pos = target;
                current = target_node;
                path_idx += 1;
            } else if let Some(dir) = pos.direction_to(target) {
                pos = pos + dir * step;
            } else {
                path_idx += 1;
            }
            points.push(pos);
        }
        Trajectory::new(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> NetworkConfig {
        NetworkConfig {
            domain: 1000.0,
            grid: 10,
            timestamps: 1500,
            speed_limit: 10.0,
            ..NetworkConfig::default()
        }
    }

    #[test]
    fn network_generation_is_deterministic_and_connected_enough() {
        let config = small_config();
        let a = RoadNetwork::generate(&config, 5);
        let b = RoadNetwork::generate(&config, 5);
        assert_eq!(a.node_count(), 100);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a.edge_count() > 100, "a 10x10 grid keeps most of its ~180 edges");
        // No isolated nodes after the connectivity pass.
        for v in 0..a.node_count() {
            assert!(!a.adjacency[v].is_empty(), "node {v} is isolated");
        }
    }

    #[test]
    fn shortest_paths_are_consistent() {
        let net = RoadNetwork::generate(&small_config(), 9);
        let path = net.shortest_path(0, net.node_count() - 1);
        if let Some(path) = path {
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().unwrap(), net.node_count() - 1);
            // Consecutive path nodes must be adjacent.
            for w in path.windows(2) {
                assert!(net.adjacency[w[0]].iter().any(|(v, _)| *v == w[1]));
            }
        }
        // A node is trivially reachable from itself.
        assert_eq!(net.shortest_path(3, 3), Some(vec![3]));
    }

    #[test]
    fn trajectories_follow_the_speed_class_and_stay_in_the_domain() {
        let net = RoadNetwork::generate(&small_config(), 2);
        for class in 0..4 {
            let t = net.trajectory(100 + class as u64, class);
            assert_eq!(t.len(), 1500);
            let class_speed = 10.0 * (class + 1) as f64 / 4.0;
            assert!(t.max_step() <= class_speed + 1e-9, "class {class} exceeded its speed");
            assert!(t
                .points()
                .iter()
                .all(|p| (0.0..=1000.0).contains(&p.x) && (0.0..=1000.0).contains(&p.y)));
        }
    }

    #[test]
    fn faster_classes_cover_more_ground() {
        let net = RoadNetwork::generate(&small_config(), 2);
        let slow = net.trajectory(7, 0);
        let fast = net.trajectory(7, 3);
        assert!(fast.arc_length() > slow.arc_length());
    }

    #[test]
    fn trajectories_turn_at_nodes_not_in_free_space() {
        // Network movement is piecewise straight: between turns the displacement direction is
        // constant.  Count the direction changes; they should be far fewer than the steps.
        let net = RoadNetwork::generate(&small_config(), 4);
        let t = net.trajectory(11, 2);
        let pts = t.points();
        let mut turns = 0;
        let mut moves = 0;
        for w in pts.windows(3) {
            let h1 = mpn_geom::heading(w[0], w[1]);
            let h2 = mpn_geom::heading(w[1], w[2]);
            if let (Some(a), Some(b)) = (h1, h2) {
                moves += 1;
                if mpn_geom::angle_diff(a, b) > 1e-6 {
                    turns += 1;
                }
            }
        }
        assert!(moves > 500);
        assert!(
            (turns as f64) < 0.5 * moves as f64,
            "network movement should be mostly straight ({turns}/{moves} turns)"
        );
    }
}
