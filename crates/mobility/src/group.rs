//! User groups: bundles of trajectories monitored together.
//!
//! The paper partitions each 60-trajectory data set into 10 user groups and reports averages
//! over the groups.  [`GroupWorkload`] holds a full workload (every group plus the POI set
//! metadata is handled elsewhere), and [`partition_into_groups`] reproduces the partitioning.

use mpn_geom::Point;

use crate::trajectory::Trajectory;

/// A set of user groups sharing the same data-set parameters.
#[derive(Debug, Clone)]
pub struct GroupWorkload {
    groups: Vec<Vec<Trajectory>>,
}

impl GroupWorkload {
    /// Builds a workload from pre-partitioned groups.
    ///
    /// # Panics
    /// Panics when any group is empty.
    #[must_use]
    pub fn new(groups: Vec<Vec<Trajectory>>) -> Self {
        assert!(groups.iter().all(|g| !g.is_empty()), "groups must be non-empty");
        Self { groups }
    }

    /// Number of groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The trajectories of one group.
    #[must_use]
    pub fn group(&self, idx: usize) -> &[Trajectory] {
        &self.groups[idx]
    }

    /// Iterates over all groups.
    pub fn iter(&self) -> impl Iterator<Item = &[Trajectory]> {
        self.groups.iter().map(Vec::as_slice)
    }

    /// The locations of one group's members at a given timestamp.
    #[must_use]
    pub fn locations_at(&self, group: usize, t: usize) -> Vec<Point> {
        self.groups[group].iter().map(|traj| traj.at(t)).collect()
    }

    /// The shortest trajectory length across all groups (the usable monitoring horizon).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.groups.iter().flat_map(|g| g.iter().map(Trajectory::len)).min().unwrap_or(0)
    }

    /// Applies the speed-scaling procedure to every trajectory (Section 7.2) and returns the
    /// scaled workload.
    #[must_use]
    pub fn scale_speed(&self, fraction: f64, samples: usize) -> GroupWorkload {
        GroupWorkload {
            groups: self
                .groups
                .iter()
                .map(|g| g.iter().map(|t| t.scale_speed(fraction, samples)).collect())
                .collect(),
        }
    }
}

/// Partitions `trajectories` into groups of `group_size` consecutive members, dropping any
/// remainder that cannot form a complete group (mirroring the paper's 60-trajectory → 10-group
/// partitioning for `m = 6`).
#[must_use]
pub fn partition_into_groups(trajectories: Vec<Trajectory>, group_size: usize) -> GroupWorkload {
    assert!(group_size >= 1, "group size must be at least 1");
    let complete = trajectories.len() / group_size;
    let mut groups = Vec::with_capacity(complete);
    let mut iter = trajectories.into_iter();
    for _ in 0..complete {
        groups.push(iter.by_ref().take(group_size).collect());
    }
    GroupWorkload::new(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(offset: f64, len: usize) -> Trajectory {
        Trajectory::new((0..len).map(|i| Point::new(offset + i as f64, offset)).collect())
    }

    #[test]
    fn partitioning_makes_complete_groups_and_drops_the_remainder() {
        let trajectories: Vec<Trajectory> = (0..14).map(|i| traj(f64::from(i), 50)).collect();
        let workload = partition_into_groups(trajectories, 4);
        assert_eq!(workload.group_count(), 3);
        for g in workload.iter() {
            assert_eq!(g.len(), 4);
        }
        // Members stay in input order: the first group holds offsets 0..4.
        assert_eq!(workload.group(0)[0].at(0), Point::new(0.0, 0.0));
        assert_eq!(workload.group(0)[3].at(0), Point::new(3.0, 3.0));
    }

    #[test]
    fn locations_at_returns_one_point_per_member() {
        let workload = partition_into_groups((0..6).map(|i| traj(f64::from(i), 30)).collect(), 3);
        let locs = workload.locations_at(1, 10);
        assert_eq!(locs.len(), 3);
        assert_eq!(locs[0], Point::new(13.0, 3.0));
    }

    #[test]
    fn horizon_is_the_shortest_trajectory() {
        let workload =
            GroupWorkload::new(vec![vec![traj(0.0, 100), traj(1.0, 80)], vec![traj(2.0, 90)]]);
        assert_eq!(workload.horizon(), 80);
    }

    #[test]
    fn speed_scaling_applies_to_every_member() {
        let workload = partition_into_groups((0..4).map(|i| traj(f64::from(i), 101)).collect(), 2);
        let scaled = workload.scale_speed(0.5, 101);
        assert_eq!(scaled.group_count(), 2);
        for g in scaled.iter() {
            for t in g {
                assert_eq!(t.len(), 101);
                assert!((t.mean_step() - 0.5).abs() < 0.02);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_groups_are_rejected() {
        let _ = GroupWorkload::new(vec![vec![]]);
    }
}
