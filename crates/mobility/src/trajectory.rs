//! Trajectories: sequences of user locations sampled at uniform timestamps.
//!
//! Besides the container itself this module implements the *speed scaling* procedure of the
//! "effect of user speed" experiment (Section 7.2): to simulate a user travelling at `x · V`,
//! the paper keeps the trajectory segments of the first `x` fraction of timestamps and
//! resamples 10,000 locations uniformly (by arc length) over them.

use mpn_geom::Point;

/// A trajectory: one location per timestamp, at a fixed sampling interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    points: Vec<Point>,
}

impl Trajectory {
    /// Wraps a sequence of locations.
    ///
    /// # Panics
    /// Panics when fewer than two locations are supplied — a trajectory needs movement.
    #[must_use]
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "a trajectory needs at least two locations");
        Self { points }
    }

    /// Number of timestamps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Trajectories are never empty (the constructor enforces ≥ 2 points).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Location at a timestamp.
    #[must_use]
    pub fn at(&self, t: usize) -> Point {
        self.points[t.min(self.points.len() - 1)]
    }

    /// All locations.
    #[must_use]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Total travelled distance (sum of segment lengths).
    #[must_use]
    pub fn arc_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(w[1])).sum()
    }

    /// Maximum per-timestamp displacement (the effective speed of the trajectory).
    #[must_use]
    pub fn max_step(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(w[1])).fold(0.0, f64::max)
    }

    /// Average per-timestamp displacement.
    #[must_use]
    pub fn mean_step(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        self.arc_length() / (self.points.len() - 1) as f64
    }

    /// Resamples the trajectory to `samples` locations spaced uniformly by arc length.
    ///
    /// Stationary trajectories (zero arc length) are resampled to repetitions of the first
    /// location.
    #[must_use]
    pub fn resample(&self, samples: usize) -> Trajectory {
        let samples = samples.max(2);
        let total = self.arc_length();
        if total <= f64::EPSILON {
            return Trajectory::new(vec![self.points[0]; samples]);
        }
        let mut out = Vec::with_capacity(samples);
        let step = total / (samples - 1) as f64;
        let mut seg = 0usize;
        let mut seg_start_len = 0.0;
        let mut seg_len = self.points[0].dist(self.points[1]);
        for i in 0..samples {
            let target = step * i as f64;
            while seg + 2 < self.points.len() && seg_start_len + seg_len < target - 1e-12 {
                seg_start_len += seg_len;
                seg += 1;
                seg_len = self.points[seg].dist(self.points[seg + 1]);
            }
            let t = if seg_len <= f64::EPSILON {
                0.0
            } else {
                ((target - seg_start_len) / seg_len).clamp(0.0, 1.0)
            };
            out.push(self.points[seg].lerp(self.points[seg + 1], t));
        }
        Trajectory::new(out)
    }

    /// Speed scaling as described in Section 7.2: keep the first `fraction` of the timestamps
    /// and resample `samples` locations uniformly over those segments.  The resulting
    /// trajectory covers less ground in the same number of timestamps, i.e. the user moves at
    /// `fraction · V`.
    #[must_use]
    pub fn scale_speed(&self, fraction: f64, samples: usize) -> Trajectory {
        let fraction = fraction.clamp(0.0, 1.0);
        let keep = ((self.points.len() as f64) * fraction).round() as usize;
        let keep = keep.clamp(2, self.points.len());
        Trajectory::new(self.points[..keep].to_vec()).resample(samples)
    }

    /// The bounding box diagonal of the trajectory (a scale reference for tests).
    #[must_use]
    pub fn extent(&self) -> f64 {
        let rect = mpn_geom::Rect::bounding(&self.points);
        rect.lo.dist(rect.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line(n: usize, step: f64) -> Trajectory {
        Trajectory::new((0..n).map(|i| Point::new(i as f64 * step, 0.0)).collect())
    }

    #[test]
    fn basic_accessors() {
        let t = straight_line(11, 2.0);
        assert_eq!(t.len(), 11);
        assert!(!t.is_empty());
        assert_eq!(t.at(0), Point::new(0.0, 0.0));
        assert_eq!(t.at(10), Point::new(20.0, 0.0));
        // Out-of-range timestamps clamp to the last location.
        assert_eq!(t.at(999), Point::new(20.0, 0.0));
        assert!((t.arc_length() - 20.0).abs() < 1e-12);
        assert!((t.max_step() - 2.0).abs() < 1e-12);
        assert!((t.mean_step() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two locations")]
    fn single_point_trajectory_is_rejected() {
        let _ = Trajectory::new(vec![Point::ORIGIN]);
    }

    #[test]
    fn resampling_preserves_endpoints_and_spacing() {
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]);
        let r = t.resample(21);
        assert_eq!(r.len(), 21);
        assert_eq!(r.at(0), Point::new(0.0, 0.0));
        assert!(r.at(20).dist(Point::new(10.0, 10.0)) < 1e-9);
        // Uniform arc-length spacing: every step is 1.0.
        for w in r.points().windows(2) {
            assert!((w[0].dist(w[1]) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn resampling_a_stationary_trajectory_is_safe() {
        let t = Trajectory::new(vec![Point::new(3.0, 3.0), Point::new(3.0, 3.0)]);
        let r = t.resample(10);
        assert_eq!(r.len(), 10);
        assert!(r.points().iter().all(|p| *p == Point::new(3.0, 3.0)));
        assert_eq!(r.mean_step(), 0.0);
    }

    #[test]
    fn speed_scaling_reduces_the_effective_speed_proportionally() {
        let t = straight_line(1001, 1.0); // speed 1.0 per timestamp
        let full = t.scale_speed(1.0, 1001);
        let half = t.scale_speed(0.5, 1001);
        let quarter = t.scale_speed(0.25, 1001);
        assert!((full.mean_step() - 1.0).abs() < 1e-9);
        assert!((half.mean_step() - 0.5).abs() < 0.01);
        assert!((quarter.mean_step() - 0.25).abs() < 0.01);
        // All scaled trajectories still have the same number of timestamps.
        assert_eq!(half.len(), 1001);
        assert_eq!(quarter.len(), 1001);
        // And they only cover the prefix of the original path.
        assert!(half.extent() <= t.extent() * 0.51);
    }

    #[test]
    fn speed_scaling_clamps_degenerate_fractions() {
        let t = straight_line(100, 1.0);
        let zero = t.scale_speed(0.0, 50);
        assert_eq!(zero.len(), 50);
        assert!(zero.arc_length() <= 1.0 + 1e-9);
        let over = t.scale_speed(5.0, 50);
        assert!((over.arc_length() - t.arc_length()).abs() < 1e-9);
    }

    #[test]
    fn resample_handles_zero_length_segments() {
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(8.0, 0.0),
        ]);
        let r = t.resample(9);
        assert_eq!(r.len(), 9);
        assert!(r.at(0).dist(Point::new(0.0, 0.0)) < 1e-9);
        assert!(r.at(8).dist(Point::new(8.0, 0.0)) < 1e-9);
        for w in r.points().windows(2) {
            assert!((w[0].dist(w[1]) - 1.0).abs() < 1e-9);
        }
    }
}
