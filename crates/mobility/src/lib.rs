//! Workload generation: points of interest and moving-user trajectories.
//!
//! The paper's experiments (Section 7.1) use
//!
//! * a real POI data set of `N = 21,287` points,
//! * *GeoLife*, a real taxi-trajectory set, and
//! * *Oldenburg*, a synthetic set produced by Brinkhoff's network-based generator,
//!
//! each with 60 trajectories of more than 10,000 timestamps, partitioned into groups.
//!
//! Those artefacts are not redistributable, so this crate builds the closest synthetic
//! equivalents exercising the same code paths (see `DESIGN.md` for the substitution table):
//!
//! * [`poi`] — uniform and clustered (Gaussian-mixture) POI generators with subsampling,
//! * [`trajectory`] — the trajectory container plus arc-length resampling and the
//!   speed-scaling procedure of the "effect of user speed" experiment,
//! * [`waypoint`] — a hotspot-biased random-waypoint generator standing in for GeoLife,
//! * [`network`] — a road-network generator and network-constrained movement standing in for
//!   Brinkhoff's Oldenburg generator,
//! * [`group`] — partitioning trajectories into user groups of a given size.

#![forbid(unsafe_code)]

pub mod group;
pub mod network;
pub mod poi;
pub mod trajectory;
pub mod waypoint;

pub use group::{partition_into_groups, GroupWorkload};
pub use network::{NetworkConfig, RoadNetwork};
pub use poi::{clustered_pois, subsample, uniform_pois, PoiConfig};
pub use trajectory::Trajectory;
pub use waypoint::{TaxiConfig, WaypointConfig};

/// The default square domain side length used by all generators (an abstract "city" extent).
pub const DEFAULT_DOMAIN: f64 = 10_000.0;

/// The default maximum user speed `V` in domain units per timestamp.
pub const DEFAULT_SPEED_LIMIT: f64 = 20.0;

/// The default POI data-set size, matching the paper's real data set (`N = 21,287`).
pub const DEFAULT_POI_COUNT: usize = 21_287;

/// The default trajectory length in timestamps (the paper uses "above 10,000").
pub const DEFAULT_TIMESTAMPS: usize = 10_000;
