//! Property tests for `RoadNetwork` connectivity.
//!
//! The generator's removal pass can disconnect whole components (and with
//! `removal_fraction = 1.0` and no shortcuts, *every* node starts isolated); the
//! `connect_components` repair pass must bridge all of them, because a fragmented network
//! makes `trajectory()` burn its 50-attempt fallback on unreachable destinations and
//! strands shortest-path queries.  These tests pin the repair over the whole configuration
//! space, degenerate corners included.

use mpn_mobility::network::{NetworkConfig, RoadNetwork};
use proptest::prelude::*;

/// Asserts every node is reachable from node 0 and trajectories cover the full horizon.
fn assert_connected(config: &NetworkConfig, seed: u64) {
    let network = RoadNetwork::generate(config, seed);
    for v in 1..network.node_count() {
        assert!(
            network.shortest_path(0, v).is_some(),
            "node {v} unreachable from node 0 (grid={}, removal={}, shortcuts={}, seed={seed})",
            config.grid,
            config.removal_fraction,
            config.shortcuts
        );
    }
    // On a connected network the walk never stalls: full horizon, nonzero ground covered.
    let trajectory = network.trajectory(seed ^ 0xbeef, 0);
    assert_eq!(trajectory.len(), config.timestamps);
    assert!(
        trajectory.arc_length() > 0.0,
        "trajectory never moved (grid={}, removal={}, seed={seed})",
        config.grid,
        config.removal_fraction
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn every_generated_network_is_fully_connected(
        grid in 2usize..9,
        // 0..=10 mapped through /10.0 so removal_fraction = 1.0 (every grid edge gone)
        // is drawn with real probability, not just as a float-range endpoint.
        removal_tenths in 0u32..11,
        shortcuts in 0usize..12,
        jitter in 0.0f64..0.5,
        seed in 0u64..1_000_000,
    ) {
        let config = NetworkConfig {
            grid,
            removal_fraction: f64::from(removal_tenths) / 10.0,
            shortcuts,
            jitter,
            domain: 1_000.0,
            timestamps: 16,
            speed_limit: 25.0,
            ..NetworkConfig::default()
        };
        assert_connected(&config, seed);
    }
}

/// The fully degenerate corner: smallest grid, every edge removed, no shortcuts.  Before
/// the repair pass this network had zero edges and every shortest-path query failed.
#[test]
fn degenerate_network_is_repaired() {
    let config = NetworkConfig {
        grid: 2,
        removal_fraction: 1.0,
        shortcuts: 0,
        jitter: 0.0,
        domain: 100.0,
        timestamps: 8,
        ..NetworkConfig::default()
    };
    for seed in 0..16 {
        assert_connected(&config, seed);
        let network = RoadNetwork::generate(&config, seed);
        // 4 nodes need at least 3 bridges; the repair adds exactly a spanning tree.
        assert_eq!(network.node_count(), 4);
        assert_eq!(network.edge_count(), 3);
    }
}

/// Heavy removal on a larger grid — the historical failure mode was multi-node islands
/// (not just degree-0 nodes), which the old repair pass missed entirely.
#[test]
fn heavy_removal_leaves_no_islands() {
    let config = NetworkConfig {
        grid: 12,
        removal_fraction: 0.85,
        shortcuts: 2,
        timestamps: 12,
        ..NetworkConfig::default()
    };
    for seed in 0..8 {
        assert_connected(&config, seed);
    }
}
