//! Property-based tests for the R-tree and the GNN search: every distance-ranked query must
//! agree with a brute-force linear scan, for arbitrary point sets and query locations.

use mpn_geom::{DistanceBounds, Point, Rect};
use mpn_index::gnn::brute_force_gnn;
use mpn_index::{Aggregate, GnnSearch, RTree, RTreeConfig};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-500.0f64..500.0, -500.0f64..500.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nearest_neighbour_matches_linear_scan(
        points in proptest::collection::vec(pt(), 1..200),
        query in pt(),
    ) {
        let tree = RTree::bulk_load(&points);
        let (got, dist) = tree.nearest(query).unwrap();
        let best = points.iter().map(|p| p.dist(query)).fold(f64::INFINITY, f64::min);
        prop_assert!((dist - best).abs() < 1e-9);
        prop_assert!((points[got.id].dist(query) - best).abs() < 1e-9);
    }

    #[test]
    fn k_nearest_is_sorted_prefix_of_the_true_ranking(
        points in proptest::collection::vec(pt(), 1..200),
        query in pt(),
        k in 1usize..20,
    ) {
        let tree = RTree::bulk_load(&points);
        let got = tree.k_nearest(query, k);
        prop_assert_eq!(got.len(), k.min(points.len()));
        let mut dists: Vec<f64> = points.iter().map(|p| p.dist(query)).collect();
        dists.sort_by(f64::total_cmp);
        for (i, (_, d)) in got.iter().enumerate() {
            prop_assert!((d - dists[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn range_query_matches_filter(
        points in proptest::collection::vec(pt(), 0..200),
        a in pt(),
        b in pt(),
    ) {
        let tree = RTree::bulk_load(&points);
        let query = Rect::new(a, b);
        let mut got: Vec<usize> = tree.range(&query).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| query.contains(**p))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn gnn_matches_brute_force_for_both_aggregates(
        points in proptest::collection::vec(pt(), 1..150),
        users in proptest::collection::vec(pt(), 1..6),
        k in 1usize..8,
    ) {
        let tree = RTree::bulk_load(&points);
        for agg in [Aggregate::Max, Aggregate::Sum] {
            let (got, _) = GnnSearch::new(&tree, &users, agg).top_k(k);
            let want = brute_force_gnn(&points, &users, agg, k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.dist - w.dist).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn incremental_insertion_agrees_with_bulk_load(
        points in proptest::collection::vec(pt(), 1..150),
        query in pt(),
    ) {
        let bulk = RTree::bulk_load(&points);
        let mut incremental = RTree::new(RTreeConfig::new(8, 3));
        for p in &points {
            incremental.insert(*p);
        }
        prop_assert_eq!(bulk.len(), incremental.len());
        let (_, d1) = bulk.nearest(query).unwrap();
        let (_, d2) = incremental.nearest(query).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn candidate_retrieval_matches_brute_force(
        points in proptest::collection::vec(pt(), 0..150),
        users in proptest::collection::vec(pt(), 1..5),
        radius in 10.0f64..800.0,
    ) {
        let tree = RTree::bulk_load(&points);
        let radii: Vec<f64> = users.iter().enumerate().map(|(i, _)| radius + 20.0 * i as f64).collect();
        let (got, _) = tree.candidates_within_user_radii(&users, &radii);
        let mut got_ids: Vec<usize> = got.iter().map(|e| e.id).collect();
        got_ids.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| users.iter().zip(&radii).all(|(u, r)| p.dist(*u) <= *r))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got_ids, want);

        let threshold = radius * users.len() as f64;
        let (got_sum, _) = tree.candidates_within_sum_radius(&users, threshold);
        let mut got_sum_ids: Vec<usize> = got_sum.iter().map(|e| e.id).collect();
        got_sum_ids.sort_unstable();
        let mut want_sum: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| users.iter().map(|u| p.dist(*u)).sum::<f64>() <= threshold)
            .map(|(i, _)| i)
            .collect();
        want_sum.sort_unstable();
        prop_assert_eq!(got_sum_ids, want_sum);
    }
}
