//! A planar R-tree over points of interest.
//!
//! The tree supports STR (Sort-Tile-Recursive) bulk loading for static POI data sets —
//! the common case in the paper's experiments — and incremental insertion with quadratic
//! node splitting for dynamic data.  All distance-ranked traversals are best-first searches
//! over a binary heap, which gives the incremental top-k behaviour required by the GNN
//! queries of [`crate::gnn`].

use mpn_geom::{DistanceBounds, Point, Rect};

/// Configuration of the R-tree fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum number of entries per node before it is split.
    pub max_entries: usize,
    /// Minimum number of entries per node produced by a split.
    pub min_entries: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        // A fan-out of 32 models a small disk page of POI records; the 40% minimum fill
        // follows the classic R-tree guidance.
        Self { max_entries: 32, min_entries: 13 }
    }
}

impl RTreeConfig {
    /// Creates a configuration, clamping degenerate values to sane minimums.
    #[must_use]
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        let max_entries = max_entries.max(4);
        let min_entries = min_entries.clamp(2, max_entries / 2);
        Self { max_entries, min_entries }
    }
}

/// A point of interest stored in the tree: a stable identifier plus its location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoiEntry {
    /// Stable identifier of the POI (index into the original data set).
    pub id: usize,
    /// Location of the POI.
    pub location: Point,
}

impl PoiEntry {
    /// Creates an entry.
    #[must_use]
    pub const fn new(id: usize, location: Point) -> Self {
        Self { id, location }
    }
}

/// Counters describing the work performed by a single query.
///
/// `nodes_visited` is the number of R-tree nodes whose children were examined (a proxy for
/// index I/O); `points_examined` is the number of leaf entries whose exact distance was
/// evaluated.  The buffering optimisation of Section 5.4 exists precisely to reduce these
/// numbers, so the simulation reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of internal/leaf nodes expanded during the query.
    pub nodes_visited: usize,
    /// Number of POI entries whose distance was computed.
    pub points_examined: usize,
}

impl QueryStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: QueryStats) {
        self.nodes_visited += other.nodes_visited;
        self.points_examined += other.points_examined;
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf { mbr: Rect, entries: Vec<PoiEntry> },
    Internal { mbr: Rect, children: Vec<Node> },
}

impl Node {
    pub(crate) fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => *mbr,
        }
    }

    fn recompute_mbr(&mut self) {
        match self {
            Node::Leaf { mbr, entries } => {
                *mbr =
                    entries.iter().fold(Rect::EMPTY, |r, e| r.union(Rect::from_point(e.location)));
            }
            Node::Internal { mbr, children } => {
                *mbr = children.iter().fold(Rect::EMPTY, |r, c| r.union(c.mbr()));
            }
        }
    }

    fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => {
                1 + children.iter().map(Node::height).max().unwrap_or(0)
            }
        }
    }

    fn node_count(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => {
                1 + children.iter().map(Node::node_count).sum::<usize>()
            }
        }
    }

    /// Number of POI entries stored in the subtree (used by structural tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { children, .. } => children.iter().map(Node::len).sum(),
        }
    }
}

/// An R-tree over [`PoiEntry`] records.
#[derive(Debug, Clone)]
pub struct RTree {
    config: RTreeConfig,
    root: Option<Node>,
    len: usize,
    next_id: usize,
    generation: u64,
}

/// Process-unique stamp for [`RTree::generation`]: every construction or mutation gets a
/// fresh value, so two trees (or two states of one tree) never share a generation.  The
/// overlay of [`crate::world::WorldView`] mints its logical generations from the same
/// counter, so tree stamps and world stamps can never collide.
pub(crate) fn next_generation() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Default for RTree {
    fn default() -> Self {
        Self::new(RTreeConfig::default())
    }
}

impl RTree {
    /// Creates an empty tree with the given configuration.
    #[must_use]
    pub fn new(config: RTreeConfig) -> Self {
        Self { config, root: None, len: 0, next_id: 0, generation: next_generation() }
    }

    /// Bulk loads a tree from plain points; the entry id of each point is its slice index.
    #[must_use]
    pub fn bulk_load(points: &[Point]) -> Self {
        let entries = points.iter().enumerate().map(|(i, p)| PoiEntry::new(i, *p)).collect();
        Self::bulk_load_entries(entries, RTreeConfig::default())
    }

    /// Bulk loads a tree from pre-identified entries using Sort-Tile-Recursive packing.
    #[must_use]
    pub fn bulk_load_entries(entries: Vec<PoiEntry>, config: RTreeConfig) -> Self {
        let len = entries.len();
        let next_id = entries.iter().map(|e| e.id + 1).max().unwrap_or(0);
        if entries.is_empty() {
            return Self { config, root: None, len: 0, next_id, generation: next_generation() };
        }
        let leaves = str_pack_leaves(entries, config.max_entries);
        let root = build_upper_levels(leaves, config.max_entries);
        Self { config, root: Some(root), len, next_id, generation: next_generation() }
    }

    /// Number of POIs stored in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no POIs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 for an empty tree, 1 for a single leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        self.root.as_ref().map_or(0, Node::height)
    }

    /// Total number of nodes (leaves plus internal nodes).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.root.as_ref().map_or(0, Node::node_count)
    }

    /// Minimum bounding rectangle of the whole data set.
    #[must_use]
    pub fn bounds(&self) -> Rect {
        self.root.as_ref().map_or(Rect::EMPTY, Node::mbr)
    }

    /// The tree's fan-out configuration.
    #[must_use]
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Process-unique identity stamp of this tree's current contents.
    ///
    /// Every construction and every mutation produces a fresh value, so caches keyed on the
    /// generation (e.g. the persistent §5.4 GNN buffer) can detect a different or modified
    /// tree without probabilistic address/content comparisons.  Cloning preserves the stamp:
    /// a clone holds identical contents, so caches built from the original stay valid for it.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Inserts a new POI and returns its assigned id.
    pub fn insert(&mut self, location: Point) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.insert_entry(PoiEntry::new(id, location));
        id
    }

    /// Inserts a pre-identified entry.
    pub fn insert_entry(&mut self, entry: PoiEntry) {
        self.next_id = self.next_id.max(entry.id + 1);
        self.len += 1;
        self.generation = next_generation();
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    mbr: Rect::from_point(entry.location),
                    entries: vec![entry],
                });
            }
            Some(mut root) => {
                if let Some(sibling) = insert_recursive(&mut root, entry, &self.config) {
                    // Root split: grow the tree by one level.
                    let mbr = root.mbr().union(sibling.mbr());
                    self.root = Some(Node::Internal { mbr, children: vec![root, sibling] });
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Iterates over every entry (in unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = PoiEntry> + '_ {
        let mut stack: Vec<&Node> = self.root.iter().collect();
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            match node {
                Node::Leaf { entries, .. } => return Some(entries.clone()),
                Node::Internal { children, .. } => stack.extend(children.iter()),
            }
        })
        .flatten()
    }

    /// All entries inside (or on the boundary of) the query rectangle.
    #[must_use]
    pub fn range(&self, query: &Rect) -> Vec<PoiEntry> {
        let mut out = Vec::new();
        let mut stack: Vec<&Node> = self.root.iter().collect();
        while let Some(node) = stack.pop() {
            if !node.mbr().intersects(query) {
                continue;
            }
            match node {
                Node::Leaf { entries, .. } => {
                    out.extend(entries.iter().copied().filter(|e| query.contains(e.location)));
                }
                Node::Internal { children, .. } => stack.extend(children.iter()),
            }
        }
        out
    }

    /// Nearest POI to the query point, with its distance.
    #[must_use]
    pub fn nearest(&self, query: Point) -> Option<(PoiEntry, f64)> {
        self.k_nearest(query, 1).into_iter().next()
    }

    /// The `k` nearest POIs to the query point, ordered by increasing distance.
    #[must_use]
    pub fn k_nearest(&self, query: Point, k: usize) -> Vec<(PoiEntry, f64)> {
        let mut out = Vec::with_capacity(k);
        if k == 0 {
            return out;
        }
        let mut heap = BestFirstHeap::new();
        if let Some(root) = &self.root {
            heap.push_node(root.mbr().min_dist(query), root);
        }
        while let Some(item) = heap.pop() {
            match item {
                HeapItem::Node(_, node) => match node {
                    Node::Leaf { entries, .. } => {
                        for e in entries {
                            heap.push_entry(e.location.dist(query), *e);
                        }
                    }
                    Node::Internal { children, .. } => {
                        for c in children {
                            heap.push_node(c.mbr().min_dist(query), c);
                        }
                    }
                },
                HeapItem::Entry(d, e) => {
                    out.push((e, d));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Candidate POIs for the MAX objective: every POI `p` such that `‖p, uᵢ‖ ≤ radiiᵢ` for all
    /// users `uᵢ` (the complement of the pruning rule of Theorem 3).  An R-tree node is pruned
    /// as soon as its MBR lies farther than `radiiᵢ` from some user (Fig. 10).
    #[must_use]
    pub fn candidates_within_user_radii(
        &self,
        users: &[Point],
        radii: &[f64],
    ) -> (Vec<PoiEntry>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.candidates_within_user_radii_into(users, radii, &mut out);
        (out, stats)
    }

    /// [`candidates_within_user_radii`](RTree::candidates_within_user_radii) into a
    /// caller-provided buffer (cleared first): a reused scratch vector makes the walk
    /// allocation-free.  The visit stack is the program stack — the walk recurses, bounded
    /// by the tree height.
    pub fn candidates_within_user_radii_into(
        &self,
        users: &[Point],
        radii: &[f64],
        out: &mut Vec<PoiEntry>,
    ) -> QueryStats {
        assert_eq!(users.len(), radii.len(), "one radius per user");
        out.clear();
        let mut stats = QueryStats::default();
        if let Some(root) = &self.root {
            Self::user_radii_walk(root, users, radii, out, &mut stats);
        }
        stats
    }

    /// Depth-first candidate walk.  Children are descended in *reverse* order, which is the
    /// visit order of the historical explicit LIFO stack — output order is part of the
    /// bit-identity contract (cached payloads replay it verbatim).
    fn user_radii_walk(
        node: &Node,
        users: &[Point],
        radii: &[f64],
        out: &mut Vec<PoiEntry>,
        stats: &mut QueryStats,
    ) {
        let mbr = node.mbr();
        if users.iter().zip(radii).any(|(u, r)| mbr.min_dist(*u) > *r) {
            return;
        }
        stats.nodes_visited += 1;
        match node {
            Node::Leaf { entries, .. } => {
                for e in entries {
                    stats.points_examined += 1;
                    let keep = users.iter().zip(radii).all(|(u, r)| e.location.dist(*u) <= *r);
                    if keep {
                        out.push(*e);
                    }
                }
            }
            Node::Internal { children, .. } => {
                for c in children.iter().rev() {
                    Self::user_radii_walk(c, users, radii, out, stats);
                }
            }
        }
    }

    /// Candidate POIs for the SUM objective: every POI whose summed distance to the users is at
    /// most `threshold` (the complement of the pruning rule of Theorem 6).  A node is pruned
    /// when the sum of per-user minimum distances to its MBR already exceeds the threshold.
    #[must_use]
    pub fn candidates_within_sum_radius(
        &self,
        users: &[Point],
        threshold: f64,
    ) -> (Vec<PoiEntry>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.candidates_within_sum_radius_into(users, threshold, &mut out);
        (out, stats)
    }

    /// [`candidates_within_sum_radius`](RTree::candidates_within_sum_radius) into a
    /// caller-provided buffer (cleared first); same recursion/visit-order contract as
    /// [`candidates_within_user_radii_into`](RTree::candidates_within_user_radii_into).
    pub fn candidates_within_sum_radius_into(
        &self,
        users: &[Point],
        threshold: f64,
        out: &mut Vec<PoiEntry>,
    ) -> QueryStats {
        out.clear();
        let mut stats = QueryStats::default();
        if let Some(root) = &self.root {
            Self::sum_radius_walk(root, users, threshold, out, &mut stats);
        }
        stats
    }

    fn sum_radius_walk(
        node: &Node,
        users: &[Point],
        threshold: f64,
        out: &mut Vec<PoiEntry>,
        stats: &mut QueryStats,
    ) {
        let mbr = node.mbr();
        let lower: f64 = users.iter().map(|u| mbr.min_dist(*u)).sum();
        if lower > threshold {
            return;
        }
        stats.nodes_visited += 1;
        match node {
            Node::Leaf { entries, .. } => {
                for e in entries {
                    stats.points_examined += 1;
                    let sum: f64 = users.iter().map(|u| e.location.dist(*u)).sum();
                    if sum <= threshold {
                        out.push(*e);
                    }
                }
            }
            Node::Internal { children, .. } => {
                for c in children.iter().rev() {
                    Self::sum_radius_walk(c, users, threshold, out, stats);
                }
            }
        }
    }

    pub(crate) fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }

    /// The id the next [`RTree::insert`] would assign (one past the largest id ever stored).
    /// The delta overlay of [`crate::world::WorldView`] continues this numbering so overlay
    /// inserts never collide with base ids.
    pub(crate) fn next_id(&self) -> usize {
        self.next_id
    }
}

// ---------------------------------------------------------------------------------------------
// Best-first traversal plumbing.
// ---------------------------------------------------------------------------------------------

pub(crate) enum HeapItem<'a> {
    Node(f64, &'a Node),
    Entry(f64, PoiEntry),
}

impl HeapItem<'_> {
    fn key(&self) -> f64 {
        match self {
            HeapItem::Node(k, _) | HeapItem::Entry(k, _) => *k,
        }
    }
}

/// A min-heap over heap items keyed by distance (std's `BinaryHeap` is a max-heap, so the
/// ordering is reversed here).
pub(crate) struct BestFirstHeap<'a> {
    heap: std::collections::BinaryHeap<HeapOrd<'a>>,
}

struct HeapOrd<'a>(HeapItem<'a>);

impl PartialEq for HeapOrd<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl Eq for HeapOrd<'_> {}
impl PartialOrd for HeapOrd<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapOrd<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smallest key first.
        other.0.key().total_cmp(&self.0.key())
    }
}

impl<'a> BestFirstHeap<'a> {
    pub(crate) fn new() -> Self {
        Self { heap: std::collections::BinaryHeap::new() }
    }

    pub(crate) fn push_node(&mut self, key: f64, node: &'a Node) {
        self.heap.push(HeapOrd(HeapItem::Node(key, node)));
    }

    pub(crate) fn push_entry(&mut self, key: f64, entry: PoiEntry) {
        self.heap.push(HeapOrd(HeapItem::Entry(key, entry)));
    }

    pub(crate) fn pop(&mut self) -> Option<HeapItem<'a>> {
        self.heap.pop().map(|h| h.0)
    }
}

// ---------------------------------------------------------------------------------------------
// STR bulk loading.
// ---------------------------------------------------------------------------------------------

fn str_pack_leaves(mut entries: Vec<PoiEntry>, cap: usize) -> Vec<Node> {
    let n = entries.len();
    let leaf_count = n.div_ceil(cap);
    let slices = (leaf_count as f64).sqrt().ceil() as usize;
    entries.sort_by(|a, b| a.location.x.total_cmp(&b.location.x));
    let per_slice = n.div_ceil(slices.max(1));

    let mut leaves = Vec::with_capacity(leaf_count);
    for slice in entries.chunks(per_slice.max(1)) {
        let mut slice: Vec<PoiEntry> = slice.to_vec();
        slice.sort_by(|a, b| a.location.y.total_cmp(&b.location.y));
        for chunk in slice.chunks(cap) {
            let mut leaf = Node::Leaf { mbr: Rect::EMPTY, entries: chunk.to_vec() };
            leaf.recompute_mbr();
            leaves.push(leaf);
        }
    }
    leaves
}

fn build_upper_levels(mut level: Vec<Node>, cap: usize) -> Node {
    while level.len() > 1 {
        // Pack the current level with the same STR strategy applied to node centres.
        let n = level.len();
        let group_count = n.div_ceil(cap);
        let slices = (group_count as f64).sqrt().ceil() as usize;
        level.sort_by(|a, b| a.mbr().center().x.total_cmp(&b.mbr().center().x));
        let per_slice = n.div_ceil(slices.max(1));

        let mut next = Vec::with_capacity(group_count);
        let mut buf: Vec<Node> = Vec::new();
        std::mem::swap(&mut buf, &mut level);
        let mut chunks: Vec<Vec<Node>> = Vec::new();
        let mut iter = buf.into_iter().peekable();
        while iter.peek().is_some() {
            let slice: Vec<Node> = iter.by_ref().take(per_slice.max(1)).collect();
            chunks.push(slice);
        }
        for mut slice in chunks {
            slice.sort_by(|a, b| a.mbr().center().y.total_cmp(&b.mbr().center().y));
            let mut iter = slice.into_iter().peekable();
            while iter.peek().is_some() {
                let children: Vec<Node> = iter.by_ref().take(cap).collect();
                let mut node = Node::Internal { mbr: Rect::EMPTY, children };
                node.recompute_mbr();
                next.push(node);
            }
        }
        level = next;
    }
    level.pop().expect("non-empty level")
}

// ---------------------------------------------------------------------------------------------
// Incremental insertion with quadratic split.
// ---------------------------------------------------------------------------------------------

/// Inserts into the subtree rooted at `node`; returns a new sibling if `node` was split.
fn insert_recursive(node: &mut Node, entry: PoiEntry, config: &RTreeConfig) -> Option<Node> {
    match node {
        Node::Leaf { mbr, entries } => {
            entries.push(entry);
            *mbr = mbr.union(Rect::from_point(entry.location));
            if entries.len() > config.max_entries {
                let (left, right) = split_leaf(std::mem::take(entries), config);
                let (lm, le) = left;
                *mbr = lm;
                *entries = le;
                let (rm, re) = right;
                Some(Node::Leaf { mbr: rm, entries: re })
            } else {
                None
            }
        }
        Node::Internal { mbr, children } => {
            let point_rect = Rect::from_point(entry.location);
            // Choose the child needing the least area enlargement (ties: smaller area).
            let best = (0..children.len())
                .min_by(|&i, &j| {
                    let ei = children[i].mbr().enlargement(point_rect);
                    let ej = children[j].mbr().enlargement(point_rect);
                    ei.total_cmp(&ej)
                        .then(children[i].mbr().area().total_cmp(&children[j].mbr().area()))
                })
                .expect("internal node has children");
            let new_sibling = insert_recursive(&mut children[best], entry, config);
            if let Some(sib) = new_sibling {
                children.push(sib);
            }
            *mbr = children.iter().fold(Rect::EMPTY, |r, c| r.union(c.mbr()));
            if children.len() > config.max_entries {
                let (left, right) = split_internal(std::mem::take(children), config);
                let (lm, lc) = left;
                *mbr = lm;
                *children = lc;
                let (rm, rc) = right;
                Some(Node::Internal { mbr: rm, children: rc })
            } else {
                None
            }
        }
    }
}

/// Quadratic split over arbitrary items given a function producing each item's rectangle.
fn quadratic_split<T>(
    items: Vec<T>,
    rect_of: impl Fn(&T) -> Rect,
    min_entries: usize,
) -> ((Rect, Vec<T>), (Rect, Vec<T>)) {
    debug_assert!(items.len() >= 2);
    // Pick the pair of seeds wasting the most area when grouped together.
    let mut seed_a = 0;
    let mut seed_b = 1;
    let mut worst = f64::NEG_INFINITY;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let ri = rect_of(&items[i]);
            let rj = rect_of(&items[j]);
            let waste = ri.union(rj).area() - ri.area() - rj.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a: Vec<T> = Vec::new();
    let mut group_b: Vec<T> = Vec::new();
    let mut mbr_a = Rect::EMPTY;
    let mut mbr_b = Rect::EMPTY;
    let mut rest: Vec<T> = Vec::new();
    for (idx, item) in items.into_iter().enumerate() {
        if idx == seed_a {
            mbr_a = rect_of(&item);
            group_a.push(item);
        } else if idx == seed_b {
            mbr_b = rect_of(&item);
            group_b.push(item);
        } else {
            rest.push(item);
        }
    }

    let total = rest.len() + 2;
    for item in rest {
        let r = rect_of(&item);
        // Honour the minimum fill: if one group must take everything remaining, do so.
        let remaining = total - group_a.len() - group_b.len();
        if group_a.len() + remaining <= min_entries {
            mbr_a = mbr_a.union(r);
            group_a.push(item);
            continue;
        }
        if group_b.len() + remaining <= min_entries {
            mbr_b = mbr_b.union(r);
            group_b.push(item);
            continue;
        }
        let grow_a = mbr_a.union(r).area() - mbr_a.area();
        let grow_b = mbr_b.union(r).area() - mbr_b.area();
        if grow_a < grow_b || (grow_a == grow_b && mbr_a.area() <= mbr_b.area()) {
            mbr_a = mbr_a.union(r);
            group_a.push(item);
        } else {
            mbr_b = mbr_b.union(r);
            group_b.push(item);
        }
    }
    ((mbr_a, group_a), (mbr_b, group_b))
}

type LeafSplit = ((Rect, Vec<PoiEntry>), (Rect, Vec<PoiEntry>));
type InternalSplit = ((Rect, Vec<Node>), (Rect, Vec<Node>));

fn split_leaf(entries: Vec<PoiEntry>, config: &RTreeConfig) -> LeafSplit {
    quadratic_split(entries, |e| Rect::from_point(e.location), config.min_entries)
}

fn split_internal(children: Vec<Node>, config: &RTreeConfig) -> InternalSplit {
    quadratic_split(children, Node::mbr, config.min_entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<Point> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n).map(|i| Point::new((i % side) as f64, (i / side) as f64)).collect()
    }

    #[test]
    fn generations_are_unique_per_construction_and_mutation() {
        let a = RTree::bulk_load(&grid_points(16));
        let b = RTree::bulk_load(&grid_points(16));
        assert_ne!(a.generation(), b.generation(), "distinct trees get distinct stamps");
        // A clone shares contents, so it keeps the stamp.
        assert_eq!(a.clone().generation(), a.generation());
        // Mutation refreshes the stamp.
        let mut c = b.clone();
        let before = c.generation();
        c.insert(Point::new(100.0, 100.0));
        assert_ne!(c.generation(), before);
        assert_eq!(b.generation(), before, "the clone's mutation leaves the original alone");
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = RTree::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.nearest(Point::ORIGIN).is_none());
        assert!(t.range(&Rect::new(Point::ORIGIN, Point::new(1.0, 1.0))).is_empty());
        assert!(t.bounds().is_empty());
    }

    #[test]
    fn bulk_load_indexes_every_point() {
        let pts = grid_points(1000);
        let t = RTree::bulk_load(&pts);
        assert_eq!(t.len(), 1000);
        assert!(t.height() >= 2);
        let mut ids: Vec<usize> = t.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_single_point_and_empty() {
        let t = RTree::bulk_load(&[Point::new(3.0, 4.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let (e, d) = t.nearest(Point::ORIGIN).unwrap();
        assert_eq!(e.id, 0);
        assert!((d - 5.0).abs() < 1e-12);

        let empty = RTree::bulk_load(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let pts = grid_points(500);
        let t = RTree::bulk_load(&pts);
        let queries = [
            Point::new(3.3, 7.9),
            Point::new(-5.0, -5.0),
            Point::new(30.0, 2.0),
            Point::new(11.5, 11.5),
        ];
        for q in queries {
            let (got, gd) = t.nearest(q).unwrap();
            let (want_i, want_d) = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.dist(q)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert!((gd - want_d).abs() < 1e-12);
            assert_eq!(pts[got.id].dist(q), pts[want_i].dist(q));
        }
    }

    #[test]
    fn k_nearest_is_sorted_and_correct() {
        let pts = grid_points(200);
        let t = RTree::bulk_load(&pts);
        let q = Point::new(5.2, 5.7);
        let got = t.k_nearest(q, 10);
        assert_eq!(got.len(), 10);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        let mut brute: Vec<f64> = pts.iter().map(|p| p.dist(q)).collect();
        brute.sort_by(f64::total_cmp);
        for (i, (_, d)) in got.iter().enumerate() {
            assert!((d - brute[i]).abs() < 1e-12);
        }
        // Asking for more neighbours than points returns everything.
        assert_eq!(t.k_nearest(q, 1000).len(), 200);
        assert!(t.k_nearest(q, 0).is_empty());
    }

    #[test]
    fn range_query_matches_filter() {
        let pts = grid_points(400);
        let t = RTree::bulk_load(&pts);
        let q = Rect::new(Point::new(2.5, 3.5), Point::new(9.5, 12.5));
        let mut got: Vec<usize> = t.range(&q).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            pts.iter().enumerate().filter(|(_, p)| q.contains(**p)).map(|(i, _)| i).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn insertion_grows_and_stays_queryable() {
        let mut t = RTree::new(RTreeConfig::new(8, 3));
        let pts = grid_points(300);
        for p in &pts {
            t.insert(*p);
        }
        assert_eq!(t.len(), 300);
        assert!(t.height() >= 2);
        // Every inserted point is its own nearest neighbour at distance 0.
        for (i, p) in pts.iter().enumerate().step_by(17) {
            let (e, d) = t.nearest(*p).unwrap();
            assert!(d < 1e-12, "point {i} should be found exactly");
            assert_eq!(pts[e.id], *p);
        }
    }

    #[test]
    fn insertion_after_bulk_load() {
        let mut t = RTree::bulk_load(&grid_points(100));
        let id = t.insert(Point::new(-50.0, -50.0));
        assert_eq!(id, 100);
        assert_eq!(t.len(), 101);
        let (e, d) = t.nearest(Point::new(-49.0, -50.0)).unwrap();
        assert_eq!(e.id, 100);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_capacity_is_respected() {
        let mut t = RTree::new(RTreeConfig::new(6, 2));
        for p in grid_points(200) {
            t.insert(p);
        }
        fn check(node: &Node, cap: usize, is_root: bool) {
            match node {
                Node::Leaf { entries, .. } => assert!(entries.len() <= cap),
                Node::Internal { children, .. } => {
                    assert!(children.len() <= cap);
                    if !is_root {
                        assert!(children.len() >= 2);
                    }
                    for c in children {
                        check(c, cap, false);
                    }
                }
            }
        }
        check(t.root().unwrap(), 6, true);
    }

    #[test]
    fn mbrs_cover_their_subtrees() {
        let t = RTree::bulk_load(&grid_points(777));
        fn check(node: &Node) {
            let mbr = node.mbr();
            match node {
                Node::Leaf { entries, .. } => {
                    for e in entries {
                        assert!(mbr.contains(e.location));
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        assert!(mbr.contains_rect(&c.mbr()));
                        check(c);
                    }
                }
            }
        }
        check(t.root().unwrap());
    }

    #[test]
    fn candidates_within_user_radii_matches_brute_force() {
        let pts = grid_points(400);
        let t = RTree::bulk_load(&pts);
        let users = [Point::new(4.0, 4.0), Point::new(10.0, 6.0)];
        let radii = [6.0, 8.0];
        let (got, stats) = t.candidates_within_user_radii(&users, &radii);
        let mut got_ids: Vec<usize> = got.iter().map(|e| e.id).collect();
        got_ids.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| users.iter().zip(radii).all(|(u, r)| p.dist(*u) <= r))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got_ids, want);
        // Pruning must have avoided visiting the whole tree.
        assert!(stats.points_examined < pts.len());
    }

    #[test]
    fn candidates_within_sum_radius_matches_brute_force() {
        let pts = grid_points(400);
        let t = RTree::bulk_load(&pts);
        let users = [Point::new(2.0, 2.0), Point::new(15.0, 15.0), Point::new(8.0, 1.0)];
        let threshold = 45.0;
        let (got, _) = t.candidates_within_sum_radius(&users, threshold);
        let mut got_ids: Vec<usize> = got.iter().map(|e| e.id).collect();
        got_ids.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| users.iter().map(|u| p.dist(*u)).sum::<f64>() <= threshold)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got_ids, want);
    }

    #[test]
    fn query_stats_absorb_accumulates() {
        let mut a = QueryStats { nodes_visited: 2, points_examined: 10 };
        a.absorb(QueryStats { nodes_visited: 3, points_examined: 4 });
        assert_eq!(a, QueryStats { nodes_visited: 5, points_examined: 14 });
    }

    #[test]
    fn subtree_entry_count_matches_len() {
        let t = RTree::bulk_load(&grid_points(321));
        assert_eq!(t.root().unwrap().len(), t.len());
        let mut t2 = RTree::new(RTreeConfig::new(8, 3));
        for p in grid_points(97) {
            t2.insert(p);
        }
        assert_eq!(t2.root().unwrap().len(), 97);
    }

    #[test]
    fn duplicate_points_are_all_retained() {
        let pts = vec![Point::new(1.0, 1.0); 50];
        let t = RTree::bulk_load(&pts);
        assert_eq!(t.len(), 50);
        assert_eq!(t.k_nearest(Point::new(1.0, 1.0), 50).len(), 50);
    }
}
