//! Group nearest-neighbour (GNN) search over the R-tree.
//!
//! Given a group of user locations `U` and an aggregate function (MAX or SUM), the GNN query
//! returns the POIs with the smallest aggregate distance to the whole group.  This is the
//! `FindMaxGNN` / `FindSumGNN` primitive of Papadias et al. (the paper's reference [24]) which
//! the safe-region algorithms call in Algorithm 1 (top-2 for the circle radius) and in the
//! buffering optimisation of Section 5.4 (top-(b+1) to bound the candidate set).
//!
//! The implementation is a best-first traversal: internal nodes are ranked by a lower bound of
//! the aggregate distance (the aggregate of per-user minimum distances to the node MBR), which
//! is admissible for both MAX and SUM, so results are produced incrementally in exact order.

use crate::rtree::{BestFirstHeap, HeapItem, PoiEntry, QueryStats, RTree};
use mpn_geom::{max_dist_to_set, sum_dist_to_set, DistanceBounds, Point, Rect};

/// The aggregate distance function of the meeting-point objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Aggregate {
    /// Minimise the maximum user distance (MAX-GNN; the MPN problem, Definition 2).
    #[default]
    Max,
    /// Minimise the total user distance (SUM-GNN; the Sum-MPN variant, Definition 8).
    Sum,
}

impl Aggregate {
    /// Aggregate distance from a point to the user group (`‖p, U‖†` or `‖p, U‖sum`).
    #[must_use]
    pub fn point_dist(self, p: Point, users: &[Point]) -> f64 {
        match self {
            Aggregate::Max => max_dist_to_set(p, users),
            Aggregate::Sum => sum_dist_to_set(p, users),
        }
    }

    /// Admissible lower bound of the aggregate distance from any point inside `rect` to the
    /// group: the aggregate of per-user minimum distances to the rectangle.
    #[must_use]
    pub fn rect_lower_bound(self, rect: &Rect, users: &[Point]) -> f64 {
        match self {
            Aggregate::Max => users.iter().map(|u| rect.min_dist(*u)).fold(0.0, f64::max),
            Aggregate::Sum => users.iter().map(|u| rect.min_dist(*u)).sum(),
        }
    }

    /// Human-readable name used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Max => "max",
            Aggregate::Sum => "sum",
        }
    }
}

/// One result of a GNN query: the POI and its aggregate distance to the group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnnNeighbor {
    /// The point of interest.
    pub entry: PoiEntry,
    /// Aggregate (MAX or SUM) distance from the group to `entry`.
    pub dist: f64,
}

/// A group nearest-neighbour search bound to a tree, a user group and an aggregate.
#[derive(Debug, Clone, Copy)]
pub struct GnnSearch<'a> {
    tree: &'a RTree,
    users: &'a [Point],
    aggregate: Aggregate,
}

impl<'a> GnnSearch<'a> {
    /// Creates a search over `tree` for the group `users` under `aggregate`.
    ///
    /// # Panics
    /// Panics if `users` is empty — a meeting point for nobody is meaningless.
    #[must_use]
    pub fn new(tree: &'a RTree, users: &'a [Point], aggregate: Aggregate) -> Self {
        assert!(!users.is_empty(), "GNN search requires at least one user");
        Self { tree, users, aggregate }
    }

    /// The best meeting point (top-1 GNN), if the tree is non-empty.
    #[must_use]
    pub fn best(&self) -> Option<GnnNeighbor> {
        self.top_k(1).0.into_iter().next()
    }

    /// The `k` best meeting points in increasing aggregate distance, plus traversal statistics.
    #[must_use]
    pub fn top_k(&self, k: usize) -> (Vec<GnnNeighbor>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.top_k_into(k, &mut out);
        (out, stats)
    }

    /// [`top_k`](GnnSearch::top_k) into a caller-provided buffer (cleared first), so a
    /// reused scratch vector pays no per-query result allocation.  Results and
    /// [`QueryStats`] are bit-identical to [`top_k`](GnnSearch::top_k).
    pub fn top_k_into(&self, k: usize, out: &mut Vec<GnnNeighbor>) -> QueryStats {
        out.clear();
        let mut stats = QueryStats::default();
        if k == 0 || self.tree.is_empty() {
            return stats;
        }
        out.reserve(k.min(self.tree.len()));
        let mut heap = BestFirstHeap::new();
        if let Some(root) = self.tree.root() {
            heap.push_node(self.aggregate.rect_lower_bound(&root.mbr(), self.users), root);
        }
        while let Some(item) = heap.pop() {
            match item {
                HeapItem::Node(_, node) => {
                    stats.nodes_visited += 1;
                    match node {
                        crate::rtree::Node::Leaf { entries, .. } => {
                            for e in entries {
                                stats.points_examined += 1;
                                heap.push_entry(
                                    self.aggregate.point_dist(e.location, self.users),
                                    *e,
                                );
                            }
                        }
                        crate::rtree::Node::Internal { children, .. } => {
                            for c in children {
                                heap.push_node(
                                    self.aggregate.rect_lower_bound(&c.mbr(), self.users),
                                    c,
                                );
                            }
                        }
                    }
                }
                HeapItem::Entry(d, e) => {
                    out.push(GnnNeighbor { entry: e, dist: d });
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        stats
    }
}

/// Convenience: top-k GNN by brute force, used as a test oracle and by tiny data sets.
#[must_use]
pub fn brute_force_gnn(
    points: &[Point],
    users: &[Point],
    aggregate: Aggregate,
    k: usize,
) -> Vec<GnnNeighbor> {
    let mut all: Vec<GnnNeighbor> = points
        .iter()
        .enumerate()
        .map(|(i, p)| GnnNeighbor {
            entry: PoiEntry::new(i, *p),
            dist: aggregate.point_dist(*p, users),
        })
        .collect();
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_points(n: usize) -> Vec<Point> {
        // Deterministic pseudo-random layout (no external RNG needed for unit tests).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * 100.0, next() * 100.0)).collect()
    }

    #[test]
    fn aggregate_point_dist() {
        let users = [Point::new(0.0, 0.0), Point::new(6.0, 8.0)];
        let p = Point::new(0.0, 0.0);
        assert!((Aggregate::Max.point_dist(p, &users) - 10.0).abs() < 1e-12);
        assert!((Aggregate::Sum.point_dist(p, &users) - 10.0).abs() < 1e-12);
        let q = Point::new(3.0, 4.0);
        assert!((Aggregate::Max.point_dist(q, &users) - 5.0).abs() < 1e-12);
        assert!((Aggregate::Sum.point_dist(q, &users) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rect_lower_bound_is_admissible() {
        let users = [Point::new(0.0, 0.0), Point::new(20.0, 0.0), Point::new(10.0, 15.0)];
        let rect = Rect::new(Point::new(8.0, 2.0), Point::new(12.0, 6.0));
        for agg in [Aggregate::Max, Aggregate::Sum] {
            let lb = agg.rect_lower_bound(&rect, &users);
            // Sample points inside the rectangle; none may beat the lower bound.
            for i in 0..=10 {
                for j in 0..=10 {
                    let p = Point::new(
                        rect.lo.x + rect.width() * f64::from(i) / 10.0,
                        rect.lo.y + rect.height() * f64::from(j) / 10.0,
                    );
                    assert!(agg.point_dist(p, &users) + 1e-9 >= lb);
                }
            }
        }
    }

    #[test]
    fn max_gnn_matches_brute_force() {
        let pts = clustered_points(600);
        let tree = RTree::bulk_load(&pts);
        let users = [Point::new(30.0, 40.0), Point::new(50.0, 45.0), Point::new(35.0, 60.0)];
        let (got, stats) = GnnSearch::new(&tree, &users, Aggregate::Max).top_k(8);
        let want = brute_force_gnn(&pts, &users, Aggregate::Max, 8);
        assert_eq!(got.len(), 8);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
        assert!(stats.points_examined <= pts.len());
    }

    #[test]
    fn sum_gnn_matches_brute_force() {
        let pts = clustered_points(600);
        let tree = RTree::bulk_load(&pts);
        let users = [Point::new(80.0, 20.0), Point::new(70.0, 35.0)];
        let (got, _) = GnnSearch::new(&tree, &users, Aggregate::Sum).top_k(5);
        let want = brute_force_gnn(&pts, &users, Aggregate::Sum, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn results_are_sorted_and_incremental() {
        let pts = clustered_points(300);
        let tree = RTree::bulk_load(&pts);
        let users = [Point::new(10.0, 90.0), Point::new(15.0, 80.0), Point::new(5.0, 85.0)];
        for agg in [Aggregate::Max, Aggregate::Sum] {
            let (top10, _) = GnnSearch::new(&tree, &users, agg).top_k(10);
            for w in top10.windows(2) {
                assert!(w[0].dist <= w[1].dist + 1e-12);
            }
            // top-1 is a prefix of top-10.
            let best = GnnSearch::new(&tree, &users, agg).best().unwrap();
            assert!((best.dist - top10[0].dist).abs() < 1e-12);
        }
    }

    #[test]
    fn single_user_gnn_reduces_to_nearest_neighbor() {
        let pts = clustered_points(200);
        let tree = RTree::bulk_load(&pts);
        let user = [Point::new(42.0, 17.0)];
        let best = GnnSearch::new(&tree, &user, Aggregate::Max).best().unwrap();
        let (nn, d) = tree.nearest(user[0]).unwrap();
        assert_eq!(best.entry.id, nn.id);
        assert!((best.dist - d).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_data_returns_everything() {
        let pts = clustered_points(25);
        let tree = RTree::bulk_load(&pts);
        let users = [Point::new(0.0, 0.0), Point::new(100.0, 100.0)];
        let (got, _) = GnnSearch::new(&tree, &users, Aggregate::Sum).top_k(100);
        assert_eq!(got.len(), 25);
    }

    #[test]
    fn empty_tree_returns_no_results() {
        let tree = RTree::bulk_load(&[]);
        let users = [Point::new(0.0, 0.0)];
        assert!(GnnSearch::new(&tree, &users, Aggregate::Max).best().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_user_group_panics() {
        let tree = RTree::bulk_load(&[Point::ORIGIN]);
        let _ = GnnSearch::new(&tree, &[], Aggregate::Max);
    }

    #[test]
    fn aggregate_names() {
        assert_eq!(Aggregate::Max.name(), "max");
        assert_eq!(Aggregate::Sum.name(), "sum");
    }
}
