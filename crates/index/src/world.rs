//! A mutable POI world over an immutable R-tree: generation-stamped delta overlay.
//!
//! The safe-region machinery assumes a frozen POI set: every engine query runs against an
//! immutable [`RTree`] shared across shards.  [`WorldView`] keeps that fast path while making
//! the world mutable: it owns a **base** tree (`Arc`-shared, never mutated) plus a small
//! insert/delete **overlay**, and answers every query as *base − deletes + inserts*.  When
//! the overlay grows past a threshold, [`WorldView::maybe_compact`] rebuilds the base from
//! the merged entry set in one STR bulk load and clears the overlay.
//!
//! Two identity stamps are involved:
//!
//! * the base tree's physical [`RTree::generation`], refreshed on every rebuild;
//! * the world's **logical** [`WorldView::generation`], bumped on every insert/delete but
//!   **kept across compaction** — compaction changes representation, not content, so caches
//!   keyed on the logical generation (the §5.4 GNN buffer) survive it.
//!
//! Queries go through [`IndexView`], a `Copy` borrow of either a plain tree or a world
//! (`From<&RTree>` / `From<&WorldView>`).  Every engine entry point in `mpn-core` accepts
//! `impl Into<IndexView>`, so existing `&tree` call sites compile unchanged while the
//! monitoring engine can thread a mutable world through the same code.

use std::collections::HashSet;
use std::sync::Arc;

use mpn_geom::Point;

use crate::cache::QueryCache;
use crate::gnn::{Aggregate, GnnNeighbor, GnnSearch};
use crate::rtree::{next_generation, PoiEntry, QueryStats, RTree};
use crate::scratch::with_scratch;

/// The pending delta against the base tree: inserted entries and deleted base ids.
///
/// Invariants: insert ids never collide with base ids (the world continues the base's id
/// numbering); `deletes` only holds ids that exist in the base (deleting an overlay insert
/// removes it from `inserts` directly).
#[derive(Debug, Clone, Default)]
pub struct Overlay {
    pub(crate) inserts: Vec<PoiEntry>,
    pub(crate) deletes: HashSet<usize>,
}

impl Overlay {
    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// Default overlay size (inserts + deletes) above which [`WorldView::maybe_compact`]
/// rebuilds the base tree.  Small enough that overlay scans stay cheap next to an R-tree
/// traversal, large enough that a burst of changes amortises one STR bulk load.
pub const DEFAULT_COMPACTION_THRESHOLD: usize = 64;

/// A mutable POI world: an immutable base [`RTree`] plus an insert/delete overlay.
#[derive(Debug, Clone)]
pub struct WorldView {
    base: Arc<RTree>,
    overlay: Overlay,
    /// Logical content stamp: bumped per mutation, preserved across compaction.
    generation: u64,
    /// Continues the base tree's id numbering for overlay inserts.
    next_id: usize,
    compaction_threshold: usize,
    compactions: usize,
}

impl WorldView {
    /// Creates a world over the given base tree with an empty overlay.
    ///
    /// The logical generation starts at the base's stamp, so a fresh world is
    /// indistinguishable from the plain tree to generation-keyed caches.
    #[must_use]
    pub fn new(base: impl Into<Arc<RTree>>) -> Self {
        let base = base.into();
        let generation = base.generation();
        let next_id = base.next_id();
        Self {
            base,
            overlay: Overlay::default(),
            generation,
            next_id,
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            compactions: 0,
        }
    }

    /// Sets the overlay size at which [`WorldView::maybe_compact`] rebuilds the base.
    #[must_use]
    pub fn with_compaction_threshold(mut self, threshold: usize) -> Self {
        self.compaction_threshold = threshold.max(1);
        self
    }

    /// The immutable base tree (shared with whoever else holds the `Arc`).
    #[must_use]
    pub fn base(&self) -> &Arc<RTree> {
        &self.base
    }

    /// A borrowed, `Copy` query view of the current world state.
    #[must_use]
    pub fn view(&self) -> IndexView<'_> {
        IndexView {
            base: &self.base,
            overlay: (!self.overlay.is_empty()).then_some(&self.overlay),
            generation: self.generation,
            cache: None,
        }
    }

    /// Number of live POIs (base minus deletes plus inserts).
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len() - self.overlay.deletes.len() + self.overlay.inserts.len()
    }

    /// Whether the world holds no POIs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical content stamp: process-unique, bumped on every [`insert`](WorldView::insert)
    /// and successful [`delete`](WorldView::delete), **unchanged** by compaction (the content
    /// is identical, so generation-keyed caches stay valid).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Pending overlay size (inserts plus deletes).
    #[must_use]
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// How many times the base has been rebuilt from the merged entry set.
    #[must_use]
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Adds a POI at `location`, returning its fresh id (never reusing a base id).
    pub fn insert(&mut self, location: Point) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.overlay.inserts.push(PoiEntry::new(id, location));
        self.generation = next_generation();
        id
    }

    /// Removes the POI with the given id.  Returns its location when it existed (in the base
    /// or the overlay), `None` when the id is unknown or already deleted.
    pub fn delete(&mut self, poi: usize) -> Option<Point> {
        if let Some(at) = self.overlay.inserts.iter().position(|e| e.id == poi) {
            let entry = self.overlay.inserts.remove(at);
            self.generation = next_generation();
            return Some(entry.location);
        }
        if self.overlay.deletes.contains(&poi) {
            return None;
        }
        let location = self.base.iter().find(|e| e.id == poi)?.location;
        self.overlay.deletes.insert(poi);
        self.generation = next_generation();
        Some(location)
    }

    /// Rebuilds the base from the merged entry set when the overlay has outgrown its
    /// threshold; returns whether a compaction ran.  Ids are preserved, the logical
    /// generation is **not** bumped (the content is unchanged).
    pub fn maybe_compact(&mut self) -> bool {
        if self.overlay.len() <= self.compaction_threshold {
            return false;
        }
        self.compact();
        true
    }

    /// Unconditionally rebuilds the base from the merged entry set and clears the overlay.
    pub fn compact(&mut self) {
        let entries: Vec<PoiEntry> = self.view().iter().collect();
        let config = self.base.config();
        self.base = Arc::new(RTree::bulk_load_entries(entries, config));
        self.overlay = Overlay::default();
        self.compactions += 1;
    }
}

impl From<Arc<RTree>> for WorldView {
    fn from(base: Arc<RTree>) -> Self {
        Self::new(base)
    }
}

impl From<RTree> for WorldView {
    fn from(base: RTree) -> Self {
        Self::new(Arc::new(base))
    }
}

/// A borrowed, `Copy` query view over either a plain [`RTree`] or a [`WorldView`].
///
/// This is what every `mpn-core` engine entry point consumes (`impl Into<IndexView>`): a
/// plain `&RTree` converts with no overlay, a `&WorldView` carries its overlay and logical
/// generation.  All query results are identical to a from-scratch tree built over the same
/// final POI set (ids included) — the overlay is an implementation detail of mutation, not a
/// semantic change.
#[derive(Debug, Clone, Copy)]
pub struct IndexView<'a> {
    base: &'a RTree,
    overlay: Option<&'a Overlay>,
    generation: u64,
    /// Optional shared result cache consulted by the query methods (see
    /// [`with_cache`](IndexView::with_cache)).
    cache: Option<&'a QueryCache>,
}

impl<'a> From<&'a RTree> for IndexView<'a> {
    fn from(tree: &'a RTree) -> Self {
        Self { base: tree, overlay: None, generation: tree.generation(), cache: None }
    }
}

impl<'a> From<&'a Arc<RTree>> for IndexView<'a> {
    fn from(tree: &'a Arc<RTree>) -> Self {
        Self::from(tree.as_ref())
    }
}

impl<'a> From<&'a WorldView> for IndexView<'a> {
    fn from(world: &'a WorldView) -> Self {
        world.view()
    }
}

impl<'a> IndexView<'a> {
    /// Number of live POIs in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.overlay {
            None => self.base.len(),
            Some(o) => self.base.len() - o.deletes.len() + o.inserts.len(),
        }
    }

    /// Whether the view holds no POIs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical generation of the content served by this view (the plain tree's stamp, or
    /// the world's logical stamp).  Caches keyed on this value (the §5.4 GNN buffer, the
    /// shared [`QueryCache`]) detect any content change exactly.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Attaches a shared [`QueryCache`]: the three query methods first look their key up at
    /// this view's generation and insert on a miss.  Results (and [`QueryStats`]) are
    /// bit-identical with and without the cache — a hit replays what the same query computed
    /// earlier at the same generation — so attaching a cache is purely a performance choice.
    #[must_use]
    pub fn with_cache(mut self, cache: &'a QueryCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached shared result cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&'a QueryCache> {
        self.cache
    }

    fn deleted(&self, id: usize) -> bool {
        self.overlay.is_some_and(|o| o.deletes.contains(&id))
    }

    fn inserts(&self) -> &'a [PoiEntry] {
        self.overlay.map_or(&[], |o| o.inserts.as_slice())
    }

    /// Iterates over every live entry (in unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = PoiEntry> + 'a {
        let view = *self;
        self.base.iter().filter(move |e| !view.deleted(e.id)).chain(self.inserts().iter().copied())
    }

    /// The `k` best meeting points under `aggregate`, in increasing aggregate distance, plus
    /// traversal statistics — the overlay-aware `FindMaxGNN` / `FindSumGNN`.
    ///
    /// Deleting `d` base entries can promote at most `d` runners-up into the top-k, so the
    /// base is searched for `k + d` neighbours, deleted ids are dropped, and the overlay
    /// inserts (scored exactly, counted in `points_examined`) are merged in.
    ///
    /// # Panics
    /// Panics when `users` is empty.
    #[must_use]
    pub fn top_k(
        &self,
        users: &[Point],
        aggregate: Aggregate,
        k: usize,
    ) -> (Vec<GnnNeighbor>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.top_k_into(users, aggregate, k, &mut out);
        (out, stats)
    }

    /// [`top_k`](IndexView::top_k) into a caller-provided buffer (cleared first).  With a
    /// reused buffer and a warm cache the whole lookup — probe key, hit check, result copy —
    /// performs zero heap allocations; results and stats are bit-identical to
    /// [`top_k`](IndexView::top_k).
    ///
    /// # Panics
    /// Panics when `users` is empty.
    pub fn top_k_into(
        &self,
        users: &[Point],
        aggregate: Aggregate,
        k: usize,
        out: &mut Vec<GnnNeighbor>,
    ) -> QueryStats {
        assert!(!users.is_empty(), "GNN search requires at least one user");
        let Some(cache) = self.cache else {
            return self.top_k_uncached_into(users, aggregate, k, out);
        };
        with_scratch(|scratch| {
            let probe = cache.top_k_probe(self.generation, users, aggregate, k, &mut scratch.probe);
            if let Some(stats) = cache.get_neighbors_into(probe, out) {
                return stats;
            }
            let stats = self.top_k_uncached_into(users, aggregate, k, out);
            cache.put_neighbors(probe, out, stats);
            stats
        })
    }

    /// The best and second-best meeting points under `aggregate` — the Circle-MSR fast path
    /// (Algorithm 1 line 1 needs exactly the top-2).  Cache key, lookup counters and stats
    /// are identical to `top_k(users, aggregate, 2)`, but a warm-cache call allocates
    /// nothing: the probe key and the miss-path staging live in the per-worker
    /// [`QueryScratch`](crate::QueryScratch), and a hit copies out two `GnnNeighbor`s
    /// instead of cloning the payload vector.
    ///
    /// # Panics
    /// Panics when `users` is empty.
    #[must_use]
    pub fn top2(
        &self,
        users: &[Point],
        aggregate: Aggregate,
    ) -> (Option<GnnNeighbor>, Option<GnnNeighbor>, QueryStats) {
        assert!(!users.is_empty(), "GNN search requires at least one user");
        with_scratch(|scratch| {
            let Some(cache) = self.cache else {
                let stats = self.top_k_uncached_into(users, aggregate, 2, &mut scratch.neighbors);
                return (
                    scratch.neighbors.first().copied(),
                    scratch.neighbors.get(1).copied(),
                    stats,
                );
            };
            let probe = cache.top_k_probe(self.generation, users, aggregate, 2, &mut scratch.probe);
            if let Some(hit) = cache.get_top2(probe) {
                return hit;
            }
            let stats = self.top_k_uncached_into(users, aggregate, 2, &mut scratch.neighbors);
            cache.put_neighbors(probe, &scratch.neighbors, stats);
            (scratch.neighbors.first().copied(), scratch.neighbors.get(1).copied(), stats)
        })
    }

    fn top_k_uncached_into(
        &self,
        users: &[Point],
        aggregate: Aggregate,
        k: usize,
        out: &mut Vec<GnnNeighbor>,
    ) -> QueryStats {
        let Some(overlay) = self.overlay else {
            return GnnSearch::new(self.base, users, aggregate).top_k_into(k, out);
        };
        let mut stats =
            GnnSearch::new(self.base, users, aggregate).top_k_into(k + overlay.deletes.len(), out);
        out.retain(|n| !overlay.deletes.contains(&n.entry.id));
        stats.points_examined += overlay.inserts.len();
        out.extend(
            overlay
                .inserts
                .iter()
                .map(|e| GnnNeighbor { entry: *e, dist: aggregate.point_dist(e.location, users) }),
        );
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        out.truncate(k);
        stats
    }

    /// Candidate POIs for the MAX objective: every live POI within `radii[i]` of every user
    /// `i` (Theorem 3 pruning on the base, exact filtering of the overlay).
    #[must_use]
    pub fn candidates_within_user_radii(
        &self,
        users: &[Point],
        radii: &[f64],
    ) -> (Vec<PoiEntry>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.candidates_within_user_radii_into(users, radii, &mut out);
        (out, stats)
    }

    /// [`candidates_within_user_radii`](IndexView::candidates_within_user_radii) into a
    /// caller-provided buffer (cleared first); allocation-free with a reused buffer and a
    /// warm cache.
    pub fn candidates_within_user_radii_into(
        &self,
        users: &[Point],
        radii: &[f64],
        out: &mut Vec<PoiEntry>,
    ) -> QueryStats {
        let Some(cache) = self.cache else {
            return self.candidates_within_user_radii_uncached_into(users, radii, out);
        };
        with_scratch(|scratch| {
            let probe = cache.user_radii_probe(self.generation, users, radii, &mut scratch.probe);
            if let Some(stats) = cache.get_entries_into(probe, out) {
                return stats;
            }
            let stats = self.candidates_within_user_radii_uncached_into(users, radii, out);
            cache.put_entries(probe, out, stats);
            stats
        })
    }

    fn candidates_within_user_radii_uncached_into(
        &self,
        users: &[Point],
        radii: &[f64],
        out: &mut Vec<PoiEntry>,
    ) -> QueryStats {
        let mut stats = self.base.candidates_within_user_radii_into(users, radii, out);
        if let Some(overlay) = self.overlay {
            out.retain(|e| !overlay.deletes.contains(&e.id));
            stats.points_examined += overlay.inserts.len();
            out.extend(
                overlay
                    .inserts
                    .iter()
                    .copied()
                    .filter(|e| users.iter().zip(radii).all(|(u, r)| e.location.dist(*u) <= *r)),
            );
        }
        stats
    }

    /// Candidate POIs for the SUM objective: every live POI whose summed user distance is at
    /// most `threshold` (Theorem 6 pruning on the base, exact filtering of the overlay).
    #[must_use]
    pub fn candidates_within_sum_radius(
        &self,
        users: &[Point],
        threshold: f64,
    ) -> (Vec<PoiEntry>, QueryStats) {
        let mut out = Vec::new();
        let stats = self.candidates_within_sum_radius_into(users, threshold, &mut out);
        (out, stats)
    }

    /// [`candidates_within_sum_radius`](IndexView::candidates_within_sum_radius) into a
    /// caller-provided buffer (cleared first); allocation-free with a reused buffer and a
    /// warm cache.
    pub fn candidates_within_sum_radius_into(
        &self,
        users: &[Point],
        threshold: f64,
        out: &mut Vec<PoiEntry>,
    ) -> QueryStats {
        let Some(cache) = self.cache else {
            return self.candidates_within_sum_radius_uncached_into(users, threshold, out);
        };
        with_scratch(|scratch| {
            let probe =
                cache.sum_radius_probe(self.generation, users, threshold, &mut scratch.probe);
            if let Some(stats) = cache.get_entries_into(probe, out) {
                return stats;
            }
            let stats = self.candidates_within_sum_radius_uncached_into(users, threshold, out);
            cache.put_entries(probe, out, stats);
            stats
        })
    }

    fn candidates_within_sum_radius_uncached_into(
        &self,
        users: &[Point],
        threshold: f64,
        out: &mut Vec<PoiEntry>,
    ) -> QueryStats {
        let mut stats = self.base.candidates_within_sum_radius_into(users, threshold, out);
        if let Some(overlay) = self.overlay {
            out.retain(|e| !overlay.deletes.contains(&e.id));
            stats.points_examined += overlay.inserts.len();
            out.extend(
                overlay.inserts.iter().copied().filter(|e| {
                    users.iter().map(|u| e.location.dist(*u)).sum::<f64>() <= threshold
                }),
            );
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::brute_force_gnn;

    fn grid_points(n: usize) -> Vec<Point> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n).map(|i| Point::new((i % side) as f64, (i / side) as f64)).collect()
    }

    /// The from-scratch oracle: a plain tree over the world's current live entries.
    fn rebuilt(world: &WorldView) -> RTree {
        let entries: Vec<PoiEntry> = world.view().iter().collect();
        RTree::bulk_load_entries(entries, world.base().config())
    }

    fn churned_world() -> WorldView {
        let mut world = WorldView::new(RTree::bulk_load(&grid_points(100)));
        for i in (0..30).step_by(3) {
            world.delete(i);
        }
        for i in 0..12 {
            world.insert(Point::new(2.5 + i as f64 * 0.7, 3.1 + i as f64 * 0.4));
        }
        world.delete(world.len()); // unknown id: no-op
        world
    }

    #[test]
    fn fresh_world_matches_its_base_exactly() {
        let tree = Arc::new(RTree::bulk_load(&grid_points(64)));
        let world = WorldView::new(Arc::clone(&tree));
        assert_eq!(world.len(), 64);
        assert_eq!(world.generation(), tree.generation());
        let view = world.view();
        assert_eq!(view.len(), 64);
        assert_eq!(view.generation(), tree.generation());
        let users = [Point::new(3.0, 3.0), Point::new(5.0, 2.0)];
        let (a, sa) = view.top_k(&users, Aggregate::Max, 5);
        let (b, sb) = GnnSearch::new(&tree, &users, Aggregate::Max).top_k(5);
        assert_eq!(sa, sb, "an empty overlay adds no work");
        assert_eq!(
            a.iter().map(|n| n.entry.id).collect::<Vec<_>>(),
            b.iter().map(|n| n.entry.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn insert_and_delete_mutate_content_and_generation() {
        let mut world = WorldView::new(RTree::bulk_load(&grid_points(16)));
        let g0 = world.generation();
        let id = world.insert(Point::new(100.0, 100.0));
        assert_eq!(id, 16, "inserts continue the base numbering");
        assert_eq!(world.len(), 17);
        assert_ne!(world.generation(), g0);

        // Deleting the overlay insert removes it from the insert log, not the delete set.
        let g1 = world.generation();
        assert_eq!(world.delete(id), Some(Point::new(100.0, 100.0)));
        assert_eq!(world.len(), 16);
        assert_eq!(world.overlay_len(), 0);
        assert_ne!(world.generation(), g1);

        // Deleting a base id marks it; double-deletes and unknown ids are rejected.
        assert!(world.delete(3).is_some());
        assert_eq!(world.delete(3), None);
        assert_eq!(world.delete(999), None);
        assert_eq!(world.len(), 15);
        let ids: Vec<usize> = world.view().iter().map(|e| e.id).collect();
        assert!(!ids.contains(&3));
    }

    #[test]
    fn overlay_queries_match_a_from_scratch_tree() {
        let world = churned_world();
        let oracle = rebuilt(&world);
        let view = world.view();
        assert_eq!(view.len(), oracle.len());

        let mut got: Vec<usize> = view.iter().map(|e| e.id).collect();
        let mut want: Vec<usize> = oracle.iter().map(|e| e.id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);

        let users = [Point::new(4.0, 4.0), Point::new(7.0, 2.0), Point::new(3.0, 8.0)];
        for aggregate in [Aggregate::Max, Aggregate::Sum] {
            let (got, _) = view.top_k(&users, aggregate, 7);
            let pool: Vec<Point> = oracle.iter().map(|e| e.location).collect();
            let want = brute_force_gnn(&pool, &users, aggregate, 7);
            assert_eq!(got.len(), 7);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.dist).abs() < 1e-9, "{aggregate:?} ranking diverged");
            }
        }

        let radii = [6.0, 7.0, 9.0];
        let (got, _) = view.candidates_within_user_radii(&users, &radii);
        let (want, _) = oracle.candidates_within_user_radii(&users, &radii);
        let mut got: Vec<usize> = got.iter().map(|e| e.id).collect();
        let mut want: Vec<usize> = want.iter().map(|e| e.id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);

        let (got, _) = view.candidates_within_sum_radius(&users, 22.0);
        let (want, _) = oracle.candidates_within_sum_radius(&users, 22.0);
        let mut got: Vec<usize> = got.iter().map(|e| e.id).collect();
        let mut want: Vec<usize> = want.iter().map(|e| e.id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn compaction_preserves_content_ids_and_logical_generation() {
        let mut world = churned_world().with_compaction_threshold(4);
        let generation = world.generation();
        let mut before: Vec<usize> = world.view().iter().map(|e| e.id).collect();
        before.sort_unstable();

        assert!(world.maybe_compact(), "the overlay is past the threshold");
        assert_eq!(world.compactions(), 1);
        assert_eq!(world.overlay_len(), 0);
        assert_eq!(world.generation(), generation, "compaction does not change content");
        let mut after: Vec<usize> = world.view().iter().map(|e| e.id).collect();
        after.sort_unstable();
        assert_eq!(before, after, "compaction preserves ids");
        assert!(!world.maybe_compact(), "an empty overlay never compacts");

        // Fresh ids keep advancing past compaction (no id reuse).
        let id = world.insert(Point::ORIGIN);
        assert!(before.iter().all(|&existing| existing != id));
    }

    #[test]
    fn below_threshold_no_compaction_runs() {
        let mut world = WorldView::new(RTree::bulk_load(&grid_points(25)));
        world.insert(Point::new(9.0, 9.0));
        assert!(!world.maybe_compact());
        assert_eq!(world.compactions(), 0);
        assert_eq!(world.overlay_len(), 1);
    }
}
