//! A fleet-wide, lock-striped candidate cache keyed by (quantized query point, k, world
//! generation).
//!
//! Every [`GroupSession`](../../mpn_sim/monitor/struct.GroupSession.html) update re-runs
//! GNN / candidate-retrieval queries against the same shared index, and real fleets are full
//! of near-duplicate groups: parties converging on the same venue issue the same `top_k`
//! with the same positions, tick after tick.  [`QueryCache`] lets every session monitoring
//! the same [`IndexView`](crate::IndexView) reuse those results:
//!
//! * **Keying.**  A query is bucketed by its *quantized* scalars (positions, radii,
//!   thresholds snapped to a [`quantum`](QueryCache::quantum) grid) plus the query kind, `k`
//!   and the **world generation**; each bucket is direct-mapped (one slot).  A hit
//!   additionally requires the stored key to match the query's scalars *bit for bit* — two
//!   queries that merely share a grid cell never serve each other's results, they just
//!   compete for the slot.
//! * **Invalidation is free.**  The generation is part of the key, and PR 7's
//!   [`WorldView`](crate::WorldView) bumps it on every content change (and *only* on content
//!   changes — compaction preserves it).  A cached entry from an older world is simply never
//!   looked up again; stale slots are overwritten by the direct-mapped replacement or
//!   dropped by capacity eviction.
//! * **Bit-identity.**  A hit replays the stored result *and the stored
//!   [`QueryStats`]* verbatim.  Queries are deterministic at a fixed generation, so the
//!   replay equals what a fresh traversal would have produced — engines running with and
//!   without the cache produce identical protocol counters, which is what lets the
//!   monitoring engine adopt the cache without perturbing any measurement
//!   (`tests/engine_parity.rs`).
//! * **Concurrency.**  The cache is sharded into lock stripes selected by key hash; shard
//!   workers advancing different sessions contend only when their queries collide on a
//!   stripe.  Two racing misses on the same key both compute (identical) results and both
//!   insert — the second insert is a harmless overwrite.
//!
//! Hit/miss/insert/evict totals are kept as process-wide atomics ([`QueryCache::stats`]);
//! the engine snapshots them around each tick to surface per-tick deltas.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mpn_geom::Point;

use crate::gnn::{Aggregate, GnnNeighbor};
use crate::rtree::{PoiEntry, QueryStats};

/// Default number of lock stripes (power of two so the hash folds evenly).
pub const DEFAULT_CACHE_STRIPES: usize = 64;
/// Default bound on entries per stripe; past it an arbitrary entry is evicted.
pub const DEFAULT_STRIPE_CAPACITY: usize = 128;
/// Default quantization grid for bucketing query scalars.  Far below any meaningful
/// coordinate difference in the paper's kilometre-scale domains: queries that differ by
/// less share a bucket (and evict each other), queries that differ by more never meet.
pub const DEFAULT_CACHE_QUANTUM: f64 = 1e-6;

/// Cumulative counters of one [`QueryCache`] (process-wide, monotonically increasing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real traversal.
    pub misses: u64,
    /// Entries written (every miss inserts; racing misses may insert the same key twice).
    pub insertions: u64,
    /// Entries dropped to keep a stripe under its capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0.0 when none happened).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// The counter deltas since an `earlier` snapshot (saturating, so a stale snapshot
    /// never underflows).
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Which query shape a key belongs to.  Part of the key, so the three query families never
/// collide on content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum QueryKind {
    /// [`IndexView::top_k`](crate::IndexView::top_k) under an aggregate with a `k`.
    TopK { aggregate: Aggregate, k: usize },
    /// [`IndexView::candidates_within_user_radii`](crate::IndexView::candidates_within_user_radii).
    UserRadii,
    /// [`IndexView::candidates_within_sum_radius`](crate::IndexView::candidates_within_sum_radius).
    SumRadius,
}

/// A borrowed cache probe: the bucket (quantized) hash plus the exact scalars, staged in a
/// per-worker [`QueryScratch`](crate::QueryScratch) buffer so a lookup allocates nothing.
/// An owned [`CacheKey`] is only materialised from it on the miss path, for insertion.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbeKey<'a> {
    kind: QueryKind,
    generation: u64,
    /// Bucket selector: hash over kind, generation and *quantized* scalars.
    bucket: u64,
    /// Exact match material: every query scalar as its IEEE-754 bit pattern, in a fixed
    /// order (user coordinates, then radii / threshold).
    exact: &'a [u64],
}

/// A fully resolved, owned cache key as stored in a stripe.
#[derive(Debug)]
pub(crate) struct CacheKey {
    kind: QueryKind,
    generation: u64,
    bucket: u64,
    exact: Vec<u64>,
}

fn build_probe<'a>(
    kind: QueryKind,
    generation: u64,
    users: &[Point],
    extra: &[f64],
    quantum: f64,
    scratch: &'a mut Vec<u64>,
) -> ProbeKey<'a> {
    scratch.clear();
    scratch.reserve(users.len() * 2 + extra.len());
    for user in users {
        scratch.push(user.x.to_bits());
        scratch.push(user.y.to_bits());
    }
    scratch.extend(extra.iter().map(|v| v.to_bits()));

    // DefaultHasher is deterministic when built directly (fixed SipHash keys), unlike a
    // HashMap's per-instance RandomState — the bucket of a query must not depend on
    // which cache instance computes it.
    let mut hasher = DefaultHasher::new();
    kind.hash(&mut hasher);
    generation.hash(&mut hasher);
    for user in users {
        quantize(user.x, quantum).hash(&mut hasher);
        quantize(user.y, quantum).hash(&mut hasher);
    }
    for value in extra {
        quantize(*value, quantum).hash(&mut hasher);
    }
    let bucket = hasher.finish();
    ProbeKey { kind, generation, bucket, exact: scratch }
}

impl CacheKey {
    fn matches(&self, probe: ProbeKey<'_>) -> bool {
        self.kind == probe.kind && self.generation == probe.generation && self.exact == probe.exact
    }
}

impl From<ProbeKey<'_>> for CacheKey {
    fn from(probe: ProbeKey<'_>) -> Self {
        Self {
            kind: probe.kind,
            generation: probe.generation,
            bucket: probe.bucket,
            exact: probe.exact.to_vec(),
        }
    }
}

/// Snaps a scalar to its grid cell index.  Non-finite values collapse onto sentinel cells —
/// the exact-match check still separates them.
fn quantize(value: f64, quantum: f64) -> i64 {
    if value.is_finite() {
        (value / quantum).round() as i64
    } else if value.is_nan() {
        i64::MIN
    } else if value > 0.0 {
        i64::MAX
    } else {
        i64::MIN + 1
    }
}

/// What a cache slot stores: the query's full result plus the traversal statistics it cost,
/// replayed verbatim on a hit.
#[derive(Debug, Clone)]
enum Payload {
    Neighbors(Vec<GnnNeighbor>, QueryStats),
    Entries(Vec<PoiEntry>, QueryStats),
}

/// One lock stripe: open-addressed on the key's hash, storing the full key for the
/// exact-match check.
type Stripe = Mutex<HashMap<u64, (CacheKey, Payload)>>;

/// A sharded, lock-striped, generation-keyed result cache shared by every session
/// monitoring the same world.  See the [module docs](self) for keying, invalidation and the
/// bit-identity contract.
#[derive(Debug)]
pub struct QueryCache {
    stripes: Box<[Stripe]>,
    quantum: f64,
    stripe_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryCache {
    /// Creates a cache with the default stripe count, per-stripe capacity and quantum.
    #[must_use]
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_CACHE_STRIPES)
    }

    /// Creates a cache with `stripes` lock stripes (clamped to at least 1).
    #[must_use]
    pub fn with_stripes(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            quantum: DEFAULT_CACHE_QUANTUM,
            stripe_capacity: DEFAULT_STRIPE_CAPACITY,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Sets the quantization grid for bucketing (clamped to a positive value).
    #[must_use]
    pub fn with_quantum(mut self, quantum: f64) -> Self {
        self.quantum = if quantum > 0.0 { quantum } else { DEFAULT_CACHE_QUANTUM };
        self
    }

    /// Sets the per-stripe entry bound (clamped to at least 1).
    #[must_use]
    pub fn with_stripe_capacity(mut self, capacity: usize) -> Self {
        self.stripe_capacity = capacity.max(1);
        self
    }

    /// The quantization grid used for bucketing.
    #[must_use]
    pub fn quantum(&self) -> f64 {
        self.quantum
    }

    /// Cumulative hit/miss/insert/evict counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached entries across all stripes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| lock(s).is_empty())
    }

    /// Drops every entry (counters are kept — they are lifetime totals).
    pub fn clear(&self) {
        for stripe in self.stripes.iter() {
            lock(stripe).clear();
        }
    }

    pub(crate) fn top_k_probe<'a>(
        &self,
        generation: u64,
        users: &[Point],
        aggregate: Aggregate,
        k: usize,
        scratch: &'a mut Vec<u64>,
    ) -> ProbeKey<'a> {
        build_probe(QueryKind::TopK { aggregate, k }, generation, users, &[], self.quantum, scratch)
    }

    pub(crate) fn user_radii_probe<'a>(
        &self,
        generation: u64,
        users: &[Point],
        radii: &[f64],
        scratch: &'a mut Vec<u64>,
    ) -> ProbeKey<'a> {
        build_probe(QueryKind::UserRadii, generation, users, radii, self.quantum, scratch)
    }

    pub(crate) fn sum_radius_probe<'a>(
        &self,
        generation: u64,
        users: &[Point],
        threshold: f64,
        scratch: &'a mut Vec<u64>,
    ) -> ProbeKey<'a> {
        build_probe(QueryKind::SumRadius, generation, users, &[threshold], self.quantum, scratch)
    }

    /// Looks `probe` up and, on a hit, copies the cached neighbours into `out` (clearing it
    /// first) — no allocation once `out`'s capacity is warm.
    pub(crate) fn get_neighbors_into(
        &self,
        probe: ProbeKey<'_>,
        out: &mut Vec<GnnNeighbor>,
    ) -> Option<QueryStats> {
        self.lookup(probe, |payload| match payload {
            Payload::Neighbors(neighbors, stats) => {
                out.clear();
                out.extend_from_slice(neighbors);
                *stats
            }
            Payload::Entries(..) => unreachable!("kind is part of the key"),
        })
    }

    /// Looks `probe` up and, on a hit, copies out the first two cached neighbours — the
    /// Circle-MSR fast path, allocation-free on both hit and lookup.
    #[allow(clippy::type_complexity)]
    pub(crate) fn get_top2(
        &self,
        probe: ProbeKey<'_>,
    ) -> Option<(Option<GnnNeighbor>, Option<GnnNeighbor>, QueryStats)> {
        self.lookup(probe, |payload| match payload {
            Payload::Neighbors(neighbors, stats) => {
                (neighbors.first().copied(), neighbors.get(1).copied(), *stats)
            }
            Payload::Entries(..) => unreachable!("kind is part of the key"),
        })
    }

    /// Looks `probe` up and, on a hit, copies the cached candidate entries into `out`
    /// (clearing it first).
    pub(crate) fn get_entries_into(
        &self,
        probe: ProbeKey<'_>,
        out: &mut Vec<PoiEntry>,
    ) -> Option<QueryStats> {
        self.lookup(probe, |payload| match payload {
            Payload::Entries(entries, stats) => {
                out.clear();
                out.extend_from_slice(entries);
                *stats
            }
            Payload::Neighbors(..) => unreachable!("kind is part of the key"),
        })
    }

    pub(crate) fn put_neighbors(
        &self,
        probe: ProbeKey<'_>,
        neighbors: &[GnnNeighbor],
        stats: QueryStats,
    ) {
        self.put(probe.into(), Payload::Neighbors(neighbors.to_vec(), stats));
    }

    pub(crate) fn put_entries(&self, probe: ProbeKey<'_>, entries: &[PoiEntry], stats: QueryStats) {
        self.put(probe.into(), Payload::Entries(entries.to_vec(), stats));
    }

    fn stripe(&self, bucket: u64) -> &Mutex<HashMap<u64, (CacheKey, Payload)>> {
        &self.stripes[(bucket % self.stripes.len() as u64) as usize]
    }

    /// One direct-mapped lookup: on a hit, `read` extracts whatever the caller needs from
    /// the payload *under the stripe lock* (a copy into a scratch buffer, never a fresh
    /// allocation of the whole payload).
    fn lookup<R>(&self, probe: ProbeKey<'_>, read: impl FnOnce(&Payload) -> R) -> Option<R> {
        let stripe = lock(self.stripe(probe.bucket));
        match stripe.get(&probe.bucket) {
            // The bucket is direct-mapped: a slot whose exact scalars differ (a quantization
            // or hash collision) is a miss, never a wrong answer.
            Some((stored, payload)) if stored.matches(probe) => {
                let out = read(payload);
                drop(stripe);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            _ => {
                drop(stripe);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: CacheKey, payload: Payload) {
        let mut stripe = lock(self.stripe(key.bucket));
        if stripe.len() >= self.stripe_capacity && !stripe.contains_key(&key.bucket) {
            // Crude eviction: drop an arbitrary entry.  Entries of dead generations are the
            // common victims in practice — they are never looked up again, only displaced.
            if let Some(&victim) = stripe.keys().next() {
                stripe.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        stripe.insert(key.bucket, (key, payload));
        drop(stripe);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::RTree;
    use crate::world::WorldView;

    fn grid_tree(n: usize) -> RTree {
        let side = (n as f64).sqrt().ceil() as usize;
        let points: Vec<Point> =
            (0..n).map(|i| Point::new((i % side) as f64, (i / side) as f64)).collect();
        RTree::bulk_load(&points)
    }

    #[test]
    fn hits_replay_results_and_stats_verbatim() {
        let world = WorldView::new(grid_tree(100));
        let cache = QueryCache::new();
        let users = [Point::new(3.0, 4.0), Point::new(6.0, 2.0)];

        let cached_view = world.view().with_cache(&cache);
        let (fresh, fresh_stats) = world.view().top_k(&users, Aggregate::Max, 5);
        let (miss, miss_stats) = cached_view.top_k(&users, Aggregate::Max, 5);
        let (hit, hit_stats) = cached_view.top_k(&users, Aggregate::Max, 5);

        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        for (got, want) in [(&miss, &fresh), (&hit, &fresh)] {
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(g.entry.id, w.entry.id);
                assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "bit-identical distances");
            }
        }
        assert_eq!(miss_stats, fresh_stats);
        assert_eq!(hit_stats, fresh_stats, "a hit replays the original traversal stats");
    }

    #[test]
    fn all_three_query_families_cache_independently() {
        let world = WorldView::new(grid_tree(64));
        let cache = QueryCache::new();
        let view = world.view().with_cache(&cache);
        let users = [Point::new(2.0, 2.0), Point::new(5.0, 5.0)];

        let _ = view.top_k(&users, Aggregate::Sum, 3);
        let _ = view.candidates_within_user_radii(&users, &[4.0, 4.0]);
        let _ = view.candidates_within_sum_radius(&users, 9.0);
        assert_eq!(cache.stats().misses, 3, "three distinct keys");
        let _ = view.top_k(&users, Aggregate::Sum, 3);
        let _ = view.candidates_within_user_radii(&users, &[4.0, 4.0]);
        let _ = view.candidates_within_sum_radius(&users, 9.0);
        assert_eq!(cache.stats().hits, 3);

        // Same scalars, different k / aggregate / radii: distinct keys, not wrong answers.
        let (a, _) = view.top_k(&users, Aggregate::Max, 3);
        let (b, _) = view.top_k(&users, Aggregate::Sum, 4);
        assert_eq!(cache.stats().misses, 5);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn a_generation_bump_invalidates_without_any_bookkeeping() {
        let mut world = WorldView::new(grid_tree(49));
        let cache = QueryCache::new();
        let users = [Point::new(3.4, 3.0)];

        let (before, _) = world.view().with_cache(&cache).top_k(&users, Aggregate::Max, 1);
        world.insert(Point::new(3.5, 3.0)); // closer than any grid point
        let (after, _) = world.view().with_cache(&cache).top_k(&users, Aggregate::Max, 1);
        assert_ne!(before[0].entry.id, after[0].entry.id, "the new POI wins");
        assert_eq!(cache.stats().hits, 0, "the generation bump turned the lookup into a miss");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn quantized_neighbors_share_a_bucket_but_never_an_answer() {
        let world = WorldView::new(grid_tree(100));
        let cache = QueryCache::new().with_quantum(0.5);
        let view = world.view().with_cache(&cache);

        // Two queries within one 0.5-cell: the second displaces the first (direct-mapped),
        // both compute fresh results.
        let (a, _) = view.top_k(&[Point::new(3.0, 3.0)], Aggregate::Max, 1);
        let (b, _) = view.top_k(&[Point::new(3.1, 3.0)], Aggregate::Max, 1);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(a[0].entry.id, b[0].entry.id, "same nearest grid point");
        let (_, stats_a) = world.view().top_k(&[Point::new(3.1, 3.0)], Aggregate::Max, 1);
        let (b2, stats_b2) = view.top_k(&[Point::new(3.1, 3.0)], Aggregate::Max, 1);
        assert_eq!(cache.stats().hits, 1, "the exact repeat hits");
        assert_eq!(b2[0].entry.id, b[0].entry.id);
        assert_eq!(stats_b2, stats_a);
    }

    #[test]
    fn stripe_capacity_bounds_the_cache() {
        let world = WorldView::new(grid_tree(100));
        let cache = QueryCache::with_stripes(1).with_stripe_capacity(4);
        let view = world.view().with_cache(&cache);
        for i in 0..32 {
            let _ = view.top_k(&[Point::new(i as f64, 0.0)], Aggregate::Max, 2);
        }
        assert!(cache.len() <= 4, "one stripe capped at 4 entries, got {}", cache.len());
        assert_eq!(cache.stats().evictions, 28);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 32, "counters survive clear");
    }
}
