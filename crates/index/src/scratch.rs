//! Per-worker query scratch arenas: reusable buffers for the query hot path.
//!
//! Every cached index query used to allocate on *every* call — a `Vec<u64>` of exact key
//! bits to probe the [`QueryCache`](crate::QueryCache), and a cloned payload vector on a
//! hit.  At fleet scale that is millions of short-lived allocations per tick for queries
//! whose answers are already resident.  [`QueryScratch`] hoists those buffers out of the
//! call: the probe key and the kNN staging vector live in a thread-keyed arena and are
//! reused by every query the thread runs, so a warm-cache query performs **zero heap
//! allocations** end to end (see [`IndexView::top2`](crate::IndexView::top2) and the
//! `*_into` query variants).
//!
//! # Why the scratch is per *worker*
//!
//! Queries run on the monitoring engine's pool workers, which persist across ticks
//! (`mpn-pool` spawns them once and parks them between scopes).  Keying the arena by thread
//! therefore means each worker warms its buffers once and keeps them for the lifetime of
//! the fleet — there is no per-tick arena churn and no cross-worker synchronisation, because
//! a scratch is only ever touched by the thread that owns it.  A scoped-thread executor gets
//! fresh threads (and cold arenas) every tick, which is one more reason the persistent pool
//! is the default.
//!
//! # What stays on the call stack
//!
//! The candidate walks ([`RTree::candidates_within_user_radii_into`]
//! (crate::RTree::candidates_within_user_radii_into) and the sum-radius variant) need a
//! visit stack; it is the program stack — the walk recurses, bounded by the R-tree height
//! (a handful of levels even at millions of POIs) — so no heap stack is allocated at all.
//! The best-first kNN frontier still allocates per *traversal* because its items borrow
//! tree nodes, but a traversal only happens on a cache miss, which steady-state ticks
//! never take.

use std::cell::Cell;

use crate::gnn::GnnNeighbor;

/// Reusable per-thread buffers for the query hot path.
///
/// Obtain one via [`with_scratch`]; the buffers keep their capacity between queries, which
/// is the whole point.  All fields are crate-internal — the scratch is plumbing, not API.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Exact scalar bits of the cache probe key (see `cache::ProbeKey`).
    pub(crate) probe: Vec<u64>,
    /// kNN result staging: uncached traversals write here before the caller copies out the
    /// prefix it needs (e.g. the top-2 of Circle-MSR).
    pub(crate) neighbors: Vec<GnnNeighbor>,
}

thread_local! {
    static SCRATCH: Cell<QueryScratch> = Cell::new(QueryScratch::default());
}

/// Runs `f` with this thread's [`QueryScratch`].
///
/// The scratch is taken out of thread-local storage for the duration of the call (a nested
/// `with_scratch` sees a fresh, empty scratch — correct, just unamortised) and put back
/// afterwards with whatever capacity the call grew.
pub fn with_scratch<R>(f: impl FnOnce(&mut QueryScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut scratch = cell.take();
        let out = f(&mut scratch);
        cell.set(scratch);
        out
    })
}
