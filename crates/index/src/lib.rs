//! Spatial indexing of the POI set: an R-tree plus group nearest-neighbour (GNN) search.
//!
//! The MPN server (Fig. 3 of the paper) manages the points of interest in an R-tree.  Three
//! query capabilities are needed by the safe-region algorithms:
//!
//! 1. **Top-k group nearest neighbours** under the MAX or SUM aggregate (`FindMaxGNN` /
//!    `FindSumGNN` of Papadias et al., used by Algorithm 1 line 1 and by the buffering
//!    optimisation of Section 5.4) — see [`gnn`].
//! 2. **Candidate retrieval with per-user radius pruning** (Theorem 3 / Theorem 6 and the MBR
//!    pruning of Fig. 10) — see [`RTree::candidates_within_user_radii`] and
//!    [`RTree::candidates_within_sum_radius`].
//! 3. Ordinary spatial queries (nearest neighbour, range) used by tests, examples and the
//!    workload tooling.
//!
//! The R-tree is implemented from scratch: STR bulk loading for static POI sets, quadratic-split
//! insertion for incremental updates, and best-first traversal with a binary heap for all
//! distance-ranked queries.  Node accesses are counted so experiments can report index I/O.
//!
//! Dynamic POI sets are served by [`world`]: a [`WorldView`] wraps an immutable base tree in a
//! generation-stamped insert/delete overlay (compacted back into the base past a threshold),
//! and [`IndexView`] is the `Copy` query handle — over a plain tree or a world — that the
//! engine layers consume.
//!
//! Fleets full of near-duplicate groups can share their query results through [`cache`]: a
//! lock-striped [`QueryCache`] keyed by (quantized query point, k, world generation) is
//! attached per view ([`IndexView::with_cache`]) and replays results and [`QueryStats`]
//! bit-identically; the generation key makes invalidation free — a content change simply
//! turns every older entry into a miss.

#![forbid(unsafe_code)]

pub mod cache;
pub mod gnn;
pub mod rtree;
pub mod scratch;
pub mod world;

pub use cache::{
    CacheStats, QueryCache, DEFAULT_CACHE_QUANTUM, DEFAULT_CACHE_STRIPES, DEFAULT_STRIPE_CAPACITY,
};
pub use gnn::{Aggregate, GnnNeighbor, GnnSearch};
pub use rtree::{PoiEntry, QueryStats, RTree, RTreeConfig};
pub use scratch::{with_scratch, QueryScratch};
pub use world::{IndexView, WorldView, DEFAULT_COMPACTION_THRESHOLD};
