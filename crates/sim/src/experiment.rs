//! Workload-level experiment driver: runs every user group of a workload and averages the
//! metrics, which is exactly how the paper reports its numbers ("we partition each trajectory
//! set into 10 user groups and then report the average performance on these user groups").

use std::time::Duration;

use mpn_index::RTree;
use mpn_mobility::GroupWorkload;

use crate::engine::MonitoringEngine;
use crate::metrics::MonitoringMetrics;
use crate::monitor::{MonitorConfig, TrajectoryFeed};

/// Averaged results of running one method over a whole workload.
#[derive(Debug, Clone)]
pub struct WorkloadSummary {
    /// Number of user groups that were monitored.
    pub groups: usize,
    /// Mean update frequency across groups.
    pub update_frequency: f64,
    /// Mean number of updates per group.
    pub updates_per_group: f64,
    /// Mean CPU time per safe-region computation.
    pub mean_compute_time: Duration,
    /// Mean packets per timestamp across groups.
    pub packets_per_timestamp: f64,
    /// Mean total packets per group.
    pub packets_per_group: f64,
    /// Mean R-tree queries per safe-region computation.
    pub rtree_queries_per_update: f64,
    /// Per-group metrics for detailed inspection.
    pub per_group: Vec<MonitoringMetrics>,
}

impl WorkloadSummary {
    /// Formats the summary as one CSV row: `freq,packets/ts,mean_time_us`.
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{:.6},{:.4},{:.1}",
            self.update_frequency,
            self.packets_per_timestamp,
            self.mean_compute_time.as_secs_f64() * 1e6
        )
    }
}

/// Runs one monitoring configuration over every group of the workload and averages the results.
///
/// Since the stateful refactor this drives a [`MonitoringEngine`] with a **single shard**:
/// the paper's figures report per-update CPU time, and timing safe-region computations while
/// other shards compete for cores would inflate those numbers relative to the historical
/// serial replay.  Counters and timings are therefore both comparable to the pre-refactor
/// driver.  Use [`run_workload_sharded`] when only the protocol counters matter and
/// wall-clock speed does.
#[must_use]
pub fn run_workload(
    tree: &RTree,
    workload: &GroupWorkload,
    config: &MonitorConfig,
) -> WorkloadSummary {
    run_workload_sharded(tree, workload, config, 1)
}

/// Like [`run_workload`] but with an explicit shard count.
///
/// With more than one shard the protocol counters (updates, packets, R-tree work) are
/// unchanged — groups are independent — but the per-update CPU times are measured under
/// multi-core contention and should not be compared against serial runs.
///
/// The owned-session engine shares its POI index via `Arc` and replays each group through a
/// [`TrajectoryFeed`], so the tree and the workload's groups are cloned once per call — a
/// one-off memcpy that is negligible against the monitoring compute it feeds.
#[must_use]
pub fn run_workload_sharded(
    tree: &RTree,
    workload: &GroupWorkload,
    config: &MonitorConfig,
    num_shards: usize,
) -> WorkloadSummary {
    let mut engine = MonitoringEngine::new(tree.clone(), num_shards);
    for group in workload.iter() {
        engine.register(TrajectoryFeed::from_group(group), *config);
    }
    engine.run_to_completion();
    summarize(engine.into_group_metrics())
}

/// Averages a set of per-group metrics into a [`WorkloadSummary`].
#[must_use]
pub fn summarize(per_group: Vec<MonitoringMetrics>) -> WorkloadSummary {
    let groups = per_group.len().max(1);
    let update_frequency =
        per_group.iter().map(MonitoringMetrics::update_frequency).sum::<f64>() / groups as f64;
    let updates_per_group = per_group.iter().map(|m| m.updates as f64).sum::<f64>() / groups as f64;
    let packets_per_timestamp =
        per_group.iter().map(MonitoringMetrics::packets_per_timestamp).sum::<f64>() / groups as f64;
    let packets_per_group =
        per_group.iter().map(|m| m.packets() as f64).sum::<f64>() / groups as f64;
    let total_updates: usize = per_group.iter().map(|m| m.updates).sum();
    let total_time: Duration = per_group.iter().map(|m| m.compute_time).sum();
    let mean_compute_time =
        if total_updates == 0 { Duration::ZERO } else { total_time / total_updates as u32 };
    let total_queries: usize = per_group.iter().map(|m| m.stats.rtree_queries).sum();
    let rtree_queries_per_update =
        if total_updates == 0 { 0.0 } else { total_queries as f64 / total_updates as f64 };
    WorkloadSummary {
        groups: per_group.len(),
        update_frequency,
        updates_per_group,
        mean_compute_time,
        packets_per_timestamp,
        packets_per_group,
        rtree_queries_per_update,
        per_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_core::{Method, Objective};
    use mpn_mobility::poi::{clustered_pois, PoiConfig};
    use mpn_mobility::waypoint::{random_waypoint, WaypointConfig};
    use mpn_mobility::{partition_into_groups, Trajectory};

    fn workload(groups: usize, m: usize) -> (RTree, GroupWorkload) {
        let pois =
            clustered_pois(&PoiConfig { count: 600, domain: 1000.0, ..PoiConfig::default() }, 3);
        let config = WaypointConfig { domain: 1000.0, speed_limit: 8.0, timestamps: 200 };
        let trajectories: Vec<Trajectory> =
            (0..groups * m).map(|i| random_waypoint(&config, 400 + i as u64)).collect();
        (RTree::bulk_load(&pois), partition_into_groups(trajectories, m))
    }

    #[test]
    fn run_workload_averages_over_groups() {
        let (tree, workload) = workload(3, 2);
        let summary = run_workload(
            &tree,
            &workload,
            &MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(100),
        );
        assert_eq!(summary.groups, 3);
        assert_eq!(summary.per_group.len(), 3);
        assert!(summary.update_frequency > 0.0 && summary.update_frequency <= 1.0);
        assert!(summary.packets_per_timestamp > 0.0);
        assert!(summary.updates_per_group >= 1.0);
        assert!(summary.rtree_queries_per_update >= 1.0);
        let row = summary.csv_row();
        assert_eq!(row.split(',').count(), 3);
    }

    #[test]
    fn summarize_handles_the_empty_case() {
        let summary = summarize(Vec::new());
        assert_eq!(summary.groups, 0);
        assert_eq!(summary.update_frequency, 0.0);
        assert_eq!(summary.mean_compute_time, Duration::ZERO);
    }
}
