//! Metrics collected by a monitoring run: the three measures of Section 7.1, plus the
//! per-shard load counters of the fleet engine.

use std::time::Duration;

use mpn_core::ComputeStats;
use mpn_index::CacheStats;

use crate::engine::TickExecCounters;
use crate::message::Traffic;

/// Load snapshot of one engine shard (see
/// [`MonitoringEngine::shard_loads`](crate::MonitoringEngine::shard_loads)).
///
/// `weight` drives the engine's horizon-aware placement of new groups (remaining epochs over
/// the shard's sessions, open-horizon streams charged
/// [`OPEN_HORIZON_WEIGHT`](crate::engine::OPEN_HORIZON_WEIGHT)); `idle_ticks` counts the
/// ticks for which the shard's worker was *not* woken (every session finished, or none
/// registered), i.e. how much executor work the live-shard filter saved.  `starved_ticks`
/// counts ticks where the shard *was* woken but advanced nothing because every live session
/// starved for input — those shards still hold remaining work and a worker wake-up, so
/// placement must not confuse them with truly idle capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Index of the shard.
    pub shard: usize,
    /// Sessions currently registered on the shard (live or finished).
    pub occupancy: usize,
    /// Sessions that have not yet consumed their whole horizon.
    pub live: usize,
    /// Ticks during which the shard had no live session and was skipped by the executor.
    pub idle_ticks: usize,
    /// Ticks during which the shard was woken with live sessions but advanced none of them
    /// (all starved — typically slow-reporting clients).  Disjoint from `idle_ticks`.
    pub starved_ticks: usize,
    /// Remaining work: the sum of the sessions' remaining (or open-horizon) epoch weights.
    pub weight: usize,
}

impl ShardLoad {
    /// Whether the shard would be woken by the next tick.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.live > 0
    }
}

/// One coherent engine-wide snapshot: everything a
/// [`MonitoringEngine`](crate::MonitoringEngine) can report about itself, read in one call
/// ([`MonitoringEngine::report`](crate::MonitoringEngine::report)) instead of five
/// accessors.
///
/// This is the measurement substrate of the capacity harness (`mpn-bench`'s `capacity`
/// bin), the loadgen examples and any future tooling — each field maps onto one of the
/// "numbers that matter" for the paper's evaluation and the million-user north star:
///
/// * [`ticks`](EngineReport::ticks) — engine clock; with a wall-clock window this yields
///   **tick throughput** (epochs served per second).
/// * [`groups`](EngineReport::groups) / [`retired`](EngineReport::retired) /
///   [`reclaimed_users`](EngineReport::reclaimed_users) — fleet membership accounting:
///   live sessions, deregistered sessions whose metrics are still attributed to their id,
///   and the lifetime user total of epochs whose ids were reused.
/// * [`exec`](EngineReport::exec) — lifetime executor totals (batches, steals, imbalance,
///   cache traffic): how the work was scheduled, as opposed to what it computed.
/// * [`cache`](EngineReport::cache) — the shared [`QueryCache`](mpn_index::QueryCache)'s
///   cumulative counters (`None` when no cache is attached).
/// * [`shards`](EngineReport::shards) — per-shard [`ShardLoad`] (occupancy, live, idle /
///   starved ticks, remaining-work weight), in shard order.
/// * [`fleet`](EngineReport::fleet) — the merged [`MonitoringMetrics`] of every session,
///   including retired and reclaimed epochs: the §7.1 measures (update frequency,
///   per-update CPU time — percentiles via the batch
///   [`compute_time_percentiles`](MonitoringMetrics::compute_time_percentiles) — and
///   communication cost as packets / [`wire_bytes`](Traffic::wire_bytes)).
///
/// Building a report is O(fleet + total recorded updates) — the fleet metrics clone every
/// live session's per-update sample vector — so callers snapshot at phase boundaries (e.g.
/// warm-up end, measurement end) rather than per tick, and diff the cumulative counters.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Ticks executed so far (the engine clock).
    pub ticks: usize,
    /// Currently registered groups.
    pub groups: usize,
    /// Deregistered groups whose retired metrics are still attributed to their id.
    pub retired: usize,
    /// Lifetime users of past epochs whose ids were reused (no longer per-id attributable;
    /// their counters live on inside [`fleet`](EngineReport::fleet)).
    pub reclaimed_users: usize,
    /// Executor diagnostics accumulated over every tick (batches, steals, imbalance,
    /// query-cache hit/miss traffic).
    pub exec: TickExecCounters,
    /// Cumulative shared query-cache counters, when a cache is attached.
    pub cache: Option<CacheStats>,
    /// Per-shard load, in shard order.
    pub shards: Vec<ShardLoad>,
    /// Fleet-wide merged metrics (live + retired + reclaimed).
    pub fleet: MonitoringMetrics,
}

impl EngineReport {
    /// Batch per-update CPU-time percentiles of the fleet (one sort for all of them).
    ///
    /// Retired records are compacted, so the samples cover live sessions only; totals and
    /// means in [`fleet`](EngineReport::fleet) cover everything.
    #[must_use]
    pub fn update_time_percentiles(&self, qs: &[f64]) -> Vec<Duration> {
        self.fleet.compute_time_percentiles(qs)
    }

    /// Total bytes on the wire under the §7.1 packet cost model.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.fleet.traffic.wire_bytes()
    }
}

/// Batch percentile extraction over arbitrary samples: sorts one scratch copy and reads
/// every requested percentile (0–100) from it, so asking for p50/p95/p99 pays a single
/// O(n log n) sort instead of one per percentile.
///
/// Percentile `q` reads the element at rank `round(q/100 · (n−1))` of the sorted samples —
/// the same rule [`MonitoringMetrics::compute_time_percentile`] has always used.  An empty
/// sample set yields `T::default()` ([`Duration::ZERO`], `0.0`, …) for every percentile.
///
/// # Panics
/// Panics when the samples are not totally ordered (e.g. a NaN latency).
#[must_use]
pub fn percentiles<T: Copy + PartialOrd + Default>(samples: &[T], qs: &[f64]) -> Vec<T> {
    if samples.is_empty() {
        return vec![T::default(); qs.len()];
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| {
        a.partial_cmp(b).expect("percentile samples must be totally ordered")
    });
    qs.iter()
        .map(|q| {
            sorted[((q.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64).round() as usize]
        })
        .collect()
}

/// Aggregated metrics of one monitoring run (one user group over one trajectory horizon).
#[derive(Debug, Clone)]
pub struct MonitoringMetrics {
    /// Number of users in the monitored group.
    pub group_size: usize,
    /// Number of replayed timestamps after the initial registration.
    pub timestamps: usize,
    /// Number of safe-region recomputations (including the initial one).
    pub updates: usize,
    /// Total CPU time spent computing safe regions.
    pub compute_time: Duration,
    /// Per-update CPU times (used for percentiles in reports).
    pub update_times: Vec<Duration>,
    /// Accumulated work counters of every safe-region computation.
    pub stats: ComputeStats,
    /// Message and packet tally.
    pub traffic: Traffic,
}

impl MonitoringMetrics {
    /// Creates an empty metrics record for a group of the given size.
    #[must_use]
    pub fn new(group_size: usize) -> Self {
        Self {
            group_size,
            timestamps: 0,
            updates: 0,
            compute_time: Duration::ZERO,
            update_times: Vec::new(),
            stats: ComputeStats::default(),
            traffic: Traffic::default(),
        }
    }

    /// Records one safe-region computation.
    pub fn record_update(&mut self, elapsed: Duration, stats: &ComputeStats) {
        self.updates += 1;
        self.compute_time += elapsed;
        self.update_times.push(elapsed);
        self.stats.absorb(stats);
    }

    /// Update frequency: recomputations per monitored timestamp (the paper's primary measure).
    #[must_use]
    pub fn update_frequency(&self) -> f64 {
        if self.timestamps == 0 {
            return 0.0;
        }
        self.updates as f64 / self.timestamps as f64
    }

    /// Mean CPU time per safe-region computation.
    #[must_use]
    pub fn mean_compute_time(&self) -> Duration {
        if self.updates == 0 {
            return Duration::ZERO;
        }
        self.compute_time / self.updates as u32
    }

    /// Total number of TCP packets exchanged.
    #[must_use]
    pub fn packets(&self) -> usize {
        self.traffic.packets
    }

    /// Packets per monitored timestamp (the communication-cost series of the figures).
    #[must_use]
    pub fn packets_per_timestamp(&self) -> f64 {
        if self.timestamps == 0 {
            return 0.0;
        }
        self.traffic.packets as f64 / self.timestamps as f64
    }

    /// The `q`-th percentile (0–100) of per-update CPU times.
    ///
    /// Each call pays one sort of the sample vector; a report that reads several
    /// percentiles uses the batch
    /// [`compute_time_percentiles`](MonitoringMetrics::compute_time_percentiles), which
    /// sorts once for all of them — the difference between milliseconds and minutes on a
    /// million-update fleet record.
    #[must_use]
    pub fn compute_time_percentile(&self, q: f64) -> Duration {
        self.compute_time_percentiles(&[q])[0]
    }

    /// Batch percentiles (0–100 each) of the per-update CPU times: one sort of the samples
    /// serves every requested percentile, in request order.
    ///
    /// Returns [`Duration::ZERO`] for every entry when no updates were recorded (or the
    /// record was compacted); each returned value equals the corresponding
    /// [`compute_time_percentile`](MonitoringMetrics::compute_time_percentile) result.
    #[must_use]
    pub fn compute_time_percentiles(&self, qs: &[f64]) -> Vec<Duration> {
        percentiles(&self.update_times, qs)
    }

    /// Drops the raw per-update CPU samples, keeping every scalar total (updates, compute
    /// time, work counters, traffic).
    ///
    /// Used for records retained indefinitely — a monitoring engine keeps the metrics of
    /// every deregistered group for fleet accounting, and `update_times` would otherwise
    /// grow without bound as the fleet churns.  Percentiles
    /// ([`compute_time_percentile`](MonitoringMetrics::compute_time_percentile)) of a
    /// compacted record are [`Duration::ZERO`]; means and totals are unaffected.
    #[must_use]
    pub fn into_compact(mut self) -> Self {
        self.update_times = Vec::new();
        self
    }

    /// Merges another run's metrics into this one (used to average over user groups).
    pub fn absorb(&mut self, other: &MonitoringMetrics) {
        self.timestamps += other.timestamps;
        self.updates += other.updates;
        self.compute_time += other.compute_time;
        self.update_times.extend_from_slice(&other.update_times);
        self.stats.absorb(&other.stats);
        self.traffic.absorb(&other.traffic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_and_means_handle_empty_runs() {
        let m = MonitoringMetrics::new(3);
        assert_eq!(m.update_frequency(), 0.0);
        assert_eq!(m.mean_compute_time(), Duration::ZERO);
        assert_eq!(m.packets_per_timestamp(), 0.0);
        assert_eq!(m.compute_time_percentile(50.0), Duration::ZERO);
    }

    #[test]
    fn record_update_accumulates() {
        let mut m = MonitoringMetrics::new(2);
        m.timestamps = 10;
        m.record_update(Duration::from_millis(4), &ComputeStats::default());
        m.record_update(Duration::from_millis(6), &ComputeStats::default());
        assert_eq!(m.updates, 2);
        assert_eq!(m.update_frequency(), 0.2);
        assert_eq!(m.mean_compute_time(), Duration::from_millis(5));
        assert_eq!(m.compute_time_percentile(0.0), Duration::from_millis(4));
        assert_eq!(m.compute_time_percentile(100.0), Duration::from_millis(6));
    }

    #[test]
    fn into_compact_keeps_totals_and_drops_samples() {
        let mut m = MonitoringMetrics::new(2);
        m.timestamps = 10;
        m.record_update(Duration::from_millis(4), &ComputeStats::default());
        m.record_update(Duration::from_millis(6), &ComputeStats::default());
        let compact = m.into_compact();
        assert_eq!(compact.updates, 2);
        assert_eq!(compact.compute_time, Duration::from_millis(10));
        assert_eq!(compact.mean_compute_time(), Duration::from_millis(5));
        assert!(compact.update_times.is_empty());
        assert_eq!(compact.compute_time_percentile(95.0), Duration::ZERO);
    }

    #[test]
    fn batch_percentiles_match_single_calls() {
        let mut m = MonitoringMetrics::new(4);
        // Deliberately unsorted recording order; the batch sorts once internally.
        for ms in [9u64, 1, 7, 3, 5, 2, 8, 4, 6, 10] {
            m.record_update(Duration::from_millis(ms), &ComputeStats::default());
        }
        let qs = [0.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0];
        let batch = m.compute_time_percentiles(&qs);
        for (q, batched) in qs.iter().zip(&batch) {
            assert_eq!(*batched, m.compute_time_percentile(*q), "q={q}");
        }
        // Empty query list and empty recording both behave.
        assert!(m.compute_time_percentiles(&[]).is_empty());
        let empty = MonitoringMetrics::new(1);
        assert_eq!(empty.compute_time_percentiles(&[50.0, 99.0]), vec![Duration::ZERO; 2]);
    }

    #[test]
    fn free_percentiles_sorts_once_over_any_samples() {
        let samples = [4.0f64, 1.0, 3.0, 2.0];
        assert_eq!(percentiles(&samples, &[0.0, 50.0, 100.0]), vec![1.0, 3.0, 4.0]);
        // Out-of-range quantiles clamp; empty samples yield defaults.
        assert_eq!(percentiles(&samples, &[-5.0, 150.0]), vec![1.0, 4.0]);
        assert_eq!(percentiles::<f64>(&[], &[50.0]), vec![0.0]);
    }

    #[test]
    fn absorb_merges_runs() {
        let mut a = MonitoringMetrics::new(2);
        a.timestamps = 100;
        a.record_update(Duration::from_millis(1), &ComputeStats::default());
        let mut b = MonitoringMetrics::new(2);
        b.timestamps = 50;
        b.record_update(Duration::from_millis(3), &ComputeStats::default());
        b.record_update(Duration::from_millis(3), &ComputeStats::default());
        a.absorb(&b);
        assert_eq!(a.timestamps, 150);
        assert_eq!(a.updates, 3);
        assert_eq!(a.update_times.len(), 3);
        assert!((a.update_frequency() - 0.02).abs() < 1e-12);
    }
}
