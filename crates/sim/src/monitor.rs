//! The client–server monitoring loop.
//!
//! [`run_monitoring`] replays a group of trajectories timestamp by timestamp against an
//! [`MpnServer`] and accounts for every message of the protocol in Fig. 3:
//!
//! * at `t = 0` the server computes the initial answer and notifies every user;
//! * afterwards, whenever at least one user has left her safe region, the violating users
//!   report their locations (step 1), the server probes the remaining users (step 2), and a
//!   fresh answer with new safe regions is pushed to everyone (step 3).
//!
//! The run records the paper's three measures: update frequency, CPU time per safe-region
//! computation, and communication cost in packets.

use std::time::Instant;

use mpn_core::{Answer, Method, MpnServer, Objective};
use mpn_geom::{HeadingPredictor, Point};
use mpn_index::RTree;
use mpn_mobility::Trajectory;

use crate::message::{Message, Traffic};
use crate::metrics::MonitoringMetrics;

/// Configuration of a monitoring run.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// MAX (MPN) or SUM (Sum-MPN) objective.
    pub objective: Objective,
    /// Safe-region method (Circle, Tile, Tile-D, Tile-D-b).
    pub method: Method,
    /// Whether tile regions are shipped with the lossless compression (the paper's default).
    pub compress_regions: bool,
    /// Smoothing factor of the per-user heading predictor feeding the directed ordering.
    pub heading_smoothing: f64,
    /// Optional cap on the number of timestamps replayed (useful for quick experiments);
    /// `None` replays the full common horizon of the group.
    pub max_timestamps: Option<usize>,
}

impl MonitorConfig {
    /// A run with the given objective and method and default remaining settings.
    #[must_use]
    pub fn new(objective: Objective, method: Method) -> Self {
        Self {
            objective,
            method,
            compress_regions: true,
            heading_smoothing: 0.3,
            max_timestamps: None,
        }
    }

    /// Limits the number of replayed timestamps.
    #[must_use]
    pub fn with_max_timestamps(mut self, limit: usize) -> Self {
        self.max_timestamps = Some(limit);
        self
    }
}

/// Replays one user group against the server and collects metrics.
///
/// # Panics
/// Panics when the group is empty or the POI tree is empty.
#[must_use]
pub fn run_monitoring(tree: &RTree, group: &[Trajectory], config: &MonitorConfig) -> MonitoringMetrics {
    assert!(!group.is_empty(), "monitoring requires at least one user trajectory");
    assert!(!tree.is_empty(), "monitoring requires a non-empty POI set");

    let horizon = group.iter().map(Trajectory::len).min().unwrap_or(0);
    let horizon = config.max_timestamps.map_or(horizon, |cap| horizon.min(cap));
    let server = MpnServer::new(tree, config.objective, config.method);

    let mut metrics = MonitoringMetrics::new(group.len());
    let mut traffic = Traffic::default();
    let mut predictors: Vec<HeadingPredictor> =
        group.iter().map(|_| HeadingPredictor::new(config.heading_smoothing)).collect();

    // Initial computation at t = 0: every user reports her location once and receives the
    // first answer (this is the query registration, counted like any other update).
    let mut locations: Vec<Point> = group.iter().map(|t| t.at(0)).collect();
    for predictor in predictors.iter_mut().zip(&locations) {
        predictor.0.observe(*predictor.1);
    }
    for _ in group {
        traffic.record(Message::location_report());
    }
    let mut answer = compute_update(&server, &locations, &predictors, &mut metrics);
    for region in &answer.regions {
        traffic.record(Message::result_notification(region, config.compress_regions));
    }

    for t in 1..horizon {
        metrics.timestamps += 1;
        locations.clear();
        locations.extend(group.iter().map(|traj| traj.at(t)));
        for (predictor, loc) in predictors.iter_mut().zip(&locations) {
            predictor.observe(*loc);
        }

        let violators = answer.violators(&locations);
        if violators.is_empty() {
            continue;
        }
        // Step 1: each violating user reports her location.
        for _ in &violators {
            traffic.record(Message::location_report());
        }
        // Step 2: the server probes every other user, who replies.
        let others = group.len() - violators.len();
        for _ in 0..others {
            traffic.record(Message::probe());
            traffic.record(Message::probe_reply());
        }
        // Step 3: recompute and notify everyone.
        answer = compute_update(&server, &locations, &predictors, &mut metrics);
        for region in &answer.regions {
            traffic.record(Message::result_notification(region, config.compress_regions));
        }
    }

    metrics.traffic = traffic;
    metrics
}

fn compute_update(
    server: &MpnServer<'_>,
    locations: &[Point],
    predictors: &[HeadingPredictor],
    metrics: &mut MonitoringMetrics,
) -> Answer {
    let headings: Vec<Option<f64>> = predictors.iter().map(HeadingPredictor::predicted).collect();
    let start = Instant::now();
    let answer = server.compute_with_headings(locations, Some(&headings));
    let elapsed = start.elapsed();
    metrics.record_update(elapsed, &answer.stats);
    debug_assert!(answer.all_inside(locations), "fresh safe regions must contain the users");
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_mobility::waypoint::{random_waypoint, WaypointConfig};
    use mpn_mobility::poi::{clustered_pois, PoiConfig};

    fn workload() -> (RTree, Vec<Trajectory>) {
        let pois = clustered_pois(
            &PoiConfig { count: 800, domain: 1000.0, ..PoiConfig::default() },
            11,
        );
        let tree = RTree::bulk_load(&pois);
        let config = WaypointConfig { domain: 1000.0, speed_limit: 6.0, timestamps: 400 };
        let group: Vec<Trajectory> = (0..3).map(|i| random_waypoint(&config, 50 + i)).collect();
        (tree, group)
    }

    #[test]
    fn monitoring_produces_consistent_metrics() {
        let (tree, group) = workload();
        let metrics = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::circle()),
        );
        assert_eq!(metrics.timestamps, 399);
        assert!(metrics.updates >= 1, "the initial computation counts as an update");
        assert!(metrics.updates <= metrics.timestamps + 1);
        assert!(metrics.traffic.packets > 0);
        assert!(metrics.traffic.messages >= metrics.updates * group.len());
        assert!(metrics.mean_compute_time().as_nanos() > 0);
        assert!(metrics.update_frequency() <= 1.0);
    }

    #[test]
    fn tile_regions_reduce_update_frequency_compared_to_circles() {
        let (tree, group) = workload();
        let circle = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(250),
        );
        let tile = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(250),
        );
        assert!(
            tile.updates <= circle.updates,
            "tile-based regions must not trigger more updates (tile {}, circle {})",
            tile.updates,
            circle.updates
        );
    }

    #[test]
    fn sum_objective_monitoring_runs_end_to_end() {
        let (tree, group) = workload();
        let metrics = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Sum, Method::tile()).with_max_timestamps(150),
        );
        assert!(metrics.updates >= 1);
        assert!(metrics.traffic.packets > 0);
    }

    #[test]
    fn buffered_method_is_cheaper_per_update_in_index_work() {
        let (tree, group) = workload();
        let plain = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile_directed(0.8)).with_max_timestamps(120),
        );
        let buffered = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile_directed_buffered(0.8, 50))
                .with_max_timestamps(120),
        );
        let plain_queries_per_update = plain.stats.rtree_queries as f64 / plain.updates as f64;
        let buffered_queries_per_update =
            buffered.stats.rtree_queries as f64 / buffered.updates as f64;
        assert!(
            buffered_queries_per_update < plain_queries_per_update,
            "buffering must reduce R-tree queries per update ({buffered_queries_per_update} vs {plain_queries_per_update})"
        );
    }

    #[test]
    fn max_timestamp_cap_limits_the_run() {
        let (tree, group) = workload();
        let metrics = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(50),
        );
        assert_eq!(metrics.timestamps, 49);
    }
}
