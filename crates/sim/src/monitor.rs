//! The per-group monitoring state machine.
//!
//! [`GroupSession`] owns everything the server keeps for one moving group: the trajectories,
//! the safe-region engine, the per-group [`SessionState`] (heading predictors, §5.4 GNN
//! buffer, last answer) and the accumulated metrics.  Each [`GroupSession::advance`] call
//! replays one timestamp of the protocol of Fig. 3:
//!
//! * the first call registers the query — every user reports her location once, the server
//!   computes the initial answer and notifies everyone;
//! * each later call is one monitoring step: **violation detection** against the last
//!   answer's safe regions, then (only when at least one user left her region) **step 1** the
//!   violating users report, **step 2** the server probes the remaining users, **step 3** the
//!   server recomputes and pushes fresh safe regions to the whole group.
//!
//! Sessions are self-clocked and [`Send`], so a
//! [`MonitoringEngine`](crate::engine::MonitoringEngine) can advance many of them from worker
//! threads.  The legacy single-group entry point [`run_monitoring`] is a thin wrapper that
//! drives one session to its horizon; with the default configuration its metrics (updates,
//! packets, work counters) are bit-identical to the historical stateless loop.

use std::time::Instant;

use mpn_core::{EngineContext, Method, Objective, SafeRegionEngine, SessionState};
use mpn_geom::Point;
use mpn_index::RTree;
use mpn_mobility::Trajectory;

use crate::message::Message;
use crate::metrics::MonitoringMetrics;

/// Configuration of a monitoring run.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// MAX (MPN) or SUM (Sum-MPN) objective.
    pub objective: Objective,
    /// Safe-region method (Circle, Tile, Tile-D, Tile-D-b).
    pub method: Method,
    /// Whether tile regions are shipped with the lossless compression (the paper's default).
    pub compress_regions: bool,
    /// Smoothing factor of the per-user heading predictor feeding the directed ordering.
    pub heading_smoothing: f64,
    /// Optional cap on the number of timestamps replayed (useful for quick experiments);
    /// `None` replays the full common horizon of the group.
    pub max_timestamps: Option<usize>,
    /// Whether the session keeps its §5.4 GNN buffer alive across updates (Tile-D-b only).
    ///
    /// Off (the default) every buffered update rebuilds the buffer, exactly like the
    /// historical stateless loop; on, the buffer is rebuilt only when the optimum moves or
    /// the group strays from the buffer anchors, roughly halving R-tree queries per update.
    pub persist_buffers: bool,
}

impl MonitorConfig {
    /// A run with the given objective and method and default remaining settings.
    #[must_use]
    pub fn new(objective: Objective, method: Method) -> Self {
        Self {
            objective,
            method,
            compress_regions: true,
            heading_smoothing: 0.3,
            max_timestamps: None,
            persist_buffers: false,
        }
    }

    /// Limits the number of replayed timestamps.
    #[must_use]
    pub fn with_max_timestamps(mut self, limit: usize) -> Self {
        self.max_timestamps = Some(limit);
        self
    }

    /// Enables reuse of the §5.4 GNN buffer across updates.
    #[must_use]
    pub fn with_persistent_buffers(mut self, enabled: bool) -> Self {
        self.persist_buffers = enabled;
        self
    }
}

/// What one [`GroupSession::advance`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The first call: query registration plus the initial computation.
    Registered,
    /// Every user stayed inside her safe region; no communication happened.
    Quiet,
    /// At least one user violated her region; the full update protocol ran.
    Updated {
        /// Number of users that had left their safe regions.
        violators: usize,
    },
    /// The session had already replayed its whole horizon; nothing happened.
    Finished,
}

/// The monitoring state machine of one moving group.
#[derive(Debug)]
pub struct GroupSession<'g> {
    /// Borrowed, not owned: the replay driver never copies trajectory data (full-scale
    /// workloads are tens of megabytes), it only reads locations per timestamp.
    group: &'g [Trajectory],
    config: MonitorConfig,
    engine: Box<dyn SafeRegionEngine>,
    session: SessionState,
    metrics: MonitoringMetrics,
    locations: Vec<Point>,
    horizon: usize,
    next_t: usize,
    registered: bool,
}

impl<'g> GroupSession<'g> {
    /// Creates a session over the group's trajectories.
    ///
    /// # Panics
    /// Panics when the group is empty.
    #[must_use]
    pub fn new(group: &'g [Trajectory], config: MonitorConfig) -> Self {
        assert!(!group.is_empty(), "monitoring requires at least one user trajectory");
        let horizon = group.iter().map(Trajectory::len).min().unwrap_or(0);
        let horizon = config.max_timestamps.map_or(horizon, |cap| horizon.min(cap));
        let session = SessionState::new(group.len(), config.heading_smoothing)
            .with_persistent_buffers(config.persist_buffers);
        let metrics = MonitoringMetrics::new(group.len());
        Self {
            engine: config.method.engine(),
            session,
            metrics,
            locations: Vec::with_capacity(group.len()),
            horizon,
            next_t: 0,
            registered: false,
            group,
            config,
        }
    }

    /// Number of users in the group.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group.len()
    }

    /// The number of timestamps this session will replay (including the registration).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The per-group engine state (heading predictors, buffer cache, last answer).
    #[must_use]
    pub fn session_state(&self) -> &SessionState {
        &self.session
    }

    /// Whether the whole horizon has been replayed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.registered && self.next_t >= self.horizon
    }

    /// Metrics accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &MonitoringMetrics {
        &self.metrics
    }

    /// Consumes the session, returning its metrics.
    #[must_use]
    pub fn into_metrics(self) -> MonitoringMetrics {
        self.metrics
    }

    /// Tears the session down on deregistration: explicitly reclaims the engine state
    /// retained between updates (the §5.4 GNN buffer and the last answer, via
    /// [`SessionState::reclaim`]) before extracting the metrics.
    ///
    /// Functionally this drops the same memory `into_metrics` would, but the explicit
    /// reclaim keeps the teardown order observable — a long-lived server deregistering a
    /// group must not keep dead caches alive through some stray reference.
    #[must_use]
    pub fn retire(mut self) -> MonitoringMetrics {
        self.session.reclaim();
        debug_assert!(!self.session.has_cached_buffer(), "reclaim must drop the cached GNN buffer");
        self.metrics
    }

    /// Replays the next timestamp of the protocol.
    ///
    /// # Panics
    /// Panics when the POI tree is empty.
    pub fn advance(&mut self, tree: &RTree) -> StepOutcome {
        assert!(!tree.is_empty(), "monitoring requires a non-empty POI set");
        if self.is_finished() {
            return StepOutcome::Finished;
        }

        let t = self.next_t;
        self.locations.clear();
        self.locations.extend(self.group.iter().map(|traj| traj.at(t)));
        self.session.observe(&self.locations);

        if !self.registered {
            // Query registration: every user reports her location once and receives the first
            // answer (counted like any other update).
            for _ in self.group {
                self.metrics.traffic.record(Message::location_report());
            }
            self.compute_and_notify(tree);
            self.registered = true;
            self.next_t = t + 1;
            return StepOutcome::Registered;
        }

        self.metrics.timestamps += 1;
        self.next_t = t + 1;

        let violators = self
            .session
            .last_answer()
            .expect("a registered session always has an answer")
            .violators(&self.locations);
        if violators.is_empty() {
            return StepOutcome::Quiet;
        }

        // Step 1: each violating user reports her location.
        for _ in &violators {
            self.metrics.traffic.record(Message::location_report());
        }
        // Step 2: the server probes every other user, who replies.
        let others = self.group.len() - violators.len();
        for _ in 0..others {
            self.metrics.traffic.record(Message::probe());
            self.metrics.traffic.record(Message::probe_reply());
        }
        // Step 3: recompute and notify everyone.
        self.compute_and_notify(tree);
        StepOutcome::Updated { violators: violators.len() }
    }

    /// Runs one safe-region computation through the engine and pushes the notifications.
    fn compute_and_notify(&mut self, tree: &RTree) {
        let ctx = EngineContext::new(tree, self.config.objective);
        let start = Instant::now();
        let answer = self.engine.compute(ctx, &self.locations, &mut self.session);
        let elapsed = start.elapsed();
        self.metrics.record_update(elapsed, &answer.stats);
        debug_assert!(
            answer.all_inside(&self.locations),
            "fresh safe regions must contain the users"
        );
        for region in &answer.regions {
            self.metrics
                .traffic
                .record(Message::result_notification(region, self.config.compress_regions));
        }
    }
}

/// Replays one user group against the server and collects metrics.
///
/// This is the single-group compatibility wrapper over [`GroupSession`]: with the default
/// configuration (no persistent buffers) the resulting updates, packets and work counters are
/// bit-identical to the historical stateless monitoring loop.
///
/// # Panics
/// Panics when the group is empty or the POI tree is empty.
#[must_use]
pub fn run_monitoring(
    tree: &RTree,
    group: &[Trajectory],
    config: &MonitorConfig,
) -> MonitoringMetrics {
    assert!(!tree.is_empty(), "monitoring requires a non-empty POI set");
    let mut session = GroupSession::new(group, *config);
    while !session.is_finished() {
        let _ = session.advance(tree);
    }
    session.into_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_mobility::poi::{clustered_pois, PoiConfig};
    use mpn_mobility::waypoint::{random_waypoint, WaypointConfig};

    fn workload() -> (RTree, Vec<Trajectory>) {
        let pois =
            clustered_pois(&PoiConfig { count: 800, domain: 1000.0, ..PoiConfig::default() }, 11);
        let tree = RTree::bulk_load(&pois);
        let config = WaypointConfig { domain: 1000.0, speed_limit: 6.0, timestamps: 400 };
        let group: Vec<Trajectory> = (0..3).map(|i| random_waypoint(&config, 50 + i)).collect();
        (tree, group)
    }

    #[test]
    fn monitoring_produces_consistent_metrics() {
        let (tree, group) = workload();
        let metrics =
            run_monitoring(&tree, &group, &MonitorConfig::new(Objective::Max, Method::circle()));
        assert_eq!(metrics.timestamps, 399);
        assert!(metrics.updates >= 1, "the initial computation counts as an update");
        assert!(metrics.updates <= metrics.timestamps + 1);
        assert!(metrics.traffic.packets > 0);
        assert!(metrics.traffic.messages >= metrics.updates * group.len());
        assert!(metrics.mean_compute_time().as_nanos() > 0);
        assert!(metrics.update_frequency() <= 1.0);
    }

    #[test]
    fn tile_regions_reduce_update_frequency_compared_to_circles() {
        let (tree, group) = workload();
        let circle = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(250),
        );
        let tile = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(250),
        );
        assert!(
            tile.updates <= circle.updates,
            "tile-based regions must not trigger more updates (tile {}, circle {})",
            tile.updates,
            circle.updates
        );
    }

    #[test]
    fn sum_objective_monitoring_runs_end_to_end() {
        let (tree, group) = workload();
        let metrics = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Sum, Method::tile()).with_max_timestamps(150),
        );
        assert!(metrics.updates >= 1);
        assert!(metrics.traffic.packets > 0);
    }

    #[test]
    fn buffered_method_is_cheaper_per_update_in_index_work() {
        let (tree, group) = workload();
        let plain = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile_directed(0.8))
                .with_max_timestamps(120),
        );
        let buffered = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile_directed_buffered(0.8, 50))
                .with_max_timestamps(120),
        );
        let plain_queries_per_update = plain.stats.rtree_queries as f64 / plain.updates as f64;
        let buffered_queries_per_update =
            buffered.stats.rtree_queries as f64 / buffered.updates as f64;
        assert!(
            buffered_queries_per_update < plain_queries_per_update,
            "buffering must reduce R-tree queries per update ({buffered_queries_per_update} vs {plain_queries_per_update})"
        );
    }

    #[test]
    fn max_timestamp_cap_limits_the_run() {
        let (tree, group) = workload();
        let metrics = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(50),
        );
        assert_eq!(metrics.timestamps, 49);
    }

    #[test]
    fn sessions_report_their_protocol_steps() {
        let (tree, group) = workload();
        let mut session = GroupSession::new(
            &group,
            MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(60),
        );
        assert_eq!(session.horizon(), 60);
        assert!(!session.is_finished());
        assert_eq!(session.advance(&tree), StepOutcome::Registered);
        let mut quiet = 0usize;
        let mut updated = 0usize;
        while !session.is_finished() {
            match session.advance(&tree) {
                StepOutcome::Quiet => quiet += 1,
                StepOutcome::Updated { violators } => {
                    assert!(violators >= 1 && violators <= session.group_size());
                    updated += 1;
                }
                StepOutcome::Registered | StepOutcome::Finished => {
                    panic!("unexpected outcome mid-run")
                }
            }
        }
        assert_eq!(session.advance(&tree), StepOutcome::Finished);
        assert_eq!(quiet + updated, 59);
        assert_eq!(session.metrics().updates, updated + 1);
    }

    #[test]
    fn persistent_buffers_cut_rtree_queries_per_update() {
        let (tree, group) = workload();
        let base = MonitorConfig::new(Objective::Max, Method::tile_directed_buffered(0.8, 50))
            .with_max_timestamps(200);
        let stateless = run_monitoring(&tree, &group, &base);
        let stateful = run_monitoring(&tree, &group, &base.with_persistent_buffers(true));
        let stateless_q = stateless.stats.rtree_queries as f64 / stateless.updates as f64;
        let stateful_q = stateful.stats.rtree_queries as f64 / stateful.updates as f64;
        assert!(
            stateful_q < stateless_q,
            "persistent buffers must reduce index work per update ({stateful_q:.2} vs {stateless_q:.2})"
        );
    }
}
