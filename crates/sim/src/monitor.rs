//! The per-group monitoring state machine, message-driven and fully owned.
//!
//! [`GroupSession`] owns everything the server keeps for one moving group: the safe-region
//! engine, the per-group [`SessionState`] (heading predictors, §5.4 GNN buffer, last answer)
//! and the accumulated metrics.  Since the owned-session refactor a session does **not**
//! borrow trajectory data; it consumes one *epoch* of owned user positions per
//! [`advance`](GroupSession::advance) call, drawn from two sources:
//!
//! * **submitted batches** ([`GroupSession::submit`]) — the streaming path: a network
//!   front-end (or the [`MonitoringEngine`](crate::engine::MonitoringEngine)'s
//!   [`submit`](crate::engine::MonitoringEngine::submit)) queues each epoch's positions into
//!   the session inbox as they arrive off the wire;
//! * **a [`TrajectoryFeed`]** — the replay path: a thin adapter that plays a recorded
//!   trajectory set back one epoch per advance, exactly like the historical borrowing replay
//!   (and bit-identical in every counter, see `tests/engine_parity.rs`).
//!
//! Each consumed epoch replays one timestamp of the protocol of Fig. 3: the first epoch
//! registers the query (every user reports once, the server computes and notifies); each
//! later epoch is **violation detection** against the last answer, then — only when a user
//! left her region — the step 1–3 report/probe/recompute/notify exchange.  A session whose
//! inbox and feed are both dry reports [`StepOutcome::Starved`] and does not advance its
//! clock: epochs are data-driven, so a streaming group that reports slowly simply progresses
//! slowly.
//!
//! Sessions are self-clocked and `Send`, so a
//! [`MonitoringEngine`](crate::engine::MonitoringEngine) can advance many of them from worker
//! threads.  With an event log enabled ([`GroupSession::with_events`]) a session records the
//! per-user protocol sends of each epoch as [`SessionEvent`]s, which the
//! [`MonitoringServer`](crate::server::MonitoringServer) front-end turns into `mpn-proto`
//! responses.  The legacy single-group entry point [`run_monitoring`] drives one replay
//! session to its horizon; with the default configuration its metrics (updates, packets,
//! work counters) are bit-identical to the historical stateless loop.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use mpn_core::{EngineContext, Method, Objective, SafeRegion, SafeRegionEngine, SessionState};
use mpn_geom::Point;
use mpn_index::{IndexView, RTree};
use mpn_mobility::Trajectory;

use crate::engine::WorldChange;
use crate::message::Message;
use crate::metrics::MonitoringMetrics;

/// Configuration of a monitoring run.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// MAX (MPN) or SUM (Sum-MPN) objective.
    pub objective: Objective,
    /// Safe-region method (Circle, Tile, Tile-D, Tile-D-b).
    pub method: Method,
    /// Whether tile regions are shipped with the lossless compression (the paper's default).
    pub compress_regions: bool,
    /// Smoothing factor of the per-user heading predictor feeding the directed ordering.
    pub heading_smoothing: f64,
    /// Optional cap on the number of monitored timestamps.  For a replay session `None`
    /// means the full common horizon of the recorded group; for a streaming session `None`
    /// means an **open horizon** — the session runs until it is deregistered.
    pub max_timestamps: Option<usize>,
    /// Whether the session keeps its §5.4 GNN buffer alive across updates (Tile-D-b only).
    ///
    /// Off (the default) every buffered update rebuilds the buffer, exactly like the
    /// historical stateless loop; on, the buffer is rebuilt only when the optimum moves or
    /// the group strays from the buffer anchors, roughly halving R-tree queries per update.
    pub persist_buffers: bool,
}

impl MonitorConfig {
    /// A run with the given objective and method and default remaining settings.
    #[must_use]
    pub fn new(objective: Objective, method: Method) -> Self {
        Self {
            objective,
            method,
            compress_regions: true,
            heading_smoothing: 0.3,
            max_timestamps: None,
            persist_buffers: false,
        }
    }

    /// Limits the number of replayed timestamps.
    #[must_use]
    pub fn with_max_timestamps(mut self, limit: usize) -> Self {
        self.max_timestamps = Some(limit);
        self
    }

    /// Enables reuse of the §5.4 GNN buffer across updates.
    #[must_use]
    pub fn with_persistent_buffers(mut self, enabled: bool) -> Self {
        self.persist_buffers = enabled;
        self
    }
}

/// What one [`GroupSession::advance`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The first epoch: query registration plus the initial computation.
    Registered,
    /// Every user stayed inside her safe region; no communication happened.
    Quiet,
    /// At least one user violated her region; the full update protocol ran.
    Updated {
        /// Number of users that had left their safe regions.
        violators: usize,
    },
    /// The session had already consumed its whole horizon; nothing happened.
    Finished,
    /// No epoch was available (empty inbox, no feed or an exhausted one): the session's
    /// clock did not move.  Never produced by the replay path before its horizon.
    Starved,
}

/// One epoch of the protocol as seen by a single user — the per-user sends a session makes
/// when its event log is enabled ([`GroupSession::with_events`]).
///
/// Events carry owned copies of the shipped payloads (the meeting point and the user's
/// region), so a front-end can serialise them long after the session has moved on.  They are
/// recorded **in addition to** the [`Traffic`](crate::message::Traffic) accounting, which is
/// unchanged either way.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// Step 2 (downlink): the server asked this user for her current location.
    Probed {
        /// Index of the user inside her group.
        user: usize,
    },
    /// Step 3 (downlink): the server shipped this user the fresh meeting point together with
    /// her new safe region (also sent after the registration epoch).
    Assigned {
        /// Index of the user inside her group.
        user: usize,
        /// The optimal meeting point of this update.
        meeting_point: Point,
        /// The user's new independent safe region.
        region: SafeRegion,
    },
}

/// Replay adapter: feeds a recorded trajectory set into an owned [`GroupSession`], one epoch
/// of positions per [`advance`](GroupSession::advance).
///
/// The trajectories sit behind an [`Arc`], so many sessions (or repeated replays) can share
/// one recorded data set without copying it — full-scale workloads are tens of megabytes.
/// The feed is exhausted after [`horizon`](TrajectoryFeed::horizon) epochs (the common prefix
/// every user has data for).
#[derive(Debug, Clone)]
pub struct TrajectoryFeed {
    group: Arc<Vec<Trajectory>>,
    cursor: usize,
    /// The common horizon, computed once at construction: the trajectories are immutable
    /// behind the `Arc`, so recomputing the min over the group on every epoch (as the
    /// original implementation did) is pure pointer-chasing in the tick hot path.
    horizon: usize,
}

impl TrajectoryFeed {
    /// Creates a feed over the group's trajectories (pass an `Arc` to share the data).
    ///
    /// # Panics
    /// Panics when the group is empty.
    #[must_use]
    pub fn new(group: impl Into<Arc<Vec<Trajectory>>>) -> Self {
        let group = group.into();
        assert!(!group.is_empty(), "monitoring requires at least one user trajectory");
        let horizon = group.iter().map(Trajectory::len).min().unwrap_or(0);
        Self { group, cursor: 0, horizon }
    }

    /// Creates a feed from a borrowed group, cloning the trajectories once.
    ///
    /// # Panics
    /// Panics when the group is empty.
    #[must_use]
    pub fn from_group(group: &[Trajectory]) -> Self {
        Self::new(group.to_vec())
    }

    /// Number of users in the recorded group.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group.len()
    }

    /// Number of epochs the feed can supply: the shortest trajectory's length.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Whether at least one more epoch is available — a cursor/horizon compare, cheap
    /// enough for the engine's active-set scheduling to ask every tick.
    #[must_use]
    pub fn has_next(&self) -> bool {
        self.cursor < self.horizon
    }

    /// Number of epochs already fed.
    #[must_use]
    pub fn epochs_fed(&self) -> usize {
        self.cursor
    }

    /// The next epoch's positions as an owned batch, or `None` when exhausted.
    ///
    /// This is the convenience used to pump a feed *into* a streaming session or over a
    /// network client; the in-session replay path uses the allocation-free
    /// [`fill_next`](Self::fill_next) instead.
    pub fn next_epoch(&mut self) -> Option<Vec<Point>> {
        let mut out = Vec::with_capacity(self.group.len());
        self.fill_next(&mut out).then_some(out)
    }

    /// Writes the next epoch's positions into `out` (cleared first); returns `false` when
    /// the feed is exhausted.
    pub(crate) fn fill_next(&mut self, out: &mut Vec<Point>) -> bool {
        if self.cursor >= self.horizon {
            return false;
        }
        out.clear();
        out.extend(self.group.iter().map(|traj| traj.at(self.cursor)));
        self.cursor += 1;
        true
    }
}

/// Inbox capacity kept after a drain: a burst of submitted epochs (a reconnecting client
/// flushing its backlog) grows the inbox arbitrarily, and without a release the high-water
/// capacity would be pinned for the rest of the session's life — at a million sessions that
/// is pure wasted resident memory.  Once the inbox drains, anything above this many slots is
/// returned to the allocator.
pub(crate) const INBOX_HIGH_WATER: usize = 32;

/// The monitoring state machine of one moving group, owning all of its server-side state.
#[derive(Debug)]
pub struct GroupSession {
    config: MonitorConfig,
    engine: Box<dyn SafeRegionEngine>,
    /// Cached [`SafeRegionEngine::uses_headings`]: when `false` (circle groups) the
    /// per-epoch [`SessionState::observe`] call — one `atan2` per user — is skipped, since
    /// the predictor state would be write-only.
    headings_needed: bool,
    session: SessionState,
    metrics: MonitoringMetrics,
    /// The current epoch's positions (reused across epochs in the replay path).
    locations: Vec<Point>,
    group_size: usize,
    /// `None` = open horizon: the session monitors until deregistered (streaming sessions
    /// without a [`MonitorConfig::max_timestamps`] cap).
    horizon: Option<usize>,
    next_t: usize,
    registered: bool,
    /// Owned epoch batches queued by [`submit`](GroupSession::submit), consumed FIFO.
    inbox: VecDeque<Vec<Point>>,
    /// Replay source consulted when the inbox is empty.
    feed: Option<TrajectoryFeed>,
    /// `Some` iff per-user protocol events are recorded (see [`SessionEvent`]).
    events: Option<Vec<SessionEvent>>,
}

impl GroupSession {
    /// Creates a replay session over a recorded trajectory feed.
    ///
    /// The session's horizon is the feed's ([`TrajectoryFeed::horizon`]), capped by
    /// [`MonitorConfig::max_timestamps`] — exactly the horizon of the historical borrowing
    /// replay.
    #[must_use]
    pub fn replay(feed: TrajectoryFeed, config: MonitorConfig) -> Self {
        let horizon = feed.horizon();
        let horizon = config.max_timestamps.map_or(horizon, |cap| horizon.min(cap));
        let mut session = Self::with_horizon(feed.group_size(), config, Some(horizon));
        session.feed = Some(feed);
        session
    }

    /// Creates a streaming session for a group of `group_size` users whose positions arrive
    /// via [`submit`](GroupSession::submit).
    ///
    /// Without a [`MonitorConfig::max_timestamps`] cap the session has an **open horizon**:
    /// it is never [`finished`](GroupSession::is_finished) and monitors until deregistered.
    ///
    /// # Panics
    /// Panics when `group_size` is zero.
    #[must_use]
    pub fn streaming(group_size: usize, config: MonitorConfig) -> Self {
        Self::with_horizon(group_size, config, config.max_timestamps)
    }

    fn with_horizon(group_size: usize, config: MonitorConfig, horizon: Option<usize>) -> Self {
        assert!(group_size > 0, "monitoring requires at least one user trajectory");
        let session = SessionState::new(group_size, config.heading_smoothing)
            .with_persistent_buffers(config.persist_buffers);
        let engine = config.method.engine();
        Self {
            headings_needed: engine.uses_headings(),
            engine,
            session,
            metrics: MonitoringMetrics::new(group_size),
            locations: Vec::with_capacity(group_size),
            group_size,
            horizon,
            next_t: 0,
            registered: false,
            inbox: VecDeque::new(),
            feed: None,
            events: None,
            config,
        }
    }

    /// Enables (or disables) the per-user protocol event log drained by
    /// [`take_events`](GroupSession::take_events).
    ///
    /// Off by default: the replay paths never pay for cloning regions into events.
    #[must_use]
    pub fn with_events(mut self, enabled: bool) -> Self {
        self.events = enabled.then(Vec::new);
        self
    }

    /// Number of users in the group.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The number of epochs this session will consume (including the registration), or
    /// `None` for an open-horizon streaming session.
    #[must_use]
    pub fn horizon(&self) -> Option<usize> {
        self.horizon
    }

    /// Epochs left before the session finishes: `None` for an open horizon (the session
    /// never finishes on its own), `Some(0)` once finished.  This is the weight the
    /// engine's horizon-aware placement uses.
    #[must_use]
    pub fn remaining_horizon(&self) -> Option<usize> {
        self.horizon.map(|h| h.saturating_sub(self.next_t))
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The per-group engine state (heading predictors, buffer cache, last answer).
    #[must_use]
    pub fn session_state(&self) -> &SessionState {
        &self.session
    }

    /// Whether the whole (bounded) horizon has been consumed.  Open-horizon sessions are
    /// never finished; they leave the server via deregistration.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.registered && self.horizon.is_some_and(|h| self.next_t >= h)
    }

    /// Metrics accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &MonitoringMetrics {
        &self.metrics
    }

    /// Consumes the session, returning its metrics.
    #[must_use]
    pub fn into_metrics(self) -> MonitoringMetrics {
        self.metrics
    }

    /// Queues one epoch of user positions for the next [`advance`](GroupSession::advance).
    ///
    /// Batches are consumed strictly FIFO, one per advance, *before* the feed (if any) is
    /// consulted — a session fed both ways interleaves deterministically.
    ///
    /// # Panics
    /// Panics when the batch does not hold exactly one position per user (callers that need
    /// graceful rejection — e.g. a network front-end — validate first; see
    /// [`MonitoringEngine::submit`](crate::engine::MonitoringEngine::submit)).
    pub fn submit(&mut self, positions: Vec<Point>) {
        assert_eq!(positions.len(), self.group_size, "an epoch update needs one position per user");
        self.inbox.push_back(positions);
    }

    /// Number of submitted epochs waiting in the inbox.
    #[must_use]
    pub fn pending_epochs(&self) -> usize {
        self.inbox.len()
    }

    /// Whether the replay feed (if any) still has epochs to supply.
    #[must_use]
    pub fn feed_has_next(&self) -> bool {
        self.feed.as_ref().is_some_and(TrajectoryFeed::has_next)
    }

    /// Whether the next [`advance`](GroupSession::advance) would report
    /// [`StepOutcome::Starved`]: the session is not finished, nothing is queued and the feed
    /// (if any) is exhausted.  The engine's active-set scheduling uses this to tally a
    /// starved session without running the advance path at all.
    #[must_use]
    pub fn would_starve(&self) -> bool {
        !self.is_finished() && self.inbox.is_empty() && !self.feed_has_next()
    }

    /// The inbox capacity currently held (test hook for the drain-shrink policy).
    #[cfg(test)]
    pub(crate) fn inbox_capacity(&self) -> usize {
        self.inbox.capacity()
    }

    /// Drains the per-user protocol events recorded since the last call (always empty unless
    /// enabled via [`with_events`](GroupSession::with_events)).
    pub fn take_events(&mut self) -> Vec<SessionEvent> {
        self.events.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Tears the session down on deregistration: explicitly reclaims the engine state
    /// retained between updates (the §5.4 GNN buffer and the last answer, via
    /// [`SessionState::reclaim`]) before extracting the metrics.  Queued epochs, the feed
    /// and any undrained events are dropped with the session.
    ///
    /// Functionally this drops the same memory `into_metrics` would, but the explicit
    /// reclaim keeps the teardown order observable — a long-lived server deregistering a
    /// group must not keep dead caches alive through some stray reference.
    #[must_use]
    pub fn retire(mut self) -> MonitoringMetrics {
        self.session.reclaim();
        debug_assert!(!self.session.has_cached_buffer(), "reclaim must drop the cached GNN buffer");
        self.metrics
    }

    /// Consumes the next epoch of the protocol.
    ///
    /// The epoch's positions come from the inbox ([`submit`](GroupSession::submit)) first,
    /// then from the replay feed; with neither available the session
    /// [`Starved`](StepOutcome::Starved)s and its clock does not move.
    ///
    /// # Panics
    /// Panics when the POI view is empty.
    pub fn advance<'a>(&mut self, index: impl Into<IndexView<'a>>) -> StepOutcome {
        let view = index.into();
        assert!(!view.is_empty(), "monitoring requires a non-empty POI set");
        if self.is_finished() {
            return StepOutcome::Finished;
        }

        if let Some(batch) = self.inbox.pop_front() {
            debug_assert_eq!(batch.len(), self.group_size, "submit checked the batch size");
            self.locations = batch;
            if self.inbox.is_empty() && self.inbox.capacity() > INBOX_HIGH_WATER {
                // The backlog is drained: release the burst capacity (see INBOX_HIGH_WATER).
                self.inbox.shrink_to(INBOX_HIGH_WATER);
            }
        } else {
            let fed = match self.feed.as_mut() {
                Some(feed) => feed.fill_next(&mut self.locations),
                None => false,
            };
            if !fed {
                return StepOutcome::Starved;
            }
        }

        let t = self.next_t;
        if self.headings_needed {
            self.session.observe(&self.locations);
        }

        if !self.registered {
            // Query registration: every user reports her location once and receives the first
            // answer (counted like any other update).
            for _ in 0..self.group_size {
                self.metrics.traffic.record(Message::location_report());
            }
            self.compute_and_notify(view);
            self.registered = true;
            self.next_t = t + 1;
            return StepOutcome::Registered;
        }

        self.metrics.timestamps += 1;
        self.next_t = t + 1;

        let violators = self
            .session
            .last_answer()
            .expect("a registered session always has an answer")
            .violators(&self.locations);
        if violators.is_empty() {
            return StepOutcome::Quiet;
        }

        // Step 1: each violating user reports her location.
        for _ in &violators {
            self.metrics.traffic.record(Message::location_report());
        }
        // Step 2: the server probes every other user, who replies.
        let others = self.group_size - violators.len();
        for _ in 0..others {
            self.metrics.traffic.record(Message::probe());
            self.metrics.traffic.record(Message::probe_reply());
        }
        if self.events.is_some() {
            let mut violating = violators.iter().copied().peekable();
            for user in 0..self.group_size {
                if violating.peek() == Some(&user) {
                    violating.next();
                } else if let Some(log) = &mut self.events {
                    log.push(SessionEvent::Probed { user });
                }
            }
        }
        // Step 3: recompute and notify everyone.
        self.compute_and_notify(view);
        StepOutcome::Updated { violators: violators.len() }
    }

    /// Whether the given POI change can break this session's current safe regions
    /// (Definition 3 soundness, evaluated against the *last* answer — see
    /// [`SessionState::delete_invalidates`] / [`SessionState::insert_invalidates`]).
    ///
    /// An unregistered session (or one whose answer was reclaimed) has nothing to break.
    #[must_use]
    pub fn world_change_invalidates(&self, change: &WorldChange) -> bool {
        match *change {
            WorldChange::PoiDelete { poi } => self.session.delete_invalidates(poi),
            WorldChange::PoiInsert { location } => {
                self.session.insert_invalidates(location, self.config.objective)
            }
        }
    }

    /// Recomputes the safe regions against the (changed) POI view without consuming an
    /// epoch, re-notifying every user at her last observed location.
    ///
    /// This is the server-push half of the world-mutation protocol: a POI change that breaks
    /// a group's regions must not wait for the next violation report.  The recomputation
    /// runs the normal notify path, so metrics, traffic accounting and (when enabled)
    /// [`SessionEvent::Assigned`] events flow exactly like a violation-triggered update.
    ///
    /// Returns `false` (and does nothing) for a session that is not registered, has no
    /// current answer, or has already finished its horizon.
    pub fn force_recompute<'a>(&mut self, index: impl Into<IndexView<'a>>) -> bool {
        if !self.registered || self.is_finished() || self.session.last_answer().is_none() {
            return false;
        }
        self.compute_and_notify(index.into());
        true
    }

    /// Runs one safe-region computation through the engine and pushes the notifications.
    fn compute_and_notify(&mut self, view: IndexView<'_>) {
        let ctx = EngineContext::new(view, self.config.objective);
        let start = Instant::now();
        let answer = self.engine.compute(ctx, &self.locations, &mut self.session);
        let elapsed = start.elapsed();
        self.metrics.record_update(elapsed, &answer.stats);
        debug_assert!(
            answer.all_inside(&self.locations),
            "fresh safe regions must contain the users"
        );
        for (user, region) in answer.regions.iter().enumerate() {
            self.metrics
                .traffic
                .record(Message::result_notification(region, self.config.compress_regions));
            if let Some(log) = &mut self.events {
                log.push(SessionEvent::Assigned {
                    user,
                    meeting_point: answer.optimal_point,
                    region: region.clone(),
                });
            }
        }
    }
}

/// Replays one user group against the server and collects metrics.
///
/// This is the single-group compatibility wrapper over a [`GroupSession::replay`] session:
/// with the default configuration (no persistent buffers) the resulting updates, packets and
/// work counters are bit-identical to the historical stateless monitoring loop
/// (`tests/engine_parity.rs` pins this).  The trajectories are cloned once into the feed.
///
/// # Panics
/// Panics when the group is empty or the POI tree is empty.
#[must_use]
pub fn run_monitoring(
    tree: &RTree,
    group: &[Trajectory],
    config: &MonitorConfig,
) -> MonitoringMetrics {
    assert!(!tree.is_empty(), "monitoring requires a non-empty POI set");
    let mut session = GroupSession::replay(TrajectoryFeed::from_group(group), *config);
    while !session.is_finished() {
        let outcome = session.advance(tree);
        debug_assert_ne!(outcome, StepOutcome::Starved, "a replay feed covers its horizon");
    }
    session.into_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_mobility::poi::{clustered_pois, PoiConfig};
    use mpn_mobility::waypoint::{random_waypoint, WaypointConfig};

    fn workload() -> (RTree, Vec<Trajectory>) {
        let pois =
            clustered_pois(&PoiConfig { count: 800, domain: 1000.0, ..PoiConfig::default() }, 11);
        let tree = RTree::bulk_load(&pois);
        let config = WaypointConfig { domain: 1000.0, speed_limit: 6.0, timestamps: 400 };
        let group: Vec<Trajectory> = (0..3).map(|i| random_waypoint(&config, 50 + i)).collect();
        (tree, group)
    }

    #[test]
    fn monitoring_produces_consistent_metrics() {
        let (tree, group) = workload();
        let metrics =
            run_monitoring(&tree, &group, &MonitorConfig::new(Objective::Max, Method::circle()));
        assert_eq!(metrics.timestamps, 399);
        assert!(metrics.updates >= 1, "the initial computation counts as an update");
        assert!(metrics.updates <= metrics.timestamps + 1);
        assert!(metrics.traffic.packets > 0);
        assert!(metrics.traffic.messages >= metrics.updates * group.len());
        assert!(metrics.mean_compute_time().as_nanos() > 0);
        assert!(metrics.update_frequency() <= 1.0);
    }

    #[test]
    fn tile_regions_reduce_update_frequency_compared_to_circles() {
        let (tree, group) = workload();
        let circle = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(250),
        );
        let tile = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(250),
        );
        assert!(
            tile.updates <= circle.updates,
            "tile-based regions must not trigger more updates (tile {}, circle {})",
            tile.updates,
            circle.updates
        );
    }

    #[test]
    fn sum_objective_monitoring_runs_end_to_end() {
        let (tree, group) = workload();
        let metrics = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Sum, Method::tile()).with_max_timestamps(150),
        );
        assert!(metrics.updates >= 1);
        assert!(metrics.traffic.packets > 0);
    }

    #[test]
    fn buffered_method_is_cheaper_per_update_in_index_work() {
        let (tree, group) = workload();
        let plain = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile_directed(0.8))
                .with_max_timestamps(120),
        );
        let buffered = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::tile_directed_buffered(0.8, 50))
                .with_max_timestamps(120),
        );
        let plain_queries_per_update = plain.stats.rtree_queries as f64 / plain.updates as f64;
        let buffered_queries_per_update =
            buffered.stats.rtree_queries as f64 / buffered.updates as f64;
        assert!(
            buffered_queries_per_update < plain_queries_per_update,
            "buffering must reduce R-tree queries per update ({buffered_queries_per_update} vs {plain_queries_per_update})"
        );
    }

    #[test]
    fn max_timestamp_cap_limits_the_run() {
        let (tree, group) = workload();
        let metrics = run_monitoring(
            &tree,
            &group,
            &MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(50),
        );
        assert_eq!(metrics.timestamps, 49);
    }

    #[test]
    fn sessions_report_their_protocol_steps() {
        let (tree, group) = workload();
        let mut session = GroupSession::replay(
            TrajectoryFeed::from_group(&group),
            MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(60),
        );
        assert_eq!(session.horizon(), Some(60));
        assert_eq!(session.remaining_horizon(), Some(60));
        assert!(!session.is_finished());
        assert_eq!(session.advance(&tree), StepOutcome::Registered);
        let mut quiet = 0usize;
        let mut updated = 0usize;
        while !session.is_finished() {
            match session.advance(&tree) {
                StepOutcome::Quiet => quiet += 1,
                StepOutcome::Updated { violators } => {
                    assert!(violators >= 1 && violators <= session.group_size());
                    updated += 1;
                }
                StepOutcome::Registered | StepOutcome::Finished | StepOutcome::Starved => {
                    panic!("unexpected outcome mid-run")
                }
            }
        }
        assert_eq!(session.remaining_horizon(), Some(0));
        assert_eq!(session.advance(&tree), StepOutcome::Finished);
        assert_eq!(quiet + updated, 59);
        assert_eq!(session.metrics().updates, updated + 1);
    }

    #[test]
    fn streaming_session_consumes_submitted_epochs_and_matches_the_replay() {
        let (tree, group) = workload();
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(80);
        let replay = run_monitoring(&tree, &group, &config);

        // The same epochs, submitted as owned batches into a streaming session.
        let mut feed = TrajectoryFeed::from_group(&group);
        let mut session = GroupSession::streaming(group.len(), config);
        assert_eq!(session.advance(&tree), StepOutcome::Starved, "no data yet");
        let mut epochs = 0;
        while let Some(batch) = feed.next_epoch() {
            if epochs == 80 {
                break;
            }
            session.submit(batch);
            epochs += 1;
        }
        assert_eq!(session.pending_epochs(), 80);
        while !session.is_finished() {
            assert_ne!(session.advance(&tree), StepOutcome::Starved);
        }
        assert_eq!(session.metrics().timestamps, replay.timestamps);
        assert_eq!(session.metrics().updates, replay.updates);
        assert_eq!(session.metrics().traffic, replay.traffic);
        assert_eq!(session.metrics().stats, replay.stats);
    }

    #[test]
    fn open_horizon_sessions_never_finish_and_starve_without_data() {
        let (tree, group) = workload();
        let config = MonitorConfig::new(Objective::Max, Method::circle());
        let mut session = GroupSession::streaming(group.len(), config);
        assert_eq!(session.horizon(), None, "no cap means an open horizon");
        assert_eq!(session.remaining_horizon(), None);
        session.submit(group.iter().map(|t| t.at(0)).collect());
        assert_eq!(session.advance(&tree), StepOutcome::Registered);
        assert!(!session.is_finished(), "open-horizon sessions only leave by deregistration");
        assert_eq!(session.advance(&tree), StepOutcome::Starved);
        assert_eq!(session.metrics().timestamps, 0, "a starved epoch does not advance the clock");
    }

    #[test]
    fn event_log_records_the_per_user_protocol_sends() {
        let (tree, group) = workload();
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(120);
        let mut session =
            GroupSession::replay(TrajectoryFeed::from_group(&group), config).with_events(true);
        assert_eq!(session.advance(&tree), StepOutcome::Registered);
        let events = session.take_events();
        assert_eq!(events.len(), group.len(), "registration assigns every user a region");
        assert!(events
            .iter()
            .all(|e| matches!(e, SessionEvent::Assigned { region, .. } if !region.is_empty())));

        // Find an epoch that updates: it must probe the non-violators and re-assign everyone.
        while !session.is_finished() {
            if let StepOutcome::Updated { violators } = session.advance(&tree) {
                let events = session.take_events();
                let probes =
                    events.iter().filter(|e| matches!(e, SessionEvent::Probed { .. })).count();
                let assigned =
                    events.iter().filter(|e| matches!(e, SessionEvent::Assigned { .. })).count();
                assert_eq!(probes, group.len() - violators);
                assert_eq!(assigned, group.len());
                return;
            }
            assert!(session.take_events().is_empty(), "quiet epochs emit nothing");
        }
        panic!("the workload never produced an update");
    }

    #[test]
    fn drained_inboxes_release_burst_capacity() {
        let (tree, group) = workload();
        let config = MonitorConfig::new(Objective::Max, Method::circle());
        let mut feed = TrajectoryFeed::from_group(&group);
        let mut session = GroupSession::streaming(group.len(), config);

        // A reconnect-style burst: several hundred epochs flushed at once.
        for _ in 0..300 {
            session.submit(feed.next_epoch().unwrap());
        }
        assert!(session.inbox_capacity() >= 300);
        while session.pending_epochs() > 0 {
            assert_ne!(session.advance(&tree), StepOutcome::Starved);
        }
        assert!(
            session.inbox_capacity() <= INBOX_HIGH_WATER,
            "draining the backlog must release the burst capacity (kept {})",
            session.inbox_capacity()
        );

        // Steady trickle below the high-water mark: no shrink churn, sessions keep working.
        session.submit(feed.next_epoch().unwrap());
        assert!(matches!(session.advance(&tree), StepOutcome::Quiet | StepOutcome::Updated { .. }));
    }

    #[test]
    fn would_starve_predicts_the_next_advance() {
        let (tree, group) = workload();
        let config = MonitorConfig::new(Objective::Max, Method::circle());

        // Streaming: starves exactly when the inbox is empty.
        let mut session = GroupSession::streaming(group.len(), config);
        assert!(session.would_starve());
        assert!(!session.feed_has_next(), "streaming sessions have no feed");
        session.submit(group.iter().map(|t| t.at(0)).collect());
        assert!(!session.would_starve());
        assert_eq!(session.advance(&tree), StepOutcome::Registered);
        assert!(session.would_starve());
        assert_eq!(session.advance(&tree), StepOutcome::Starved);

        // Replay: never starves before the horizon, and a finished session is not starved.
        let mut replay =
            GroupSession::replay(TrajectoryFeed::from_group(&group), config.with_max_timestamps(5));
        while !replay.is_finished() {
            assert!(!replay.would_starve());
            assert_ne!(replay.advance(&tree), StepOutcome::Starved);
        }
        assert!(!replay.would_starve(), "finished is not starved");
        assert_eq!(replay.advance(&tree), StepOutcome::Finished);
    }

    #[test]
    #[should_panic(expected = "one position per user")]
    fn submit_rejects_wrong_batch_sizes() {
        let config = MonitorConfig::new(Objective::Max, Method::circle());
        let mut session = GroupSession::streaming(3, config);
        session.submit(vec![Point::ORIGIN]);
    }
}
