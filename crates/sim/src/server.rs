//! The protocol front-end: an `mpn-proto` request queue drained into sharded engine ticks.
//!
//! [`MonitoringServer`] is the piece that turns the owned-session [`MonitoringEngine`] into
//! the server of Fig. 3: clients talk [`Request`] / [`Response`] (in-process as decoded
//! values, or over any byte stream via the `mpn-proto` codec — see
//! `examples/network_monitoring.rs` for both), the server queues the requests and applies
//! them in arrival order at the next [`process`](MonitoringServer::process) call:
//!
//! * [`Request::Register`] → a streaming [`GroupSession`](crate::GroupSession) with its
//!   event log enabled, placed horizon-aware on the least-loaded shard; answered with a
//!   `Registered` notification carrying the assigned group id;
//! * [`Request::Report`] → an [`EpochUpdate`] submitted into the group's inbox (invalid
//!   reports are answered with `UnknownGroup` / `BadRequest` notifications instead of
//!   touching any session);
//! * [`Request::Deregister`] → session teardown with metrics retained for fleet accounting.
//!
//! Each `process` call then runs **one** sharded engine tick — every group that received an
//! epoch advances in parallel — and converts the sessions' recorded
//! [`SessionEvent`](crate::SessionEvent)s into downlink responses: `ProbeRequest`s for the
//! step-2 probes and `SafeRegion`s for the step-3 assignments.  The caller owns the cadence:
//! a real deployment calls `process` on its epoch clock, a test calls it after enqueueing
//! whatever it wants applied.

use std::collections::VecDeque;
use std::sync::Arc;

use mpn_index::RTree;
use mpn_proto::{NotificationKind, Request, Response, WireConfig, WireGroupId};

use crate::engine::{EpochUpdate, GroupId, MonitoringEngine, SubmitError, TickSummary};
use crate::monitor::{GroupSession, MonitorConfig, SessionEvent};

/// Resolves a client-chosen [`WireConfig`] to the server-side monitoring configuration
/// (server defaults fill everything the wire does not carry, e.g. the heading smoothing).
#[must_use]
pub fn monitor_config(wire: &WireConfig) -> MonitorConfig {
    let mut config = MonitorConfig::new(wire.objective.into(), wire.method.to_method())
        .with_persistent_buffers(wire.persist_buffers);
    config.compress_regions = wire.compress_regions;
    if let Some(cap) = wire.max_timestamps {
        config = config.with_max_timestamps(cap as usize);
    }
    config
}

/// A monitoring server speaking the `mpn-proto` protocol over a request queue.
#[derive(Debug)]
pub struct MonitoringServer {
    engine: MonitoringEngine,
    queue: VecDeque<Request>,
    last_summary: Option<TickSummary>,
}

impl MonitoringServer {
    /// Creates a server over the POI tree with `num_shards` engine shards.
    ///
    /// # Panics
    /// Panics when the POI tree is empty.
    #[must_use]
    pub fn new(tree: impl Into<Arc<RTree>>, num_shards: usize) -> Self {
        Self {
            engine: MonitoringEngine::new(tree, num_shards),
            queue: VecDeque::new(),
            last_summary: None,
        }
    }

    /// The underlying engine, for telemetry (fleet metrics, shard loads, per-group state).
    #[must_use]
    pub fn engine(&self) -> &MonitoringEngine {
        &self.engine
    }

    /// The summary of the most recent [`process`](MonitoringServer::process) tick.
    #[must_use]
    pub fn last_summary(&self) -> Option<TickSummary> {
        self.last_summary
    }

    /// Queues one request for the next [`process`](MonitoringServer::process) call.
    pub fn enqueue(&mut self, request: Request) {
        self.queue.push_back(request);
    }

    /// Number of requests waiting to be applied.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queue.len()
    }

    /// Applies every queued request in arrival order, runs one sharded engine tick, and
    /// returns the downlink responses: control notifications first (one per applied request
    /// that warrants one, in request order), then the tick's per-user protocol sends.
    pub fn process(&mut self) -> Vec<Response> {
        let mut responses = Vec::new();
        while let Some(request) = self.queue.pop_front() {
            self.apply(request, &mut responses);
        }
        self.last_summary = Some(self.engine.tick());
        for (group, event) in self.engine.drain_events() {
            responses.push(match event {
                SessionEvent::Probed { user } => Response::ProbeRequest {
                    group: wire_id(group),
                    user: u32::try_from(user).expect("group sizes fit u32"),
                },
                SessionEvent::Assigned { user, meeting_point, region } => Response::SafeRegion {
                    group: wire_id(group),
                    user: u32::try_from(user).expect("group sizes fit u32"),
                    meeting_point,
                    region,
                },
            });
        }
        responses
    }

    fn apply(&mut self, request: Request, responses: &mut Vec<Response>) {
        match request {
            Request::Register { group_size, config } => {
                let Ok(group_size) = usize::try_from(group_size) else {
                    responses.push(notification(u64::MAX, NotificationKind::BadRequest));
                    return;
                };
                if group_size == 0 {
                    responses.push(notification(u64::MAX, NotificationKind::BadRequest));
                    return;
                }
                let session =
                    GroupSession::streaming(group_size, monitor_config(&config)).with_events(true);
                let id = self.engine.register_session(session);
                responses.push(notification(wire_id(id), NotificationKind::Registered));
            }
            Request::Report { group, positions } => {
                let Some(group_id) = engine_id(group) else {
                    responses.push(notification(group, NotificationKind::UnknownGroup));
                    return;
                };
                match self.engine.submit(EpochUpdate { group_id, positions }) {
                    Ok(()) => {}
                    Err(SubmitError::UnknownGroup(_)) => {
                        responses.push(notification(group, NotificationKind::UnknownGroup));
                    }
                    Err(SubmitError::WrongGroupSize { .. } | SubmitError::Finished(_)) => {
                        responses.push(notification(group, NotificationKind::BadRequest));
                    }
                }
            }
            Request::Deregister { group } => {
                let departed = engine_id(group).and_then(|id| self.engine.deregister(id));
                let kind = match departed {
                    Some(_) => NotificationKind::Deregistered,
                    None => NotificationKind::UnknownGroup,
                };
                responses.push(notification(group, kind));
            }
        }
    }
}

fn notification(group: WireGroupId, kind: NotificationKind) -> Response {
    Response::Notification { group, kind }
}

fn wire_id(id: GroupId) -> WireGroupId {
    id as WireGroupId
}

fn engine_id(id: WireGroupId) -> Option<GroupId> {
    usize::try_from(id).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_geom::Point;
    use mpn_mobility::poi::{clustered_pois, PoiConfig};
    use mpn_mobility::waypoint::{random_waypoint, WaypointConfig};
    use mpn_mobility::Trajectory;
    use mpn_proto::{WireMethod, WireObjective};

    fn world() -> (Arc<RTree>, Vec<Trajectory>) {
        let pois =
            clustered_pois(&PoiConfig { count: 500, domain: 1000.0, ..PoiConfig::default() }, 19);
        let tree = Arc::new(RTree::bulk_load(&pois));
        let config = WaypointConfig { domain: 1000.0, speed_limit: 6.0, timestamps: 100 };
        let group: Vec<Trajectory> = (0..3).map(|i| random_waypoint(&config, 70 + i)).collect();
        (tree, group)
    }

    fn positions_at(group: &[Trajectory], t: usize) -> Vec<Point> {
        group.iter().map(|traj| traj.at(t)).collect()
    }

    fn registered_id(responses: &[Response]) -> WireGroupId {
        responses
            .iter()
            .find_map(|r| match r {
                Response::Notification { group, kind: NotificationKind::Registered } => {
                    Some(*group)
                }
                _ => None,
            })
            .expect("a Registered notification")
    }

    #[test]
    fn register_report_notify_round_trip() {
        let (tree, group) = world();
        let mut server = MonitoringServer::new(Arc::clone(&tree), 2);
        server.enqueue(Request::Register {
            group_size: group.len() as u32,
            config: WireConfig::default(),
        });
        let responses = server.process();
        let id = registered_id(&responses);
        assert_eq!(responses.len(), 1, "no reports yet: registration ack only");

        // The first report registers the query: every user gets a safe region.
        server.enqueue(Request::Report { group: id, positions: positions_at(&group, 0) });
        let responses = server.process();
        let assigned: Vec<_> =
            responses.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).collect();
        assert_eq!(assigned.len(), group.len());
        assert!(responses.iter().all(|r| !matches!(
            r,
            Response::Notification { kind: NotificationKind::UnknownGroup, .. }
        )));

        // Stream the remaining epochs; every update must re-assign the whole group and
        // probe exactly the non-violators.
        let mut updates = 0;
        for t in 1..60 {
            server.enqueue(Request::Report { group: id, positions: positions_at(&group, t) });
            let responses = server.process();
            let probes =
                responses.iter().filter(|r| matches!(r, Response::ProbeRequest { .. })).count();
            let assigned =
                responses.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count();
            if assigned > 0 {
                updates += 1;
                assert_eq!(assigned, group.len());
                assert!(probes < group.len(), "at least one violator reported on her own");
            } else {
                assert_eq!(probes, 0, "quiet epochs send nothing");
            }
        }
        assert!(updates >= 1, "60 epochs of movement must trigger an update");
        let metrics = server.engine().group_metrics(0);
        assert_eq!(metrics.updates, updates + 1, "wire updates match the engine's accounting");
        assert_eq!(metrics.timestamps, 59);

        server.enqueue(Request::Deregister { group: id });
        let responses = server.process();
        assert!(responses
            .contains(&Response::Notification { group: id, kind: NotificationKind::Deregistered }));
        assert_eq!(server.engine().group_count(), 0);
        assert_eq!(server.engine().retired_count(), 1);
    }

    #[test]
    fn invalid_requests_get_error_notifications_not_crashes() {
        let (tree, group) = world();
        let mut server = MonitoringServer::new(Arc::clone(&tree), 2);

        server.enqueue(Request::Register { group_size: 0, config: WireConfig::default() });
        server.enqueue(Request::Report { group: 17, positions: positions_at(&group, 0) });
        server.enqueue(Request::Deregister { group: 17 });
        let responses = server.process();
        assert_eq!(
            responses,
            vec![
                notification(u64::MAX, NotificationKind::BadRequest),
                notification(17, NotificationKind::UnknownGroup),
                notification(17, NotificationKind::UnknownGroup),
            ]
        );
        assert_eq!(server.engine().group_count(), 0, "nothing was registered");

        // A wrong-size batch is rejected without touching the session.
        server.enqueue(Request::Register { group_size: 3, config: WireConfig::default() });
        let id = registered_id(&server.process());
        server.enqueue(Request::Report { group: id, positions: vec![Point::ORIGIN] });
        let responses = server.process();
        assert!(responses.contains(&notification(id, NotificationKind::BadRequest)));
        assert_eq!(server.engine().group_metrics(0).updates, 0);
        assert_eq!(server.last_summary().expect("processed").starved, 1);
    }

    #[test]
    fn server_sessions_match_the_replay_counters() {
        let (tree, group) = world();
        let wire = WireConfig {
            objective: WireObjective::Max,
            method: WireMethod::Tile,
            compress_regions: true,
            persist_buffers: false,
            max_timestamps: Some(50),
        };
        let replay = crate::monitor::run_monitoring(&tree, &group, &monitor_config(&wire));

        let mut server = MonitoringServer::new(Arc::clone(&tree), 4);
        server.enqueue(Request::Register { group_size: group.len() as u32, config: wire });
        let id = registered_id(&server.process());
        for t in 0..50 {
            server.enqueue(Request::Report { group: id, positions: positions_at(&group, t) });
            server.process();
        }
        let metrics = server.engine().group_metrics(engine_id(id).unwrap());
        assert_eq!(metrics.updates, replay.updates);
        assert_eq!(metrics.timestamps, replay.timestamps);
        assert_eq!(metrics.traffic, replay.traffic);
        assert_eq!(metrics.stats, replay.stats);
    }
}
