//! The protocol front-end: an `mpn-proto` request queue drained into sharded engine ticks.
//!
//! Since the multiplexed front-end landed this module is split in two layers:
//!
//! * [`ServerCore`] — the **transport-agnostic** heart every front-end shares.  It owns the
//!   [`MonitoringEngine`], a FIFO of `(client, Request)` pairs, and the group-ownership map
//!   that makes the server multi-tenant: each registered group belongs to the [`ClientId`]
//!   that registered it, downlink events route back to that client, and requests addressed
//!   to another client's group are rejected like unknown groups.  One
//!   [`process`](ServerCore::process) call applies every queued request in arrival order,
//!   runs **one** sharded engine tick, and returns the responses tagged with their
//!   destination client.  [`disconnect`](ServerCore::disconnect) tears down everything a
//!   vanished client owned — the mid-session-disconnect contract of the network front-ends.
//! * [`MonitoringServer`] — the single-client convenience wrapper (the in-process path): the
//!   same core pinned to one implicit client, with plain `Request` in / `Response` out.
//!
//! Three front-ends drive the core today (see `crates/net`): decoded values in-process, a
//! blocking one-thread-per-connection TCP loop, and the readiness-driven multiplexed event
//! loop — all byte-identical on the wire for the same request trace, because the responses
//! are produced here and only framed by the transports.
//!
//! Per request, the core behaves as before the split:
//!
//! * [`Request::Register`] → a streaming [`GroupSession`](crate::GroupSession) with its
//!   event log enabled, placed horizon-aware on the least-loaded shard; answered with a
//!   `Registered` notification carrying the assigned group id;
//! * [`Request::Report`] → an [`EpochUpdate`] submitted into the group's inbox (invalid
//!   reports are answered with `UnknownGroup` / `BadRequest` notifications instead of
//!   touching any session);
//! * [`Request::Deregister`] → session teardown with metrics retained for fleet accounting;
//! * [`Request::Admin`] → a POI-world mutation ([`WorldChange`]) applied through the
//!   engine's generation-stamped overlay, gated on a per-client admin grant
//!   ([`grant_admin`](ServerCore::grant_admin)).  Groups whose safe regions the change
//!   invalidated are force-recomputed and their owners receive an **unsolicited push**:
//!   a [`Response::WorldUpdate`] announcing the new world generation, followed by the
//!   revised `SafeRegion` responses — even if those clients sent nothing this tick.
//!
//! The caller owns the tick cadence: a deployment calls `process` on its epoch clock (the
//! event loop calls it once per poll iteration with work pending), a test calls it after
//! enqueueing whatever it wants applied.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use mpn_index::RTree;
use mpn_proto::{AdminRequest, NotificationKind, Request, Response, WireConfig, WireGroupId};

use crate::engine::{
    EpochUpdate, GroupId, MonitoringEngine, SubmitError, TickSummary, WorldChange,
};
use crate::monitor::{GroupSession, MonitorConfig, SessionEvent};

/// Identifier of one client connection as the core sees it.
///
/// Front-ends allocate these (monotonically — ids are never reused, unlike poll tokens or
/// group ids, so a recycled connection slot can never inherit a dead client's groups).
pub type ClientId = u64;

/// Resolves a client-chosen [`WireConfig`] to the server-side monitoring configuration
/// (server defaults fill everything the wire does not carry, e.g. the heading smoothing).
#[must_use]
pub fn monitor_config(wire: &WireConfig) -> MonitorConfig {
    let mut config = MonitorConfig::new(wire.objective.into(), wire.method.to_method())
        .with_persistent_buffers(wire.persist_buffers);
    config.compress_regions = wire.compress_regions;
    if let Some(cap) = wire.max_timestamps {
        config = config.with_max_timestamps(cap as usize);
    }
    config
}

/// What one [`ServerCore::process`] call produced.
#[derive(Debug, Default)]
pub struct ProcessOutput {
    /// Every downlink response of this tick, tagged with its destination client, in send
    /// order: control notifications first (one per applied request that warrants one, in
    /// request arrival order), then the tick's per-user protocol sends in shard order.
    pub responses: Vec<(ClientId, Response)>,
    /// Clients that had at least one request applied this tick, deduplicated, in first-
    /// arrival order.  Front-ends that frame their downlink per tick (the batch envelope of
    /// the TCP paths) answer exactly `applied ∪ {clients with responses}`.
    pub applied: Vec<ClientId>,
    /// The engine tick that ran after the requests were applied.
    pub summary: TickSummary,
}

/// The transport-agnostic monitoring server core: request queue, engine, tick loop and
/// multi-tenant response routing, shared by every front-end.
#[derive(Debug)]
pub struct ServerCore {
    engine: MonitoringEngine,
    queue: VecDeque<(ClientId, Request)>,
    /// Which client registered (and therefore owns) each live group.  Entries exist exactly
    /// for the engine's active groups that were registered through the core.
    owners: HashMap<GroupId, ClientId>,
    /// Submitted epochs not yet consumed by a tick, over all sessions.  Lets front-ends ask
    /// [`has_work`](ServerCore::has_work) without scanning the fleet: a burst of reports is
    /// applied to the inboxes in one call but drained one epoch per tick.
    backlog: usize,
    /// Clients allowed to mutate the POI world via [`Request::Admin`].  Deployments grant
    /// this out of band ([`grant_admin`](ServerCore::grant_admin)); an ungranted client's
    /// admin request is answered with [`NotificationKind::AdminDenied`] and touches nothing.
    admins: HashSet<ClientId>,
    last_summary: Option<TickSummary>,
}

impl ServerCore {
    /// Creates a core over the POI tree with `num_shards` engine shards.
    ///
    /// # Panics
    /// Panics when the POI tree is empty.
    #[must_use]
    pub fn new(tree: impl Into<Arc<RTree>>, num_shards: usize) -> Self {
        Self::with_engine(MonitoringEngine::new(tree, num_shards))
    }

    /// Creates a core around a pre-configured engine — the hook for non-default executors
    /// ([`TickExecutor::WorkStealing`](crate::TickExecutor)) and a shared
    /// [`QueryCache`](mpn_index::QueryCache), which have no wire-level knobs.
    #[must_use]
    pub fn with_engine(engine: MonitoringEngine) -> Self {
        Self {
            engine,
            queue: VecDeque::new(),
            owners: HashMap::new(),
            backlog: 0,
            admins: HashSet::new(),
            last_summary: None,
        }
    }

    /// The underlying engine, for telemetry (fleet metrics, shard loads, per-group state).
    #[must_use]
    pub fn engine(&self) -> &MonitoringEngine {
        &self.engine
    }

    /// The summary of the most recent [`process`](ServerCore::process) tick.
    #[must_use]
    pub fn last_summary(&self) -> Option<TickSummary> {
        self.last_summary
    }

    /// Queues one request from `client` for the next [`process`](ServerCore::process) call.
    pub fn enqueue(&mut self, client: ClientId, request: Request) {
        self.queue.push_back((client, request));
    }

    /// Number of requests waiting to be applied.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.queue.len()
    }

    /// Submitted epochs sitting in session inboxes, not yet consumed by a tick.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// Whether a [`process`](ServerCore::process) call would do anything: requests are
    /// queued, or previously applied epochs still wait in session inboxes.  Event loops use
    /// this to skip engine ticks on idle poll iterations.
    #[must_use]
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty() || self.backlog > 0
    }

    /// The client owning a live group, if the group was registered through the core.
    #[must_use]
    pub fn owner(&self, group: GroupId) -> Option<ClientId> {
        self.owners.get(&group).copied()
    }

    /// Grants `client` the right to mutate the POI world via [`Request::Admin`].
    ///
    /// There is deliberately no in-band way to acquire this: deployments decide out of band
    /// which connections are operator consoles (e.g. a local management socket) and grant
    /// them here.  The grant dies with the connection
    /// ([`disconnect`](ServerCore::disconnect)) and client ids are never reused, so a
    /// recycled connection slot can never inherit admin rights.
    pub fn grant_admin(&mut self, client: ClientId) {
        self.admins.insert(client);
    }

    /// Whether `client` may mutate the POI world.
    #[must_use]
    pub fn is_admin(&self, client: ClientId) -> bool {
        self.admins.contains(&client)
    }

    /// Applies every queued request in arrival order, runs one sharded engine tick, and
    /// returns the client-tagged responses (control notifications first, then the tick's
    /// per-user protocol sends).
    pub fn process(&mut self) -> ProcessOutput {
        let mut output = ProcessOutput::default();
        while let Some((client, request)) = self.queue.pop_front() {
            if !output.applied.contains(&client) {
                output.applied.push(client);
            }
            self.apply(client, request, &mut output.responses);
        }
        let summary = self.engine.tick();
        // Every advanced session consumed exactly one inbox epoch: the core only creates
        // streaming (inbox-fed) sessions, so `advanced` is the tick's backlog drain.
        self.backlog = self.backlog.saturating_sub(summary.advanced);
        self.last_summary = Some(summary);
        output.summary = summary;
        for (group, event) in self.engine.drain_events() {
            let Some(&client) = self.owners.get(&group) else {
                debug_assert!(false, "event from group {group} without an owner");
                continue;
            };
            output.responses.push((
                client,
                match event {
                    SessionEvent::Probed { user } => Response::ProbeRequest {
                        group: wire_id(group),
                        user: u32::try_from(user).expect("group sizes fit u32"),
                    },
                    SessionEvent::Assigned { user, meeting_point, region } => {
                        Response::SafeRegion {
                            group: wire_id(group),
                            user: u32::try_from(user).expect("group sizes fit u32"),
                            meeting_point,
                            region,
                        }
                    }
                },
            ));
        }
        output
    }

    /// Tears down everything `client` owns after its connection vanished: unapplied queued
    /// requests are dropped and every group it registered is deregistered (metrics retained,
    /// like an explicit [`Request::Deregister`]).  Returns the deregistered group ids.
    ///
    /// This is the disconnect contract of the network front-ends: a mid-session disconnect
    /// must not leak live sessions that nobody can ever report to again.
    pub fn disconnect(&mut self, client: ClientId) -> Vec<GroupId> {
        self.queue.retain(|(c, _)| *c != client);
        self.admins.remove(&client);
        let mut owned: Vec<GroupId> =
            self.owners.iter().filter(|(_, &c)| c == client).map(|(&g, _)| g).collect();
        owned.sort_unstable();
        for &group in &owned {
            self.owners.remove(&group);
            self.backlog = self.backlog.saturating_sub(self.engine.group(group).pending_epochs());
            let removed = self.engine.deregister(group);
            debug_assert!(removed.is_some(), "owned groups are live in the engine");
        }
        owned
    }

    fn apply(&mut self, client: ClientId, request: Request, out: &mut Vec<(ClientId, Response)>) {
        match request {
            Request::Register { group_size, config } => {
                let Ok(group_size) = usize::try_from(group_size) else {
                    out.push((client, notification(u64::MAX, NotificationKind::BadRequest)));
                    return;
                };
                if group_size == 0 {
                    out.push((client, notification(u64::MAX, NotificationKind::BadRequest)));
                    return;
                }
                let session =
                    GroupSession::streaming(group_size, monitor_config(&config)).with_events(true);
                let id = self.engine.register_session(session);
                self.owners.insert(id, client);
                out.push((client, notification(wire_id(id), NotificationKind::Registered)));
            }
            Request::Report { group, positions } => {
                // Ownership gates every group-addressed request: another client's group id
                // behaves exactly like an unregistered one (no existence leak, no
                // cross-tenant steering).
                let Some(group_id) = self.owned_by(group, client) else {
                    out.push((client, notification(group, NotificationKind::UnknownGroup)));
                    return;
                };
                match self.engine.submit(EpochUpdate { group_id, positions }) {
                    Ok(()) => self.backlog += 1,
                    Err(SubmitError::UnknownGroup(_)) => {
                        out.push((client, notification(group, NotificationKind::UnknownGroup)));
                    }
                    Err(SubmitError::WrongGroupSize { .. } | SubmitError::Finished(_)) => {
                        out.push((client, notification(group, NotificationKind::BadRequest)));
                    }
                }
            }
            Request::Deregister { group } => {
                let departed = self.owned_by(group, client).and_then(|id| {
                    self.backlog =
                        self.backlog.saturating_sub(self.engine.group(id).pending_epochs());
                    self.owners.remove(&id);
                    self.engine.deregister(id)
                });
                let kind = match departed {
                    Some(_) => NotificationKind::Deregistered,
                    None => NotificationKind::UnknownGroup,
                };
                out.push((client, notification(group, kind)));
            }
            Request::Admin(admin) => self.apply_admin(client, admin, out),
        }
    }

    /// Applies one [`Request::Admin`] world mutation: gate on the admin grant, mutate the
    /// engine's [`WorldView`](mpn_index::WorldView), then queue the unsolicited
    /// [`Response::WorldUpdate`] pushes for every group whose safe regions the change broke.
    ///
    /// Per-client ordering is the push contract of the front-ends: the owner of an affected
    /// group sees the `WorldUpdate` (queued here, during request application) *before* the
    /// revised `SafeRegion` responses, which the forced recomputation logged as session
    /// events and [`process`](ServerCore::process) drains only after the tick.
    fn apply_admin(
        &mut self,
        client: ClientId,
        admin: AdminRequest,
        out: &mut Vec<(ClientId, Response)>,
    ) {
        let echo = match admin {
            AdminRequest::PoiDelete { poi } => poi,
            AdminRequest::PoiInsert { .. } => u64::MAX,
        };
        if !self.admins.contains(&client) {
            out.push((client, notification(echo, NotificationKind::AdminDenied)));
            return;
        }
        let change = match admin {
            AdminRequest::PoiInsert { location } => WorldChange::PoiInsert { location },
            AdminRequest::PoiDelete { poi } => {
                let Ok(poi) = usize::try_from(poi) else {
                    out.push((client, notification(echo, NotificationKind::UnknownPoi)));
                    return;
                };
                WorldChange::PoiDelete { poi }
            }
        };
        let summary = self.engine.apply_world_change(change);
        let Some(poi) = summary.applied.then_some(summary.poi).flatten() else {
            out.push((client, notification(echo, NotificationKind::UnknownPoi)));
            return;
        };
        // The ack names the POI the change resolved to (for inserts: the id the new POI
        // was assigned, which the operator needs to ever delete it again).
        out.push((client, notification(poi as u64, NotificationKind::AdminApplied)));
        for &group in &summary.affected {
            let Some(&owner) = self.owners.get(&group) else {
                debug_assert!(false, "affected group {group} without an owner");
                continue;
            };
            let revised =
                u32::try_from(self.engine.group(group).group_size()).expect("group sizes fit u32");
            out.push((
                owner,
                Response::WorldUpdate {
                    group: wire_id(group),
                    generation: summary.generation,
                    revised,
                },
            ));
        }
    }

    /// Resolves a wire group id to an engine id iff the group is live and owned by `client`.
    fn owned_by(&self, group: WireGroupId, client: ClientId) -> Option<GroupId> {
        let id = engine_id(group)?;
        (self.owners.get(&id) == Some(&client)).then_some(id)
    }
}

/// The single-client monitoring server (the in-process front-end): a [`ServerCore`] pinned
/// to one implicit client, speaking plain `Request` in / `Response` out.
#[derive(Debug)]
pub struct MonitoringServer {
    core: ServerCore,
}

/// The implicit client of a [`MonitoringServer`].
const LOCAL_CLIENT: ClientId = 0;

impl MonitoringServer {
    /// Creates a server over the POI tree with `num_shards` engine shards.
    ///
    /// # Panics
    /// Panics when the POI tree is empty.
    #[must_use]
    pub fn new(tree: impl Into<Arc<RTree>>, num_shards: usize) -> Self {
        Self { core: ServerCore::new(tree, num_shards) }
    }

    /// Creates a server around a pre-configured engine (see [`ServerCore::with_engine`]).
    #[must_use]
    pub fn with_engine(engine: MonitoringEngine) -> Self {
        Self { core: ServerCore::with_engine(engine) }
    }

    /// The underlying engine, for telemetry (fleet metrics, shard loads, per-group state).
    #[must_use]
    pub fn engine(&self) -> &MonitoringEngine {
        self.core.engine()
    }

    /// The shared transport-agnostic core (the multi-client API surface).
    #[must_use]
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// Grants the implicit local client the right to mutate the POI world via
    /// [`Request::Admin`] (the in-process path is trusted by definition, but the gate still
    /// defaults to closed so tests exercise the same denial path as the network front-ends).
    pub fn grant_admin(&mut self) {
        self.core.grant_admin(LOCAL_CLIENT);
    }

    /// The summary of the most recent [`process`](MonitoringServer::process) tick.
    #[must_use]
    pub fn last_summary(&self) -> Option<TickSummary> {
        self.core.last_summary()
    }

    /// Queues one request for the next [`process`](MonitoringServer::process) call.
    pub fn enqueue(&mut self, request: Request) {
        self.core.enqueue(LOCAL_CLIENT, request);
    }

    /// Number of requests waiting to be applied.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.core.pending_requests()
    }

    /// Applies every queued request in arrival order, runs one sharded engine tick, and
    /// returns the downlink responses: control notifications first (one per applied request
    /// that warrants one, in request order), then the tick's per-user protocol sends.
    pub fn process(&mut self) -> Vec<Response> {
        self.core.process().responses.into_iter().map(|(_, response)| response).collect()
    }
}

fn notification(group: WireGroupId, kind: NotificationKind) -> Response {
    Response::Notification { group, kind }
}

fn wire_id(id: GroupId) -> WireGroupId {
    id as WireGroupId
}

fn engine_id(id: WireGroupId) -> Option<GroupId> {
    usize::try_from(id).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_geom::Point;
    use mpn_mobility::poi::{clustered_pois, PoiConfig};
    use mpn_mobility::waypoint::{random_waypoint, WaypointConfig};
    use mpn_mobility::Trajectory;
    use mpn_proto::{WireMethod, WireObjective};

    fn world() -> (Arc<RTree>, Vec<Trajectory>) {
        let pois =
            clustered_pois(&PoiConfig { count: 500, domain: 1000.0, ..PoiConfig::default() }, 19);
        let tree = Arc::new(RTree::bulk_load(&pois));
        let config = WaypointConfig { domain: 1000.0, speed_limit: 6.0, timestamps: 100 };
        let group: Vec<Trajectory> = (0..3).map(|i| random_waypoint(&config, 70 + i)).collect();
        (tree, group)
    }

    fn positions_at(group: &[Trajectory], t: usize) -> Vec<Point> {
        group.iter().map(|traj| traj.at(t)).collect()
    }

    fn registered_id(responses: &[Response]) -> WireGroupId {
        responses
            .iter()
            .find_map(|r| match r {
                Response::Notification { group, kind: NotificationKind::Registered } => {
                    Some(*group)
                }
                _ => None,
            })
            .expect("a Registered notification")
    }

    #[test]
    fn register_report_notify_round_trip() {
        let (tree, group) = world();
        let mut server = MonitoringServer::new(Arc::clone(&tree), 2);
        server.enqueue(Request::Register {
            group_size: group.len() as u32,
            config: WireConfig::default(),
        });
        let responses = server.process();
        let id = registered_id(&responses);
        assert_eq!(responses.len(), 1, "no reports yet: registration ack only");

        // The first report registers the query: every user gets a safe region.
        server.enqueue(Request::Report { group: id, positions: positions_at(&group, 0) });
        let responses = server.process();
        let assigned: Vec<_> =
            responses.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).collect();
        assert_eq!(assigned.len(), group.len());
        assert!(responses.iter().all(|r| !matches!(
            r,
            Response::Notification { kind: NotificationKind::UnknownGroup, .. }
        )));

        // Stream the remaining epochs; every update must re-assign the whole group and
        // probe exactly the non-violators.
        let mut updates = 0;
        for t in 1..60 {
            server.enqueue(Request::Report { group: id, positions: positions_at(&group, t) });
            let responses = server.process();
            let probes =
                responses.iter().filter(|r| matches!(r, Response::ProbeRequest { .. })).count();
            let assigned =
                responses.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count();
            if assigned > 0 {
                updates += 1;
                assert_eq!(assigned, group.len());
                assert!(probes < group.len(), "at least one violator reported on her own");
            } else {
                assert_eq!(probes, 0, "quiet epochs send nothing");
            }
        }
        assert!(updates >= 1, "60 epochs of movement must trigger an update");
        let metrics = server.engine().group_metrics(0);
        assert_eq!(metrics.updates, updates + 1, "wire updates match the engine's accounting");
        assert_eq!(metrics.timestamps, 59);

        server.enqueue(Request::Deregister { group: id });
        let responses = server.process();
        assert!(responses
            .contains(&Response::Notification { group: id, kind: NotificationKind::Deregistered }));
        assert_eq!(server.engine().group_count(), 0);
        assert_eq!(server.engine().retired_count(), 1);
    }

    #[test]
    fn invalid_requests_get_error_notifications_not_crashes() {
        let (tree, group) = world();
        let mut server = MonitoringServer::new(Arc::clone(&tree), 2);

        server.enqueue(Request::Register { group_size: 0, config: WireConfig::default() });
        server.enqueue(Request::Report { group: 17, positions: positions_at(&group, 0) });
        server.enqueue(Request::Deregister { group: 17 });
        let responses = server.process();
        assert_eq!(
            responses,
            vec![
                notification(u64::MAX, NotificationKind::BadRequest),
                notification(17, NotificationKind::UnknownGroup),
                notification(17, NotificationKind::UnknownGroup),
            ]
        );
        assert_eq!(server.engine().group_count(), 0, "nothing was registered");

        // A wrong-size batch is rejected without touching the session.
        server.enqueue(Request::Register { group_size: 3, config: WireConfig::default() });
        let id = registered_id(&server.process());
        server.enqueue(Request::Report { group: id, positions: vec![Point::ORIGIN] });
        let responses = server.process();
        assert!(responses.contains(&notification(id, NotificationKind::BadRequest)));
        assert_eq!(server.engine().group_metrics(0).updates, 0);
        assert_eq!(server.last_summary().expect("processed").starved, 1);
    }

    #[test]
    fn server_sessions_match_the_replay_counters() {
        let (tree, group) = world();
        let wire = WireConfig {
            objective: WireObjective::Max,
            method: WireMethod::Tile,
            compress_regions: true,
            persist_buffers: false,
            max_timestamps: Some(50),
        };
        let replay = crate::monitor::run_monitoring(&tree, &group, &monitor_config(&wire));

        let mut server = MonitoringServer::new(Arc::clone(&tree), 4);
        server.enqueue(Request::Register { group_size: group.len() as u32, config: wire });
        let id = registered_id(&server.process());
        for t in 0..50 {
            server.enqueue(Request::Report { group: id, positions: positions_at(&group, t) });
            server.process();
        }
        let metrics = server.engine().group_metrics(engine_id(id).unwrap());
        assert_eq!(metrics.updates, replay.updates);
        assert_eq!(metrics.timestamps, replay.timestamps);
        assert_eq!(metrics.traffic, replay.traffic);
        assert_eq!(metrics.stats, replay.stats);
    }

    #[test]
    fn core_routes_responses_to_the_owning_client() {
        let (tree, group) = world();
        let mut core = ServerCore::new(Arc::clone(&tree), 2);
        core.enqueue(
            7,
            Request::Register { group_size: group.len() as u32, config: WireConfig::default() },
        );
        core.enqueue(
            9,
            Request::Register { group_size: group.len() as u32, config: WireConfig::default() },
        );
        let output = core.process();
        assert_eq!(output.applied, vec![7, 9]);
        let ids: Vec<(ClientId, WireGroupId)> = output
            .responses
            .iter()
            .filter_map(|(c, r)| match r {
                Response::Notification { group, kind: NotificationKind::Registered } => {
                    Some((*c, *group))
                }
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 2);
        let (id7, id9) = (ids[0].1, ids[1].1);
        assert_eq!(ids[0].0, 7);
        assert_eq!(ids[1].0, 9);
        assert_eq!(core.owner(id7 as usize), Some(7));
        assert_eq!(core.owner(id9 as usize), Some(9));

        // Each client's reports produce downlink addressed to that client only.
        core.enqueue(7, Request::Report { group: id7, positions: positions_at(&group, 0) });
        core.enqueue(9, Request::Report { group: id9, positions: positions_at(&group, 0) });
        let output = core.process();
        assert_eq!(output.summary.registered, 2);
        for (client, response) in &output.responses {
            match response {
                Response::SafeRegion { group, .. } | Response::ProbeRequest { group, .. } => {
                    let expect = if *group == id7 { 7 } else { 9 };
                    assert_eq!(*client, expect, "downlink routes to the owning client");
                }
                Response::Notification { .. } | Response::WorldUpdate { .. } => {}
            }
        }
        let assigned = output
            .responses
            .iter()
            .filter(|(_, r)| matches!(r, Response::SafeRegion { .. }))
            .count();
        assert_eq!(assigned, 2 * group.len(), "both groups got their initial assignment");
    }

    #[test]
    fn cross_client_group_access_is_rejected_like_an_unknown_group() {
        let (tree, group) = world();
        let mut core = ServerCore::new(Arc::clone(&tree), 2);
        core.enqueue(
            1,
            Request::Register { group_size: group.len() as u32, config: WireConfig::default() },
        );
        let output = core.process();
        let id = output
            .responses
            .iter()
            .find_map(|(_, r)| match r {
                Response::Notification { group, kind: NotificationKind::Registered } => {
                    Some(*group)
                }
                _ => None,
            })
            .unwrap();

        // Client 2 cannot report into, or deregister, client 1's group.
        core.enqueue(2, Request::Report { group: id, positions: positions_at(&group, 0) });
        core.enqueue(2, Request::Deregister { group: id });
        let output = core.process();
        let to_2: Vec<_> = output.responses.iter().filter(|(c, _)| *c == 2).collect();
        assert_eq!(to_2.len(), 2);
        assert!(to_2.iter().all(|(_, r)| matches!(
            r,
            Response::Notification { kind: NotificationKind::UnknownGroup, .. }
        )));
        assert_eq!(core.engine().group_count(), 1, "the group survived the hijack attempts");
        assert_eq!(core.owner(id as usize), Some(1));
    }

    #[test]
    fn disconnect_deregisters_owned_groups_and_drops_queued_requests() {
        let (tree, group) = world();
        let mut core = ServerCore::new(Arc::clone(&tree), 2);
        core.enqueue(
            1,
            Request::Register { group_size: group.len() as u32, config: WireConfig::default() },
        );
        core.enqueue(
            2,
            Request::Register { group_size: group.len() as u32, config: WireConfig::default() },
        );
        core.process();
        assert_eq!(core.engine().group_count(), 2);

        // Client 1 vanishes with a report still queued and epochs in its inbox.
        core.enqueue(1, Request::Report { group: 0, positions: positions_at(&group, 0) });
        core.process();
        core.enqueue(1, Request::Report { group: 0, positions: positions_at(&group, 1) });
        core.enqueue(1, Request::Report { group: 0, positions: positions_at(&group, 2) });
        assert_eq!(core.pending_requests(), 2);
        let dropped = core.disconnect(1);
        assert_eq!(dropped, vec![0]);
        assert_eq!(core.pending_requests(), 0, "queued requests of the dead client are dropped");
        assert_eq!(core.backlog(), 0, "inbox epochs of the dead client left the backlog");
        assert_eq!(core.engine().group_count(), 1, "client 2's group survives");
        assert_eq!(core.engine().retired_count(), 1, "client 1's metrics are retained");
        assert_eq!(core.owner(0), None);
        assert!(core.disconnect(1).is_empty(), "disconnect is idempotent");

        // The freed id is reusable and gets a fresh owner.
        core.enqueue(
            3,
            Request::Register { group_size: group.len() as u32, config: WireConfig::default() },
        );
        let output = core.process();
        let reused = output
            .responses
            .iter()
            .find_map(|(_, r)| match r {
                Response::Notification { group, kind: NotificationKind::Registered } => {
                    Some(*group)
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(reused, 0, "the freed id is reused");
        assert_eq!(core.owner(0), Some(3), "ownership moved to the new registrant");
    }

    #[test]
    fn admin_requests_are_gated_and_push_world_updates_to_affected_owners() {
        let (tree, group) = world();
        let mut core = ServerCore::new(Arc::clone(&tree), 2);
        // Client 1 is the operator console; clients 2 and 3 are ordinary tenants.
        core.grant_admin(1);
        assert!(core.is_admin(1) && !core.is_admin(2));
        for client in [2, 3] {
            core.enqueue(
                client,
                Request::Register { group_size: group.len() as u32, config: WireConfig::default() },
            );
        }
        core.process();
        // The tenants monitor opposite corners of the domain, so their answers and §5.4
        // buffers share no POIs and a targeted delete affects exactly one of them.
        let mirrored: Vec<Point> = positions_at(&group, 0)
            .iter()
            .map(|p| Point::new(1000.0 - p.x, 1000.0 - p.y))
            .collect();
        core.enqueue(2, Request::Report { group: 0, positions: positions_at(&group, 0) });
        core.enqueue(3, Request::Report { group: 1, positions: mirrored });
        core.process();

        // An ungranted client is denied without touching the world.
        let generation = core.engine().world().generation();
        core.enqueue(2, Request::Admin(AdminRequest::PoiDelete { poi: 0 }));
        let output = core.process();
        assert!(output.responses.contains(&(2, notification(0, NotificationKind::AdminDenied))));
        assert_eq!(
            core.engine().world().generation(),
            generation,
            "denied requests mutate nothing"
        );

        // Deleting an unknown POI is acknowledged as such, and the world stays put.
        core.enqueue(1, Request::Admin(AdminRequest::PoiDelete { poi: 999_999 }));
        let output = core.process();
        assert!(output
            .responses
            .contains(&(1, notification(999_999, NotificationKind::UnknownPoi))));
        assert_eq!(core.engine().world().generation(), generation);

        // Deleting group 0's optimal POI pushes a WorldUpdate to its owner (client 2),
        // followed by the revised safe regions — while client 3's group stays quiet.
        let broken =
            core.engine().group(0).session_state().last_answer().expect("answered").optimal_index;
        core.enqueue(1, Request::Admin(AdminRequest::PoiDelete { poi: broken as u64 }));
        let output = core.process();
        assert!(output
            .responses
            .contains(&(1, notification(broken as u64, NotificationKind::AdminApplied))));
        let to_2: Vec<&Response> =
            output.responses.iter().filter(|(c, _)| *c == 2).map(|(_, r)| r).collect();
        assert!(
            matches!(
                to_2.first(),
                Some(Response::WorldUpdate { group: 0, revised, .. })
                    if *revised == group.len() as u32
            ),
            "the push announcement precedes the revised regions: {to_2:?}"
        );
        assert_eq!(
            to_2.iter().filter(|r| matches!(r, Response::SafeRegion { .. })).count(),
            group.len(),
            "every member gets a revised region"
        );
        let new_answer = core.engine().group(0).session_state().last_answer().expect("recomputed");
        assert_ne!(new_answer.optimal_index, broken, "the deleted POI is gone from the answer");
        assert!(
            !output.responses.iter().any(|(c, _)| *c == 3),
            "the unaffected tenant hears nothing"
        );

        // The admin grant dies with the connection.
        core.disconnect(1);
        assert!(!core.is_admin(1));
    }

    #[test]
    fn local_server_admin_grant_applies_world_changes() {
        let (tree, group) = world();
        let mut server = MonitoringServer::new(Arc::clone(&tree), 2);
        server.enqueue(Request::Admin(AdminRequest::PoiInsert { location: Point::ORIGIN }));
        let responses = server.process();
        assert_eq!(responses, vec![notification(u64::MAX, NotificationKind::AdminDenied)]);

        server.grant_admin();
        server.enqueue(Request::Admin(AdminRequest::PoiInsert { location: Point::ORIGIN }));
        let responses = server.process();
        let inserted = responses
            .iter()
            .find_map(|r| match r {
                Response::Notification { group, kind: NotificationKind::AdminApplied } => {
                    Some(*group)
                }
                _ => None,
            })
            .expect("an AdminApplied ack naming the new POI");
        assert_eq!(server.engine().world().len(), tree.len() + 1);

        // The id in the ack is usable: the operator can delete the POI it just created.
        server.enqueue(Request::Admin(AdminRequest::PoiDelete { poi: inserted }));
        let responses = server.process();
        assert!(responses.contains(&notification(inserted, NotificationKind::AdminApplied)));
        assert_eq!(server.engine().world().len(), tree.len());
        let _ = group;
    }

    #[test]
    fn backlog_tracks_unconsumed_epochs() {
        let (tree, group) = world();
        let mut core = ServerCore::new(Arc::clone(&tree), 2);
        core.enqueue(
            1,
            Request::Register { group_size: group.len() as u32, config: WireConfig::default() },
        );
        core.process();
        assert!(!core.has_work());

        // A burst of three reports is applied in one call but consumed one epoch per tick.
        for t in 0..3 {
            core.enqueue(1, Request::Report { group: 0, positions: positions_at(&group, t) });
        }
        assert!(core.has_work());
        let output = core.process();
        assert_eq!(output.summary.advanced, 1);
        assert_eq!(core.backlog(), 2, "two epochs still queued in the inbox");
        assert!(core.has_work(), "inbox epochs keep the core busy without new requests");
        core.process();
        core.process();
        assert_eq!(core.backlog(), 0);
        assert!(!core.has_work());
    }
}
