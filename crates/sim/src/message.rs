//! Client–server messages and their packet cost.
//!
//! The system architecture (Fig. 3) uses three message types:
//!
//! 1. a user who left her safe region reports her location to the server,
//! 2. the server probes the remaining users, who reply with their locations,
//! 3. the server notifies every user of the (possibly new) optimal meeting point together
//!    with her new safe region.
//!
//! The experiments measure communication in TCP packets: one packet carries at most
//! `(576 − 40) / 8 = 67` double-precision values (Section 7.1).  Shapes cost 3 values per
//! circle, 3 values per square tile and 4 values per rectangle; the lossless compression of
//! `mpn-core::compress` reduces tile regions to roughly half a value per tile.

use mpn_core::{packets_for_values, region_value_count, SafeRegion};

/// The direction and kind of a message, mirroring Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Step 1: a user reports that she left her safe region (carries her location).
    LocationReport,
    /// Step 2 (downlink): the server asks a user for her current location.
    Probe,
    /// Step 2 (uplink): a user answers a probe with her location.
    ProbeReply,
    /// Step 3: the server sends the optimal meeting point and a safe region to a user.
    ResultNotification,
}

/// A message together with its payload size in double-precision values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// What kind of message this is.
    pub kind: MessageKind,
    /// Payload size in 8-byte values.
    pub values: usize,
}

impl Message {
    /// A location report: the user's coordinates.
    #[must_use]
    pub fn location_report() -> Self {
        Self { kind: MessageKind::LocationReport, values: 2 }
    }

    /// A probe request: carries only the query identifier (1 value).
    #[must_use]
    pub fn probe() -> Self {
        Self { kind: MessageKind::Probe, values: 1 }
    }

    /// A probe reply: the user's coordinates.
    #[must_use]
    pub fn probe_reply() -> Self {
        Self { kind: MessageKind::ProbeReply, values: 2 }
    }

    /// A result notification: meeting point coordinates plus the safe-region payload.
    ///
    /// When `compress` is true, tile regions are shipped in the lossless compressed encoding;
    /// circles are always 3 plain values.  The region payload size is the shared §7.1
    /// definition [`mpn_core::region_value_count`], which also pins the `mpn-proto` wire
    /// accounting.
    #[must_use]
    pub fn result_notification(region: &SafeRegion, compress: bool) -> Self {
        Self {
            kind: MessageKind::ResultNotification,
            values: 2 + region_value_count(region, compress),
        }
    }

    /// Number of TCP packets this message occupies.
    #[must_use]
    pub fn packets(&self) -> usize {
        packets_for_values(self.values)
    }
}

/// Tally of messages and packets exchanged during a monitoring run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Total messages sent (all kinds, both directions).
    pub messages: usize,
    /// Total TCP packets sent.
    pub packets: usize,
    /// Packets sent from clients to the server (uplink).
    pub uplink_packets: usize,
    /// Packets sent from the server to clients (downlink).
    pub downlink_packets: usize,
}

impl Traffic {
    /// Records one message.
    pub fn record(&mut self, message: Message) {
        self.messages += 1;
        let packets = message.packets();
        self.packets += packets;
        match message.kind {
            MessageKind::LocationReport | MessageKind::ProbeReply => self.uplink_packets += packets,
            MessageKind::Probe | MessageKind::ResultNotification => {
                self.downlink_packets += packets;
            }
        }
    }

    /// Total bytes on the wire under the §7.1 cost model: every counted packet is one full
    /// 576-byte TCP packet (40 bytes of headers plus up to 67 eight-byte values), so this
    /// is a packet-granular bound — a partially filled packet still costs a whole one,
    /// exactly as the paper's communication measure charges it.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        const PACKET_BYTES: u64 = 576;
        self.packets as u64 * PACKET_BYTES
    }

    /// Merges another tally into this one.
    pub fn absorb(&mut self, other: &Traffic) {
        self.messages += other.messages;
        self.packets += other.packets;
        self.uplink_packets += other.uplink_packets;
        self.downlink_packets += other.downlink_packets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpn_core::{TileCell, TileFrame, TileRegion};
    use mpn_geom::{Circle, Point};

    #[test]
    fn small_messages_fit_one_packet() {
        assert_eq!(Message::location_report().packets(), 1);
        assert_eq!(Message::probe().packets(), 1);
        assert_eq!(Message::probe_reply().packets(), 1);
    }

    #[test]
    fn circle_notification_is_one_packet() {
        let region = SafeRegion::Circle(Circle::new(Point::ORIGIN, 5.0));
        let msg = Message::result_notification(&region, true);
        assert_eq!(msg.values, 5);
        assert_eq!(msg.packets(), 1);
    }

    #[test]
    fn tile_notification_packets_depend_on_compression() {
        let mut tiles = TileRegion::with_seed(TileFrame::centered_at(Point::ORIGIN, 2.0));
        for i in 1..=120 {
            tiles.push(TileCell::new(0, i, 0));
        }
        let region = SafeRegion::Tiles(tiles);
        let plain = Message::result_notification(&region, false);
        let compressed = Message::result_notification(&region, true);
        // 121 tiles * 3 values + 2 > 5 packets uncompressed; compressed fits in 2.
        assert_eq!(plain.values, 2 + 3 * 121);
        assert!(plain.packets() >= 5);
        assert!(compressed.values < plain.values / 3);
        assert!(compressed.packets() <= 2);
    }

    #[test]
    fn traffic_tallies_direction_correctly() {
        let mut t = Traffic::default();
        t.record(Message::location_report());
        t.record(Message::probe());
        t.record(Message::probe_reply());
        let region = SafeRegion::Circle(Circle::new(Point::ORIGIN, 1.0));
        t.record(Message::result_notification(&region, true));
        assert_eq!(t.messages, 4);
        assert_eq!(t.packets, 4);
        assert_eq!(t.uplink_packets, 2);
        assert_eq!(t.downlink_packets, 2);

        let mut total = Traffic::default();
        total.absorb(&t);
        total.absorb(&t);
        assert_eq!(total.messages, 8);
        assert_eq!(total.packets, 8);
    }
}
