//! Stateful client–server monitoring for meeting-point notification.
//!
//! This crate glues the safe-region engines (`mpn-core`), the POI index (`mpn-index`) and the
//! workload generators (`mpn-mobility`) into the monitoring protocol of Fig. 3 and measures
//! what the paper's evaluation measures:
//!
//! * **update frequency** — safe-region recomputations per timestamp,
//! * **running time** — CPU time per safe-region computation,
//! * **communication cost** — TCP packets exchanged between clients and the server.
//!
//! # Architecture: own-and-consume
//!
//! Since the owned-session refactor nothing in the monitoring stack borrows workload data;
//! position input flows *into* the server as owned per-epoch batches, which is what a real
//! deployment looks like.  The stack has four layers:
//!
//! * [`GroupSession`] ([`monitor`]) — the protocol state machine of *one* moving group.  It
//!   owns its engine, its [`mpn_core::SessionState`] (heading predictors, §5.4 GNN buffer,
//!   last answer) and its metrics, and **consumes** one epoch of owned positions per
//!   [`advance`](GroupSession::advance): either batches queued via
//!   [`submit`](GroupSession::submit) (streaming) or epochs played back by a
//!   [`TrajectoryFeed`] (replay — a thin adapter over `Arc`-shared recorded trajectories,
//!   counter-bit-identical to the historical borrowing replay).  A session without a
//!   timestamp cap has an **open horizon**: it monitors until deregistered.
//! * [`MonitoringEngine`] ([`engine`]) — a churning fleet of sessions sharded over a
//!   persistent worker pool and advanced one epoch per [`tick`](MonitoringEngine::tick).
//!   The engine owns its POI index as a [`mpn_index::WorldView`] (a shared base R-tree
//!   behind a generation-stamped mutation overlay) and has no lifetime parameters, so it
//!   moves freely into server threads.  Dynamic membership
//!   ([`register`](MonitoringEngine::register) / [`register_stream`](MonitoringEngine::register_stream)
//!   / [`deregister`](MonitoringEngine::deregister) / [`rejoin`](MonitoringEngine::rejoin))
//!   runs over a free-list of group ids with **horizon-aware** least-loaded placement
//!   (occupancy weighted by remaining epochs, [`ShardLoad::weight`]); streaming input
//!   arrives as [`EpochUpdate`]s via [`submit`](MonitoringEngine::submit).
//! * [`ServerCore`] / [`MonitoringServer`] ([`server`]) — the `mpn-proto` front-end core: a
//!   queue of client-tagged wire-shaped `Request`s drained into sharded ticks, with the
//!   sessions' [`SessionEvent`]s routed back to the client owning each group (probe
//!   requests, safe-region assignments).  The core is transport-agnostic and multi-tenant;
//!   [`MonitoringServer`] pins it to one implicit client for the in-process path.
//!
//! # The three front-end paths
//!
//! One `ServerCore` serves three interchangeable front-ends, all producing **byte-identical
//! responses for the same request trace** (pinned by `tests/mux_parity.rs`):
//!
//! 1. **In-process** — decoded `Request` values enqueued on a [`MonitoringServer`] and
//!    `process()`ed on the caller's cadence.  No transport, no framing; tests and embedded
//!    deployments.
//! 2. **Blocking TCP** — the legacy one-thread-per-connection loop (`mpn_net::serve_blocking`):
//!    `read_frame` pulls whole frames off the socket, each request is applied and ticked,
//!    the responses go back under the count-prefixed batch envelope.  Simple, but one OS
//!    thread per client.
//! 3. **Multiplexed** — the readiness-driven event loop (`mpn_net::MuxServer`): one thread,
//!    thousands of non-blocking sockets, per-connection incremental decode
//!    (`mpn_proto::FrameReader`), requests batched into the shared core once per poll
//!    iteration, write-buffered responses with backpressure (see `mpn-net`'s crate docs for
//!    the backpressure contract: a client that stops draining first stops being read, then
//!    is dropped and deregistered).
//! * [`Message`] / [`Traffic`] ([`message`]) — the §7.1 cost model (packets of 67 doubles),
//!   shared with `mpn-proto`'s wire accounting through
//!   [`mpn_core::region_value_count`].
//!
//! # The mutable world: generations, invalidation, push
//!
//! The POI set is live data.  [`MonitoringEngine::apply_world_change`] applies a
//! [`WorldChange`] (POI insert or delete) to the engine's `WorldView` and returns an
//! [`InvalidationSummary`].  The contract, end to end:
//!
//! * **Generations** — every mutation stamps the world with a fresh, strictly increasing
//!   generation; every computed answer is stamped with the generation it was computed
//!   against (`mpn_core::SessionState::answer_generation`).  Compaction — folding the
//!   overlay into a rebuilt base once it outgrows its threshold — preserves ids and does
//!   *not* bump the generation, because the content is unchanged; §5.4 buffer caches keyed
//!   on the generation therefore survive it.
//! * **Invalidation is precise, not conservative-rebuild**: a delete breaks a group iff the
//!   deleted POI participates in its answer or its §5.4 GNN buffer; an insert breaks it iff
//!   the new POI's best-case aggregate over the group's safe regions undercuts the current
//!   optimum's worst case (`mpn_core::SessionState::{delete_invalidates,
//!   insert_invalidates}`).  Both predicates are *sound*: a group they leave alone still
//!   upholds Definition 3 against the new world (pinned by the workspace property test
//!   `tests/world_mutation.rs`).  Only broken groups are force-recomputed — fanned over the
//!   shards on the same worker pool as a tick — and the summary names exactly those groups,
//!   so callers can account per-group work.
//! * **Push** — [`ServerCore`] maps an applied admin mutation ([`mpn_proto::Request::Admin`],
//!   gated per client by [`ServerCore::grant_admin`]) to unsolicited downlink for each
//!   affected group's owner: a [`mpn_proto::Response::WorldUpdate`] announcing the new
//!   generation, followed by the force-recomputed `SafeRegion`s, even if that client sent
//!   nothing this tick.  The network front-ends deliver these through their ordinary batch
//!   machinery (see `mpn-net`'s crate docs for the idle-connection delivery and ordering
//!   guarantees).
//!
//! # Shared caches and when they help
//!
//! Ticks can route every index query through a fleet-wide, lock-striped
//! [`mpn_index::QueryCache`] attached via [`MonitoringEngine::with_query_cache`] (or
//! [`ServerCore::with_engine`] for the server paths).  The cache is keyed by
//! *(query kind, quantized query geometry, k, world generation)* and replays candidate lists
//! **and** their [`mpn_index::QueryStats`] verbatim, so counters stay bit-identical with or
//! without it — only repeated R-tree / GNN traversal work is saved.  The generation in the
//! key makes invalidation free: after [`MonitoringEngine::apply_world_change`] bumps the
//! generation, every older entry is simply never looked up again (and is eventually evicted
//! by capacity), with no flush pass and no cross-tick bookkeeping.
//!
//! When does it help?  Exactly when distinct sessions ask *bit-identical* questions within
//! one generation: flash-crowd fleets (many groups converging on the same venue share GNN
//! candidate lists), replicated monitors (several subscribers watching the same group), or
//! dense fleets whose groups quantize onto the same grid cell.  It does **not** help a fleet
//! of geometrically unique groups — every lookup is a miss plus an insert — which is why the
//! cache is opt-in rather than default.  Hit/miss deltas per tick are reported on
//! [`TickSummary::exec`] ([`TickExecCounters`]) and as engine-lifetime totals on
//! [`MonitoringEngine::exec_totals`], so a deployment can measure its own hit rate and drop
//! the cache when it pays for nothing.
//!
//! The same `exec` counters expose the work-stealing executor
//! ([`TickExecutor::WorkStealing`]): ticks dispatch stealable session *batches* instead of
//! one monolithic job per shard, so idle workers finish a straggling hot shard's tail
//! (`steals`, `imbalance`).  Like the cache, stealing changes only the schedule — every
//! protocol counter stays identical to the serial replay.
//!
//! # Memory layout of the tick hot path
//!
//! At fleet scale the tick is memory-bound, not compute-bound: with a warm query cache the
//! per-session work collapses to a few counter updates and a cache probe, and throughput is
//! set by how many cache lines a tick must pull.  Three layout decisions keep that number
//! small (pinned counter-bit-identical by `tests/engine_parity.rs`'s walk-everything
//! oracle):
//!
//! * **Hot/cold session split** — each shard stores its sessions as two parallel arrays
//!   indexed by *slot*: a dense hot array of per-session decision state (vacancy, finished
//!   flag, feed readiness, inbox depth, placement weight — a few dozen bytes) and a
//!   slot-stable cold slab of `Option<GroupSession>` bodies (inbox, predictors, metrics,
//!   cached answer).  The tick streams the hot array linearly and dereferences a cold body
//!   only when that session actually has an epoch to consume.  Deregistration marks the
//!   slot vacant and parks it on a free list; registration reuses parked slots, so churning
//!   slabs stay dense and directory entries (`id → shard, slot`) never move.
//! * **Active-set scheduling** — the skip paths of the hot array are exact tallies of what
//!   a full advance would have returned: a finished session counts `finished` without
//!   being touched, a session with an empty inbox and an exhausted feed counts `starved`
//!   (its clock would not have moved, so its cached weight is still current), and a vacant
//!   slot counts nothing.  A fleet that is mostly idle pays cache lines only for its live
//!   fraction.
//! * **Per-worker query scratch arenas** — the index layer stages probe keys and GNN
//!   candidate staging in thread-local [`mpn_index::QueryScratch`] buffers
//!   ([`mpn_index::with_scratch`]), so a steady-state warm-cache tick performs *zero*
//!   per-query heap allocations.  Pool workers persist across ticks, so each worker's
//!   arenas warm once and are reused for the engine's lifetime; single-shard engines
//!   additionally tick through an allocation-free fast path (asserted by the counting
//!   allocator in `mpn-bench`'s `benches/micro.rs` under `--features bench`).
//!
//! # Engine-wide snapshots
//!
//! [`MonitoringEngine::report`] returns an [`EngineReport`]: one coherent struct holding
//! the engine clock, membership accounting (live / retired / reclaimed),
//! lifetime [`TickExecCounters`], the shared query cache's
//! [`CacheStats`](mpn_index::CacheStats), per-shard [`ShardLoad`] and the merged fleet
//! [`MonitoringMetrics`].  Every measurement tool — the `mpn-bench` capacity harness, the
//! loadgen examples, future dashboards — reads this one snapshot instead of poking five
//! accessors, so "the numbers that matter" (tick throughput, per-update CPU percentiles
//! via the batch [`MonitoringMetrics::compute_time_percentiles`] path, wire bytes via
//! [`Traffic::wire_bytes`], steal/cache counters) are defined in exactly one place.
//! Reports are cumulative; phase-based tools snapshot at phase boundaries and diff the
//! counters.  The free [`percentiles`] helper serves any other sample vector (e.g. wire
//! round-trip latencies) with the same one-sort batch rule.
//!
//! [`run_monitoring`] remains as the single-group compatibility wrapper (bit-identical
//! counters to the historical stateless loop, pinned by `tests/engine_parity.rs`) and
//! [`experiment::run_workload`] drives a whole multi-group workload through the engine,
//! which is how every figure of the paper is reproduced by `mpn-bench`.

#![forbid(unsafe_code)]

pub mod engine;
pub mod experiment;
pub mod message;
pub mod metrics;
pub mod monitor;
pub mod server;

pub use engine::{
    EpochUpdate, GroupId, InvalidationSummary, MonitoringEngine, SubmitError, TickExecCounters,
    TickExecutor, TickSummary, WorldChange, DEFAULT_TICK_BATCH, OPEN_HORIZON_WEIGHT,
};
pub use experiment::{run_workload, run_workload_sharded, WorkloadSummary};
pub use message::{Message, MessageKind, Traffic};
pub use metrics::{percentiles, EngineReport, MonitoringMetrics, ShardLoad};
pub use monitor::{
    run_monitoring, GroupSession, MonitorConfig, SessionEvent, StepOutcome, TrajectoryFeed,
};
pub use server::{monitor_config, ClientId, MonitoringServer, ProcessOutput, ServerCore};
