//! Stateful client–server monitoring for meeting-point notification.
//!
//! This crate glues the safe-region engines (`mpn-core`), the POI index (`mpn-index`) and the
//! workload generators (`mpn-mobility`) into the monitoring protocol of Fig. 3 and measures
//! what the paper's evaluation measures:
//!
//! * **update frequency** — safe-region recomputations per timestamp,
//! * **running time** — CPU time per safe-region computation,
//! * **communication cost** — TCP packets exchanged between clients and the server.
//!
//! # Architecture
//!
//! The monitoring layer is built from two pieces:
//!
//! * [`GroupSession`] ([`monitor`]) — the protocol state machine of *one* moving group:
//!   violation detection against the last answer, the report/probe/notify message exchange,
//!   and the per-group engine state ([`mpn_core::SessionState`]: heading predictors, §5.4 GNN
//!   buffer, last answer) that persists across updates;
//! * [`MonitoringEngine`] ([`engine`]) — a churning fleet of sessions sharded over a
//!   persistent worker pool and advanced one timestamp per [`tick`](MonitoringEngine::tick),
//!   with dynamic membership ([`register`](MonitoringEngine::register) /
//!   [`deregister`](MonitoringEngine::deregister) / [`rejoin`](MonitoringEngine::rejoin)
//!   over a free-list of group ids, least-loaded shard placement) and per-group, per-shard
//!   ([`ShardLoad`]) and fleet-wide [`MonitoringMetrics`] / [`Traffic`] aggregation.
//!
//! [`run_monitoring`] remains as the single-group compatibility wrapper (bit-identical
//! counters to the historical stateless loop) and [`experiment::run_workload`] drives a whole
//! multi-group workload through the engine, which is how every figure of the paper is
//! reproduced by `mpn-bench`.

#![forbid(unsafe_code)]

pub mod engine;
pub mod experiment;
pub mod message;
pub mod metrics;
pub mod monitor;

pub use engine::{GroupId, MonitoringEngine, TickExecutor, TickSummary};
pub use experiment::{run_workload, run_workload_sharded, WorkloadSummary};
pub use message::{Message, MessageKind, Traffic};
pub use metrics::{MonitoringMetrics, ShardLoad};
pub use monitor::{run_monitoring, GroupSession, MonitorConfig, StepOutcome};
