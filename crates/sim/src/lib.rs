//! Client–server monitoring simulation for meeting-point notification.
//!
//! This crate glues the safe-region algorithms (`mpn-core`), the POI index (`mpn-index`) and
//! the workload generators (`mpn-mobility`) into the monitoring protocol of Fig. 3 and
//! measures what the paper's evaluation measures:
//!
//! * **update frequency** — safe-region recomputations per timestamp,
//! * **running time** — CPU time per safe-region computation,
//! * **communication cost** — TCP packets exchanged between clients and the server.
//!
//! The main entry point is [`run_monitoring`]; [`experiment::run_workload`] runs a whole
//! multi-group workload and averages the metrics, which is how every figure of the paper is
//! reproduced by `mpn-bench`.

#![forbid(unsafe_code)]

pub mod experiment;
pub mod message;
pub mod metrics;
pub mod monitor;

pub use experiment::{run_workload, WorkloadSummary};
pub use message::{Message, MessageKind, Traffic};
pub use metrics::MonitoringMetrics;
pub use monitor::{run_monitoring, MonitorConfig};
