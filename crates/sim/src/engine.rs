//! The multi-group monitoring engine: many [`GroupSession`]s, sharded and ticked in parallel.
//!
//! A production meeting-point service monitors thousands of groups against one POI index.
//! [`MonitoringEngine`] holds the registered sessions in `S` shards (groups are assigned
//! round-robin by id) and advances every live session one timestamp per [`tick`]
//! (MonitoringEngine::tick), with one worker thread per shard via [`std::thread::scope`].
//! Groups are fully independent — each session owns its engine, its
//! [`SessionState`](mpn_core::SessionState) and its metrics — so a parallel tick produces
//! exactly the counters of the equivalent serial replay.
//!
//! The external `rayon` crate would be the natural executor here, but this workspace builds
//! without network access, so the shard fan-out uses scoped threads from `std`; swapping in a
//! work-stealing pool is a local change to [`MonitoringEngine::tick`].
//!
//! Sessions may have different horizons (and even different methods/objectives); a session
//! past its horizon is skipped.  [`run_to_completion`](MonitoringEngine::run_to_completion)
//! ticks until every session finished, and the per-group / fleet-wide metrics are available
//! throughout.

use mpn_index::RTree;
use mpn_mobility::Trajectory;

use crate::metrics::MonitoringMetrics;
use crate::monitor::{GroupSession, MonitorConfig, StepOutcome};

/// Identifier of a registered group (dense, in registration order).
pub type GroupId = usize;

/// Aggregate outcome of one fleet-wide tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickSummary {
    /// Index of the tick (0 = the registration tick of the initially registered groups).
    pub tick: usize,
    /// Sessions that were still live and advanced during this tick.
    pub advanced: usize,
    /// Sessions that ran the full update protocol (violation → probe → recompute → notify).
    pub updated: usize,
    /// Total users that violated their safe regions during this tick.
    pub violators: usize,
    /// Sessions that performed their initial registration during this tick.
    pub registered: usize,
    /// Sessions finished after this tick (fleet-wide total, not per-tick delta).
    pub finished: usize,
}

/// One shard: a slice of the fleet advanced by a single worker per tick.
#[derive(Debug, Default)]
struct Shard<'g> {
    sessions: Vec<(GroupId, GroupSession<'g>)>,
}

impl Shard<'_> {
    /// Advances every live session one timestamp; returns this shard's tick tally.
    fn advance_all(&mut self, tree: &RTree) -> TickSummary {
        let mut tally = TickSummary::default();
        for (_, session) in &mut self.sessions {
            match session.advance(tree) {
                StepOutcome::Finished => {}
                StepOutcome::Registered => {
                    tally.advanced += 1;
                    tally.registered += 1;
                }
                StepOutcome::Quiet => tally.advanced += 1,
                StepOutcome::Updated { violators } => {
                    tally.advanced += 1;
                    tally.updated += 1;
                    tally.violators += violators;
                }
            }
            if session.is_finished() {
                tally.finished += 1;
            }
        }
        tally
    }
}

/// A sharded, stateful server monitoring many moving groups over one POI index.
#[derive(Debug)]
pub struct MonitoringEngine<'a, 'g> {
    tree: &'a RTree,
    shards: Vec<Shard<'g>>,
    /// `id -> (shard, index within shard)`, in registration order.
    directory: Vec<(usize, usize)>,
    clock: usize,
}

impl<'a, 'g> MonitoringEngine<'a, 'g> {
    /// Creates an engine over the POI tree with `num_shards` worker shards.
    ///
    /// `num_shards` is clamped to at least 1.  One shard means fully serial ticks.
    ///
    /// # Panics
    /// Panics when the POI tree is empty.
    #[must_use]
    pub fn new(tree: &'a RTree, num_shards: usize) -> Self {
        assert!(!tree.is_empty(), "monitoring requires a non-empty POI set");
        let num_shards = num_shards.max(1);
        Self {
            tree,
            shards: (0..num_shards).map(|_| Shard::default()).collect(),
            directory: Vec::new(),
            clock: 0,
        }
    }

    /// Creates an engine with one shard per available CPU.
    #[must_use]
    pub fn with_default_shards(tree: &'a RTree) -> Self {
        let shards = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self::new(tree, shards)
    }

    /// Registers a group for monitoring and returns its id.
    ///
    /// Groups registered after ticking has started replay their trajectories from their own
    /// `t = 0` (sessions are self-clocked); their registration message is counted on the next
    /// tick.
    ///
    /// The trajectories are borrowed, not copied: full-scale workloads are tens of megabytes
    /// and the replay only ever reads locations per timestamp.
    ///
    /// # Panics
    /// Panics when the group is empty.
    pub fn register(&mut self, group: &'g [Trajectory], config: MonitorConfig) -> GroupId {
        let id = self.directory.len();
        let shard = id % self.shards.len();
        let slot = self.shards[shard].sessions.len();
        self.shards[shard].sessions.push((id, GroupSession::new(group, config)));
        self.directory.push((shard, slot));
        id
    }

    /// Number of registered groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.directory.len()
    }

    /// Number of shards ticked in parallel.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of ticks executed so far.
    #[must_use]
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// The longest horizon over all registered sessions.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.sessions().map(GroupSession::horizon).max().unwrap_or(0)
    }

    /// Whether every registered session has replayed its whole horizon.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.sessions().all(GroupSession::is_finished)
    }

    /// Advances every live session one timestamp, one worker thread per *live* shard.
    ///
    /// Shards whose sessions have all finished are skipped without a thread, and a single
    /// live shard runs inline — so a winding-down fleet (or a small one spread over many
    /// shards) does not pay per-tick thread churn.  Counters are deterministic: groups are
    /// independent, so the summary and all per-group metrics are identical to a serial
    /// replay regardless of the shard count.
    pub fn tick(&mut self) -> TickSummary {
        let tree = self.tree;
        let (live, done): (Vec<&mut Shard>, Vec<&mut Shard>) = self
            .shards
            .iter_mut()
            .partition(|shard| shard.sessions.iter().any(|(_, s)| !s.is_finished()));
        let already_finished: usize = done.iter().map(|shard| shard.sessions.len()).sum();
        let tallies: Vec<TickSummary> = if live.len() <= 1 {
            live.into_iter().map(|shard| shard.advance_all(tree)).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = live
                    .into_iter()
                    .map(|shard| scope.spawn(move || shard.advance_all(tree)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("monitoring shard thread panicked"))
                    .collect()
            })
        };
        let mut summary = tallies.into_iter().fold(TickSummary::default(), |mut acc, t| {
            acc.advanced += t.advanced;
            acc.updated += t.updated;
            acc.violators += t.violators;
            acc.registered += t.registered;
            acc.finished += t.finished;
            acc
        });
        summary.finished += already_finished;
        summary.tick = self.clock;
        self.clock += 1;
        summary
    }

    /// Ticks until every session has replayed its whole horizon; returns the tick count.
    pub fn run_to_completion(&mut self) -> usize {
        let mut ticks = 0;
        while !self.is_finished() {
            self.tick();
            ticks += 1;
        }
        ticks
    }

    /// The session of one group.
    ///
    /// # Panics
    /// Panics on an unknown id.
    #[must_use]
    pub fn group(&self, id: GroupId) -> &GroupSession<'g> {
        let (shard, slot) = self.directory[id];
        &self.shards[shard].sessions[slot].1
    }

    /// The metrics of one group accumulated so far.
    ///
    /// # Panics
    /// Panics on an unknown id.
    #[must_use]
    pub fn group_metrics(&self, id: GroupId) -> &MonitoringMetrics {
        self.group(id).metrics()
    }

    /// Fleet-wide metrics: every group's counters merged into one record.
    ///
    /// `group_size` is the total number of monitored users.
    #[must_use]
    pub fn fleet_metrics(&self) -> MonitoringMetrics {
        let users = self.sessions().map(GroupSession::group_size).sum();
        let mut fleet = MonitoringMetrics::new(users);
        for session in self.sessions() {
            fleet.absorb(session.metrics());
        }
        fleet
    }

    /// Consumes the engine, returning every group's metrics in registration order.
    #[must_use]
    pub fn into_group_metrics(self) -> Vec<MonitoringMetrics> {
        let mut with_ids: Vec<(GroupId, MonitoringMetrics)> = self
            .shards
            .into_iter()
            .flat_map(|shard| {
                shard.sessions.into_iter().map(|(id, session)| (id, session.into_metrics()))
            })
            .collect();
        with_ids.sort_by_key(|(id, _)| *id);
        with_ids.into_iter().map(|(_, metrics)| metrics).collect()
    }

    fn sessions(&self) -> impl Iterator<Item = &GroupSession<'g>> {
        self.shards.iter().flat_map(|shard| shard.sessions.iter().map(|(_, s)| s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::run_monitoring;
    use mpn_core::{Method, Objective};
    use mpn_mobility::poi::{clustered_pois, PoiConfig};
    use mpn_mobility::waypoint::{random_waypoint, WaypointConfig};

    fn world(groups: usize) -> (RTree, Vec<Vec<Trajectory>>) {
        let pois =
            clustered_pois(&PoiConfig { count: 700, domain: 1000.0, ..PoiConfig::default() }, 5);
        let tree = RTree::bulk_load(&pois);
        let config = WaypointConfig { domain: 1000.0, speed_limit: 6.0, timestamps: 120 };
        let fleet = (0..groups)
            .map(|g| (0..3).map(|i| random_waypoint(&config, (g * 13 + i) as u64)).collect())
            .collect();
        (tree, fleet)
    }

    #[test]
    fn parallel_ticks_match_serial_replays() {
        let (tree, fleet) = world(6);
        let config = MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(80);

        let serial: Vec<_> = fleet.iter().map(|g| run_monitoring(&tree, g, &config)).collect();

        let mut engine = MonitoringEngine::new(&tree, 4);
        for group in &fleet {
            engine.register(group, config);
        }
        let ticks = engine.run_to_completion();
        assert_eq!(ticks, 80, "80-timestamp horizon takes 80 ticks");
        let parallel = engine.into_group_metrics();

        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.updates, s.updates);
            assert_eq!(p.timestamps, s.timestamps);
            assert_eq!(p.traffic, s.traffic);
            assert_eq!(p.stats, s.stats);
        }
    }

    #[test]
    fn tick_summaries_account_for_every_session() {
        let (tree, fleet) = world(5);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(40);
        let mut engine = MonitoringEngine::new(&tree, 2);
        for group in &fleet {
            engine.register(group, config);
        }
        assert_eq!(engine.group_count(), 5);
        assert_eq!(engine.horizon(), 40);

        let first = engine.tick();
        assert_eq!(first.tick, 0);
        assert_eq!(first.registered, 5, "first tick registers every group");
        assert_eq!(first.advanced, 5);

        let second = engine.tick();
        assert_eq!(second.tick, 1);
        assert_eq!(second.registered, 0);
        assert_eq!(second.advanced, 5);

        engine.run_to_completion();
        assert!(engine.is_finished());
        let summary = engine.tick();
        assert_eq!(summary.advanced, 0, "finished sessions do not advance");
        assert_eq!(summary.finished, 5);
    }

    #[test]
    fn fleet_metrics_merge_all_groups() {
        let (tree, fleet) = world(3);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(30);
        let mut engine = MonitoringEngine::new(&tree, 8);
        for group in &fleet {
            engine.register(group, config);
        }
        engine.run_to_completion();
        let fleet_metrics = engine.fleet_metrics();
        assert_eq!(fleet_metrics.group_size, 9, "3 groups of 3 users");
        assert_eq!(fleet_metrics.timestamps, 3 * 29);
        let per_group: usize = (0..3).map(|id| engine.group_metrics(id).updates).sum();
        assert_eq!(fleet_metrics.updates, per_group);
    }

    #[test]
    fn heterogeneous_sessions_coexist() {
        let (tree, fleet) = world(2);
        let mut engine = MonitoringEngine::new(&tree, 3);
        let a = engine.register(
            &fleet[0],
            MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(20),
        );
        let b = engine.register(
            &fleet[1],
            MonitorConfig::new(Objective::Sum, Method::tile()).with_max_timestamps(50),
        );
        engine.run_to_completion();
        assert_eq!(engine.group_metrics(a).timestamps, 19);
        assert_eq!(engine.group_metrics(b).timestamps, 49);
        assert_eq!(engine.group(a).config().method.name(), "Circle");
        assert_eq!(engine.group(b).config().method.name(), "Tile");
    }

    #[test]
    fn late_registration_starts_from_the_groups_own_clock() {
        let (tree, fleet) = world(2);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(25);
        let mut engine = MonitoringEngine::new(&tree, 2);
        engine.register(&fleet[0], config);
        engine.tick();
        engine.tick();
        let late = engine.register(&fleet[1], config);
        let summary = engine.tick();
        assert_eq!(summary.registered, 1, "the late group registers on its first tick");
        engine.run_to_completion();
        assert_eq!(engine.group_metrics(late).timestamps, 24, "late groups replay fully");
    }
}
