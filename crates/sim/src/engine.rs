//! The multi-group monitoring engine: many owned [`GroupSession`]s, sharded, ticked by a
//! persistent worker pool, with dynamic fleet membership and message-driven position input.
//!
//! A production meeting-point service is a long-lived server: thousands of groups come and go
//! while the POI index stays hot, and the server's cost is dominated by per-update work, not
//! setup.  [`MonitoringEngine`] models exactly that:
//!
//! * **Owned, sharded sessions.**  The engine owns its POI index (an [`Arc<RTree>`] shared
//!   with whoever built it) and every registered [`GroupSession`] owns its state — there is
//!   no borrowed trajectory data and no lifetime tying the engine to a pre-baked workload.
//!   Position input arrives as owned [`EpochUpdate`] batches via
//!   [`submit`](MonitoringEngine::submit) (the streaming path) or from a per-session
//!   [`TrajectoryFeed`] (the replay path); every [`tick`](MonitoringEngine::tick) advances
//!   all live sessions one epoch, one worker per live shard.  Groups are fully independent,
//!   so a parallel tick produces exactly the counters of the equivalent serial replay,
//!   regardless of shard count or executor.
//! * **Persistent executor.**  The default executor is an [`mpn_pool::WorkerPool`]: one
//!   long-lived thread per shard, parked on a channel between ticks and woken by the tick
//!   barrier ([`WorkerPool::scoped`](mpn_pool::WorkerPool::scoped)).  The historical
//!   spawn-and-join executor is still available as [`TickExecutor::ScopedThreads`] — it is
//!   the parity baseline (`tests/engine_parity.rs`) and the comparison point of the
//!   `executor/quiet_tick_*` micro-benchmarks.
//! * **Fleet lifecycle.**  Beyond late [`register`](MonitoringEngine::register)-ation, groups
//!   can [`deregister`](MonitoringEngine::deregister) mid-run (their session state — heading
//!   predictors, §5.4 buffer, last answer — is reclaimed, their metrics are retained for
//!   fleet accounting) and later [`rejoin`](MonitoringEngine::rejoin) under their old id.
//!   Freed ids are kept in a free-list over the shard directory and reused; new groups are
//!   placed on the shard with the least **remaining work** — occupancy weighted by each
//!   session's remaining horizon ([`GroupSession::remaining_horizon`]), with open-horizon
//!   streaming sessions counting as [`OPEN_HORIZON_WEIGHT`] — so a fleet mixing short
//!   replays with long-running streams balances by load, not head-count.
//!
//! Sessions may have different horizons (and even different methods/objectives); a session
//! past its bounded horizon is skipped, and an **open-horizon** streaming session (no
//! [`MonitorConfig`](crate::MonitorConfig) timestamp cap) never finishes — it leaves the
//! fleet via deregistration.  [`run_to_completion`](MonitoringEngine::run_to_completion)
//! ticks until every registered session finished and therefore requires a fleet of bounded,
//! feed-driven sessions.  Per-group / fleet-wide metrics (including those of deregistered
//! groups) are available throughout via [`group_metrics`](MonitoringEngine::group_metrics) /
//! [`fleet_metrics`](MonitoringEngine::fleet_metrics) and per-shard load via
//! [`shard_loads`](MonitoringEngine::shard_loads).

use std::sync::Arc;

use mpn_geom::Point;
use mpn_index::{IndexView, QueryCache, RTree, WorldView};
use mpn_pool::WorkerPool;

use crate::metrics::{EngineReport, MonitoringMetrics, ShardLoad};
use crate::monitor::{GroupSession, MonitorConfig, SessionEvent, StepOutcome, TrajectoryFeed};

/// Identifier of a registered group.
///
/// Ids are dense and handed out in registration order; the id of a
/// [`deregister`](MonitoringEngine::deregister)ed group goes to a free-list and is reused by
/// the next [`register`](MonitoringEngine::register) / [`rejoin`](MonitoringEngine::rejoin),
/// so an id is only unique among the groups alive at one time.
pub type GroupId = usize;

/// Placement weight of an open-horizon streaming session (a session with no timestamp cap,
/// which runs until deregistered).
///
/// Horizon-aware placement sums each shard's *remaining* epochs; an open-ended session has no
/// such bound, so it is charged a large constant — heavier than any realistic bounded replay
/// (≈12 days of 1 Hz epochs), so streams spread across shards before piling onto one.
pub const OPEN_HORIZON_WEIGHT: usize = 1 << 20;

/// One epoch of owned user positions for a registered group — the unit of position input a
/// streaming front-end pushes into the engine via [`MonitoringEngine::submit`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochUpdate {
    /// The group the positions belong to.
    pub group_id: GroupId,
    /// One position per user, in user order.
    pub positions: Vec<Point>,
}

/// Why an [`EpochUpdate`] was rejected by [`MonitoringEngine::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The id is not registered (never allocated, or currently deregistered).
    UnknownGroup(GroupId),
    /// The batch does not hold exactly one position per user of the group.
    WrongGroupSize {
        /// The offending group.
        group_id: GroupId,
        /// The group's registered size.
        expected: usize,
        /// The batch's size.
        got: usize,
    },
    /// The session has consumed its whole bounded horizon: it will never advance again, so
    /// queueing more epochs would only grow its inbox until deregistration.
    Finished(GroupId),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownGroup(id) => write!(f, "group {id} is not registered"),
            SubmitError::WrongGroupSize { group_id, expected, got } => write!(
                f,
                "group {group_id} has {expected} users but the epoch update carries {got} positions"
            ),
            SubmitError::Finished(id) => {
                write!(f, "group {id} has finished its horizon and consumes no more epochs")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One mutation of the POI world: a point of interest appearing or disappearing while the
/// fleet is being monitored (a closing restaurant, a pop-up venue).
///
/// Applied via [`MonitoringEngine::apply_world_change`], which threads the change through the
/// engine's [`WorldView`] overlay and immediately recomputes exactly the sessions whose safe
/// regions the change can break.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldChange {
    /// A new POI appears at `location`; its id is assigned by the world (reported in the
    /// [`InvalidationSummary`]).
    PoiInsert {
        /// Where the new POI appears.
        location: Point,
    },
    /// POI `poi` disappears.  Unknown (or already-deleted) ids are rejected gracefully —
    /// the summary reports `applied == false` and nothing is touched.
    PoiDelete {
        /// Id of the POI to remove.
        poi: usize,
    },
}

/// What one [`MonitoringEngine::apply_world_change`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidationSummary {
    /// Whether the change took effect (`false` only for a delete of an unknown id).
    pub applied: bool,
    /// The POI the change concerned: the freshly assigned id of an insert, or the deleted id.
    pub poi: Option<usize>,
    /// The world generation after the change (unchanged when not applied).
    pub generation: u64,
    /// Registered sessions examined by the invalidation pass.
    pub groups_checked: usize,
    /// Sessions whose safe regions the change could break — each was force-recomputed
    /// against the new world and re-notified.
    pub invalidated: usize,
    /// The ids of the invalidated groups, in shard order.
    pub affected: Vec<GroupId>,
    /// Whether the delta overlay was folded back into the base index afterwards.
    pub compacted: bool,
}

/// Default session-batch size of [`TickExecutor::WorkStealing`]: small enough that a skewed
/// shard splits into many stealable units, large enough that a batch amortises its deque
/// round-trip over several sessions.
pub const DEFAULT_TICK_BATCH: usize = 8;

/// Which executor advances the live shards of a tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TickExecutor {
    /// Persistent worker pool, one monolithic job per live shard: one long-lived thread per
    /// shard, parked between ticks (the default — no per-tick thread churn).
    #[default]
    WorkerPool,
    /// The historical executor: spawn one scoped thread per live shard on every tick and join
    /// them before the tick returns.  Kept as the parity/benchmark baseline.
    ScopedThreads,
    /// The persistent pool with *session batches* instead of one job per shard: every live
    /// shard's sessions are split into chunks of `batch` and pushed onto the shard's own
    /// worker deque; workers that drain their deque steal batches from stragglers, so one
    /// hot shard no longer bounds the tick (see `mpn-pool`'s module docs for the deque
    /// discipline).  Counters are identical to the other executors — only the schedule
    /// changes, surfaced via [`TickSummary::exec`].
    WorkStealing {
        /// Sessions per job (clamped to at least 1).
        batch: usize,
    },
}

impl TickExecutor {
    /// The work-stealing executor with the default batch size.
    #[must_use]
    pub fn work_stealing() -> Self {
        TickExecutor::WorkStealing { batch: DEFAULT_TICK_BATCH }
    }
}

/// Executor diagnostics of one tick: how the work was scheduled and what the shared query
/// cache did, as opposed to what the fleet computed.
///
/// These counters are **not** part of [`TickSummary`]'s equality — they are scheduling
/// artifacts that legitimately differ between executors, runs and machines (a steal happens
/// when a worker *happens* to go idle first; a cache hit depends on which racing session got
/// there first), while the protocol counters are bit-identical by contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickExecCounters {
    /// Jobs handed to the executor (session batches for
    /// [`TickExecutor::WorkStealing`], whole shards otherwise).
    pub batches: usize,
    /// Jobs a pool worker took from another worker's deque (0 without a pool).
    pub steals: usize,
    /// Jobs run by the busiest minus the laziest pool worker after stealing.
    pub imbalance: usize,
    /// Shared-cache lookups answered from the cache during this tick (0 without a cache).
    pub cache_hits: u64,
    /// Shared-cache lookups that fell through to a real traversal during this tick.
    pub cache_misses: u64,
}

impl TickExecCounters {
    /// Folds another tick's counters into this one (for cumulative engine totals).
    pub fn absorb(&mut self, other: &TickExecCounters) {
        self.batches += other.batches;
        self.steals += other.steals;
        self.imbalance += other.imbalance;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Fraction of this tick's shared-cache lookups that hit (0.0 without lookups).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// Aggregate outcome of one fleet-wide tick.
///
/// Equality deliberately covers only the *protocol* counters (everything except
/// [`exec`](TickSummary::exec)): those are deterministic — identical across executors,
/// shard counts and cache configurations — and pinned by `tests/engine_parity.rs`, while
/// the executor diagnostics describe the racy schedule that produced them.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickSummary {
    /// Index of the tick (0 = the registration tick of the initially registered groups).
    pub tick: usize,
    /// Sessions that were still live and advanced during this tick.
    pub advanced: usize,
    /// Sessions that ran the full update protocol (violation → probe → recompute → notify).
    pub updated: usize,
    /// Total users that violated their safe regions during this tick.
    pub violators: usize,
    /// Sessions that performed their initial registration during this tick.
    pub registered: usize,
    /// Sessions that have consumed their whole **bounded** horizon, totalled over every
    /// currently registered session (not a per-tick delta).  Open-horizon streaming sessions
    /// never count here — they have nothing to finish — and a deregistered group leaves this
    /// total for [`retired`](TickSummary::retired).
    pub finished: usize,
    /// Live sessions that had no epoch to consume this tick (empty inbox, no or exhausted
    /// feed).  Replay fleets never starve before their horizon; for a streaming fleet this
    /// counts groups whose clients are reporting slower than the server ticks.
    pub starved: usize,
    /// Deregistered groups whose retired metrics are still attributed to their id (an id
    /// reused by `register`/`rejoin` leaves this total; its old epoch then only feeds the
    /// fleet-wide reclaimed-epochs aggregate).
    pub retired: usize,
    /// Executor diagnostics (batches, steals, imbalance, cache hits/misses).  Excluded from
    /// equality — see the type docs.
    pub exec: TickExecCounters,
}

impl PartialEq for TickSummary {
    fn eq(&self, other: &Self) -> bool {
        // Protocol counters only: `exec` is a scheduling artifact (see the type docs).
        self.tick == other.tick
            && self.advanced == other.advanced
            && self.updated == other.updated
            && self.violators == other.violators
            && self.registered == other.registered
            && self.finished == other.finished
            && self.starved == other.starved
            && self.retired == other.retired
    }
}

impl Eq for TickSummary {}

/// Placement weight of one session: its remaining bounded horizon, or
/// [`OPEN_HORIZON_WEIGHT`] for an open-horizon stream.
fn session_weight(session: &GroupSession) -> usize {
    session.remaining_horizon().unwrap_or(OPEN_HORIZON_WEIGHT)
}

/// The per-session **hot** state: the few bytes a tick must read to decide whether the
/// session's cold body needs to be touched at all (see the [`Shard`] docs for the split).
///
/// Every field is a mirror of session state that only changes at known points — after an
/// [`advance`](GroupSession::advance) (refreshed on the worker by [`HotEntry::refresh`]),
/// on [`submit`](MonitoringEngine::submit) (`pending`), and on placement / deregistration
/// (`vacant`) — so reading the mirror is always equivalent to asking the session.
#[derive(Debug, Clone, Copy)]
struct HotEntry {
    /// The group occupying this slot (stale while `vacant`).
    id: GroupId,
    /// The slot is free: its session was deregistered and the slot awaits reuse.
    vacant: bool,
    /// Mirror of [`GroupSession::is_finished`]: the whole bounded horizon is consumed.
    finished: bool,
    /// Mirror of [`GroupSession::feed_has_next`]: the replay feed can supply an epoch.
    feed_ready: bool,
    /// Mirror of [`GroupSession::pending_epochs`]: submitted batches waiting in the inbox.
    pending: usize,
    /// Mirror of [`session_weight`]: the session's remaining-work placement weight.
    weight: usize,
}

impl HotEntry {
    fn new(id: GroupId, session: &GroupSession) -> Self {
        let mut entry = HotEntry {
            id,
            vacant: false,
            finished: false,
            feed_ready: false,
            pending: 0,
            weight: 0,
        };
        entry.refresh(session);
        entry
    }

    /// Re-mirrors the session after an advance (the one place its clock, feed cursor and
    /// inbox all change).
    fn refresh(&mut self, session: &GroupSession) {
        self.finished = session.is_finished();
        self.feed_ready = session.feed_has_next();
        self.pending = session.pending_epochs();
        self.weight = session_weight(session);
    }
}

/// Advances one slice of a shard — a whole shard, or one work-stealing batch — one epoch
/// per live session; returns the slice's tick tally and its remaining-work weight.
///
/// This is the unit of parallel work, and the engine's memory hot path: the loop *streams*
/// the dense [`HotEntry`] array and dereferences a session's cold body only when that
/// session actually has an epoch to consume.  The skip tallies are exact mirrors of what a
/// full [`GroupSession::advance`] would have returned:
///
/// * `vacant` — no session, nothing to count;
/// * `finished` — `advance` would return [`StepOutcome::Finished`] (no counters) and the
///   follow-up `is_finished()` check would tally one `finished`; the weight contribution is
///   0 by definition (a finished horizon has no remaining epochs);
/// * `pending == 0 && !feed_ready` — `advance` would pop nothing and return
///   [`StepOutcome::Starved`] without moving the session's clock, so the cached weight is
///   still current.
///
/// Sessions are fully independent, so slicing a shard into batches (and letting idle
/// workers steal them) changes only the schedule, never any counter; and the skip paths
/// above change only which memory is touched, never what is counted
/// (`tests/engine_parity.rs` pins both).
fn advance_chunk(
    hot: &mut [HotEntry],
    cold: &mut [Option<GroupSession>],
    view: IndexView<'_>,
) -> (TickSummary, usize) {
    debug_assert_eq!(hot.len(), cold.len(), "hot and cold chunks must be sliced in lockstep");
    let mut tally = TickSummary::default();
    let mut weight = 0usize;
    for (entry, slot) in hot.iter_mut().zip(cold.iter_mut()) {
        if entry.vacant {
            continue;
        }
        if entry.finished {
            tally.finished += 1;
            continue;
        }
        if entry.pending == 0 && !entry.feed_ready {
            // Active-set scheduling: a session with nothing to consume is tallied as
            // starved without walking its cold body (inbox, predictors, cached answer).
            tally.starved += 1;
            weight = weight.saturating_add(entry.weight);
            continue;
        }
        let session = slot.as_mut().expect("a non-vacant slot holds a session");
        match session.advance(view) {
            StepOutcome::Finished => {}
            StepOutcome::Starved => tally.starved += 1,
            StepOutcome::Registered => {
                tally.advanced += 1;
                tally.registered += 1;
            }
            StepOutcome::Quiet => tally.advanced += 1,
            StepOutcome::Updated { violators } => {
                tally.advanced += 1;
                tally.updated += 1;
                tally.violators += violators;
            }
        }
        if session.is_finished() {
            tally.finished += 1;
        }
        // The tick is the one place sessions' remaining horizons change, and it already
        // walks every advanced session — refresh the hot mirror for free, on the worker.
        entry.refresh(session);
        weight = weight.saturating_add(entry.weight);
    }
    (tally, weight)
}

/// Folds one tally's protocol counters into an accumulator (the per-tick bookkeeping fields
/// — `tick`, `retired`, `exec` — are filled in by the caller, not summed).
fn merge_counts(acc: &mut TickSummary, t: &TickSummary) {
    acc.advanced += t.advanced;
    acc.updated += t.updated;
    acc.violators += t.violators;
    acc.registered += t.registered;
    acc.finished += t.finished;
    acc.starved += t.starved;
}

/// One shard: a slice of the fleet advanced by a single worker per tick (or, under
/// [`TickExecutor::WorkStealing`], split into stealable session batches).
///
/// # The hot/cold session split
///
/// The shard stores its sessions in two parallel arrays indexed by **slot**:
///
/// * [`hot`](Shard::hot) — a dense `Vec<HotEntry>` of per-tick decision state (a few dozen
///   bytes per session: vacancy, finished/feed flags, inbox depth, placement weight).  The
///   tick streams this array linearly; sessions with nothing to do are skipped or tallied
///   right here, cache line after cache line, without dereferencing anything.
/// * [`cold`](Shard::cold) — a slot-stable slab of the full [`GroupSession`] bodies
///   (predictors, inboxes, metrics, cached answers; hundreds of bytes each).  Only sessions
///   that actually consume an epoch touch their cold body.
///
/// Slots are **stable**: deregistration marks the hot entry vacant, parks the slot on
/// [`free_slots`](Shard::free_slots) and never moves another session, so directory entries
/// `(shard, slot)` stay valid without the swap-remove fixups of the old single-vec layout
/// — `submit`, `group` lookups and deregistration stay O(1).  `hot.len() == cold.len()`
/// always; a slot is vacant iff its hot entry says so iff its cold option is `None`.
#[derive(Debug, Default)]
struct Shard {
    /// Dense per-slot tick state, streamed by [`advance_chunk`].
    hot: Vec<HotEntry>,
    /// Slot-stable slab of session bodies; `None` marks a vacant (deregistered) slot.
    cold: Vec<Option<GroupSession>>,
    /// Vacant slots available for reuse by the next placement on this shard.
    free_slots: Vec<usize>,
    /// Ticks during which this shard had no live session (no worker was woken for it).
    idle_ticks: usize,
    /// Ticks during which this shard *had* live sessions but advanced none of them — every
    /// live session starved (slow-reporting clients).  Disjoint from
    /// [`idle_ticks`](Shard::idle_ticks): a starved shard still costs a worker wake-up and
    /// still holds remaining work, so placement must not treat it as free capacity.
    starved_ticks: usize,
    /// Cached remaining work (the sum of [`session_weight`] over live sessions), maintained
    /// incrementally: adjusted on placement and deregistration, recomputed by
    /// [`advance_all`](Shard::advance_all) while the tick is already streaming every hot
    /// entry.  Keeping it current at every mutation point makes `register` placement
    /// O(shards) instead of a full O(fleet) re-scan per call.
    weight: usize,
}

impl Shard {
    /// Number of registered sessions (occupied slots).
    fn occupancy(&self) -> usize {
        self.hot.iter().filter(|h| !h.vacant).count()
    }

    /// Whether any registered session still has horizon left — read entirely off the hot
    /// array.
    fn has_live(&self) -> bool {
        self.hot.iter().any(|h| !h.vacant && !h.finished)
    }

    /// Advances every live session one epoch; returns this shard's tick tally.
    fn advance_all(&mut self, view: IndexView<'_>) -> TickSummary {
        let (tally, weight) = advance_chunk(&mut self.hot, &mut self.cold, view);
        self.weight = weight;
        self.note_tick_outcome(&tally);
        tally
    }

    /// Records the starved-tick counter from a completed tick's tally (the shard was woken,
    /// so it was live; if nothing advanced, every live session starved).
    fn note_tick_outcome(&mut self, tally: &TickSummary) {
        if tally.advanced == 0 && tally.starved > 0 {
            self.starved_ticks += 1;
        }
    }

    /// The invalidation pass of one world change: evaluates the break predicate for every
    /// session and force-recomputes the affected ones against the new view.  Returns
    /// `(sessions checked, affected group ids)`.
    ///
    /// A forced recompute consumes no epoch and moves no clock, so the hot mirrors
    /// (pending, feed, finished, weight) stay valid without a refresh.
    fn invalidate_all(
        &mut self,
        view: IndexView<'_>,
        change: &WorldChange,
    ) -> (usize, Vec<GroupId>) {
        let mut affected = Vec::new();
        let mut checked = 0usize;
        for (entry, slot) in self.hot.iter().zip(self.cold.iter_mut()) {
            let Some(session) = slot else { continue };
            checked += 1;
            if session.world_change_invalidates(change) && session.force_recompute(view) {
                affected.push(entry.id);
            }
        }
        (checked, affected)
    }

    /// Recomputes the remaining work from scratch (the debug cross-check of the cached
    /// [`weight`](Shard::weight) counter).
    #[cfg(debug_assertions)]
    fn recompute_weight(&self) -> usize {
        self.cold.iter().flatten().map(session_weight).fold(0usize, usize::saturating_add)
    }

    /// Slab invariants: the arrays run in lockstep and vacancy agrees between them (debug
    /// cross-check; see the type docs).
    #[cfg(debug_assertions)]
    fn check_slab(&self) {
        debug_assert_eq!(self.hot.len(), self.cold.len(), "hot/cold arrays drifted");
        for (slot, (entry, session)) in self.hot.iter().zip(self.cold.iter()).enumerate() {
            debug_assert_eq!(
                entry.vacant,
                session.is_none(),
                "slot {slot}: hot vacancy disagrees with the cold slab"
            );
        }
        debug_assert!(
            self.free_slots.iter().all(|&slot| self.hot[slot].vacant),
            "free list holds an occupied slot"
        );
    }
}

/// One entry of the shard directory: where a group's session lives, or what it left behind.
#[derive(Debug)]
enum DirectoryEntry {
    /// The group is registered: its cold session body sits at `shards[shard].cold[slot]`
    /// with the matching hot entry at `shards[shard].hot[slot]`.
    Active { shard: usize, slot: usize },
    /// The group deregistered: its session was torn down, these metrics remain for fleet
    /// accounting until the id is reused.
    Retired(Box<MonitoringMetrics>),
}

/// A sharded, stateful server monitoring a churning fleet of moving groups over one POI index.
///
/// Since the owned-session refactor the engine has no lifetime parameters: it shares the POI
/// index via [`Arc`] and every session owns its data, so engines can be moved into server
/// threads, held alongside their workload, and fed from the network.
#[derive(Debug)]
pub struct MonitoringEngine {
    /// The mutable POI world: a shared base R-tree plus the generation-stamped delta overlay
    /// maintained by [`apply_world_change`](MonitoringEngine::apply_world_change).
    world: WorldView,
    shards: Vec<Shard>,
    /// `id -> session location (or retired metrics)`, indexed by [`GroupId`].
    directory: Vec<DirectoryEntry>,
    /// Ids of deregistered groups, available for reuse (every entry is `Retired` in the
    /// directory, and vice versa).
    free_ids: Vec<GroupId>,
    /// Aggregate metrics of past epochs whose ids were reused: folded out of the directory by
    /// `place` so fleet-wide totals never shrink, even though per-id attribution is gone.
    reclaimed: MonitoringMetrics,
    clock: usize,
    executor: TickExecutor,
    /// Present iff the executor is pool-backed ([`TickExecutor::WorkerPool`] or
    /// [`TickExecutor::WorkStealing`]) and there is more than one shard (a single shard
    /// always ticks inline).
    pool: Option<WorkerPool>,
    /// Optional fleet-wide shared query cache, attached to every tick's [`IndexView`] so
    /// near-duplicate groups reuse candidate lists within a generation.
    cache: Option<Arc<QueryCache>>,
    /// Executor diagnostics accumulated over every tick so far (batches, steals, cache
    /// traffic) — the lifetime counterpart of the per-tick [`TickSummary::exec`].
    exec_totals: TickExecCounters,
}

impl MonitoringEngine {
    /// Creates an engine over the POI tree with `num_shards` worker shards and the default
    /// persistent-pool executor.
    ///
    /// Accepts the tree by value or as a pre-shared [`Arc`] (`Arc::clone` a handle to keep
    /// reading the index from outside the engine).  `num_shards` is clamped to at least 1.
    /// One shard means fully serial ticks.
    ///
    /// # Panics
    /// Panics when the POI tree is empty.
    #[must_use]
    pub fn new(tree: impl Into<Arc<RTree>>, num_shards: usize) -> Self {
        Self::with_executor(tree, num_shards, TickExecutor::default())
    }

    /// Creates an engine with an explicit tick executor.
    ///
    /// With [`TickExecutor::WorkerPool`] the engine spawns one persistent worker per shard up
    /// front (none for a single shard, which always ticks inline); with
    /// [`TickExecutor::ScopedThreads`] no threads outlive a tick.
    ///
    /// # Panics
    /// Panics when the POI tree is empty.
    #[must_use]
    pub fn with_executor(
        tree: impl Into<Arc<RTree>>,
        num_shards: usize,
        executor: TickExecutor,
    ) -> Self {
        let world = WorldView::new(tree.into());
        assert!(!world.is_empty(), "monitoring requires a non-empty POI set");
        let num_shards = num_shards.max(1);
        let pooled =
            matches!(executor, TickExecutor::WorkerPool | TickExecutor::WorkStealing { .. });
        let pool = (pooled && num_shards > 1).then(|| WorkerPool::new(num_shards));
        Self {
            world,
            shards: (0..num_shards).map(|_| Shard::default()).collect(),
            directory: Vec::new(),
            free_ids: Vec::new(),
            reclaimed: MonitoringMetrics::new(0),
            clock: 0,
            executor,
            pool,
            cache: None,
            exec_totals: TickExecCounters::default(),
        }
    }

    /// Attaches a fleet-wide shared query cache: every tick (and every
    /// [`apply_world_change`](MonitoringEngine::apply_world_change) invalidation pass)
    /// queries the index through it, so groups monitoring the same region reuse candidate
    /// lists within a world generation.  Pass a pre-shared [`Arc`] to share one cache across
    /// several engines watching the same world.
    ///
    /// Results are replayed bit-identically (see [`QueryCache`]), so counters do not change —
    /// only [`QueryStats`](mpn_index::QueryStats) node-access work is saved.  Per-tick hit /
    /// miss deltas land on [`TickSummary::exec`].
    #[must_use]
    pub fn with_query_cache(mut self, cache: impl Into<Arc<QueryCache>>) -> Self {
        self.cache = Some(cache.into());
        self
    }

    /// The shared query cache, when one is attached.
    #[must_use]
    pub fn query_cache(&self) -> Option<&Arc<QueryCache>> {
        self.cache.as_ref()
    }

    /// Executor diagnostics accumulated over every tick so far: total batches dispatched,
    /// batches stolen across workers, summed per-tick imbalance, and query-cache traffic.
    #[must_use]
    pub fn exec_totals(&self) -> TickExecCounters {
        self.exec_totals
    }

    /// Creates an engine with one shard per available CPU.
    #[must_use]
    pub fn with_default_shards(tree: impl Into<Arc<RTree>>) -> Self {
        let shards = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self::new(tree, shards)
    }

    /// The *base* R-tree of the engine's POI world (without any overlay changes applied).
    ///
    /// Callers that must see the current POI content — including un-compacted inserts and
    /// deletes — read [`world`](MonitoringEngine::world) instead.
    #[must_use]
    pub fn tree(&self) -> &Arc<RTree> {
        self.world.base()
    }

    /// The engine's mutable POI world (base index plus delta overlay).
    #[must_use]
    pub fn world(&self) -> &WorldView {
        &self.world
    }

    /// Registers a replay group for monitoring and returns its id.
    ///
    /// This is the replay path: the feed plays its recorded trajectories back one epoch per
    /// tick (see [`TrajectoryFeed`]), giving the session a bounded horizon.  Shorthand for
    /// [`register_session`](MonitoringEngine::register_session) with a
    /// [`GroupSession::replay`] session.
    ///
    /// # Panics
    /// Panics when the feed's group is empty (checked at feed construction).
    pub fn register(&mut self, feed: TrajectoryFeed, config: MonitorConfig) -> GroupId {
        self.register_session(GroupSession::replay(feed, config))
    }

    /// Registers a streaming group of `group_size` users and returns its id.
    ///
    /// The session consumes [`EpochUpdate`]s pushed via [`submit`](MonitoringEngine::submit);
    /// without a [`MonitorConfig`] timestamp cap it has an open horizon and monitors until
    /// deregistered.
    ///
    /// # Panics
    /// Panics when `group_size` is zero.
    pub fn register_stream(&mut self, group_size: usize, config: MonitorConfig) -> GroupId {
        self.register_session(GroupSession::streaming(group_size, config))
    }

    /// Registers a pre-built session (the general form of
    /// [`register`](MonitoringEngine::register) /
    /// [`register_stream`](MonitoringEngine::register_stream), e.g. for a session with its
    /// event log enabled).
    ///
    /// The session is placed on the shard with the least **remaining work** (occupancy
    /// weighted by remaining horizon, lowest index on ties); its id is popped from the
    /// free-list of deregistered ids when one is available (folding that id's retired metrics
    /// record into the reclaimed-epochs aggregate), else freshly allocated.
    ///
    /// Groups registered after ticking has started are self-clocked (they start from their
    /// own `t = 0`); their registration message is counted on the next tick that feeds them.
    pub fn register_session(&mut self, session: GroupSession) -> GroupId {
        let id = self.free_ids.pop().unwrap_or_else(|| {
            // Placeholder entry; `place` overwrites it with the real location.
            self.directory.push(DirectoryEntry::Active { shard: 0, slot: 0 });
            self.directory.len() - 1
        });
        self.place(id, session);
        id
    }

    /// Removes a group from monitoring, reclaiming its session state.
    ///
    /// The session is torn down via [`GroupSession::retire`] (dropping the cached §5.4 GNN
    /// buffer, the last answer, any queued epochs and undrained events along with the heading
    /// predictors) and its accumulated metrics are returned.  A copy of those metrics —
    /// compacted via [`MonitoringMetrics::into_compact`], so dead epochs never hold
    /// per-update sample vectors — is retained in the shard directory: counted by
    /// [`retired_count`](MonitoringEngine::retired_count), included in
    /// [`fleet_metrics`](MonitoringEngine::fleet_metrics) and
    /// [`into_group_metrics`](MonitoringEngine::into_group_metrics).  When the id is reused
    /// by [`register`](MonitoringEngine::register) / [`rejoin`](MonitoringEngine::rejoin) the
    /// record loses its per-id slot but keeps feeding the fleet totals through the
    /// reclaimed-epochs aggregate ([`reclaimed_metrics`](MonitoringEngine::reclaimed_metrics)).
    ///
    /// Returns `None` for an unknown or already-deregistered id (deregistration is
    /// idempotent).
    pub fn deregister(&mut self, id: GroupId) -> Option<MonitoringMetrics> {
        let &DirectoryEntry::Active { shard, slot } = self.directory.get(id)? else {
            return None;
        };
        // Slot-stable teardown: the slot is marked vacant and parked for reuse; no other
        // session moves, so no directory entry needs fixing up.
        let session =
            self.shards[shard].cold[slot].take().expect("an active directory entry has a session");
        self.shards[shard].hot[slot].vacant = true;
        self.shards[shard].free_slots.push(slot);
        self.shards[shard].weight =
            self.shards[shard].weight.saturating_sub(session_weight(&session));
        let metrics = session.retire();
        // The retained copy is compacted: a churning fleet would otherwise accumulate every
        // dead epoch's per-update samples forever.  The caller gets the full record.
        self.directory[id] = DirectoryEntry::Retired(Box::new(metrics.clone().into_compact()));
        self.free_ids.push(id);
        Some(metrics)
    }

    /// Re-registers a replay group under the id of a previously deregistered one.
    ///
    /// The new session starts fresh from its own `t = 0` (sessions are self-clocked).  The
    /// id's retired metrics record moves into the reclaimed-epochs aggregate — still part of
    /// [`fleet_metrics`](MonitoringEngine::fleet_metrics), no longer attributed to the id —
    /// so callers who want the previous epoch's numbers per group take them from
    /// [`deregister`](MonitoringEngine::deregister)'s return value.  Placement is
    /// least-remaining-work, like [`register`](MonitoringEngine::register).
    ///
    /// # Panics
    /// Panics when `id` is not currently free (never registered, or still active); the empty
    /// group case panics at feed construction.
    pub fn rejoin(&mut self, id: GroupId, feed: TrajectoryFeed, config: MonitorConfig) -> GroupId {
        self.rejoin_session(id, GroupSession::replay(feed, config))
    }

    /// Re-registers a pre-built session under the id of a previously deregistered group (the
    /// general form of [`rejoin`](MonitoringEngine::rejoin)).
    ///
    /// # Panics
    /// Panics when `id` is not currently free (never registered, or still active).
    pub fn rejoin_session(&mut self, id: GroupId, session: GroupSession) -> GroupId {
        let pos = self
            .free_ids
            .iter()
            .position(|&free| free == id)
            .expect("rejoin requires the id of a deregistered group");
        self.free_ids.swap_remove(pos);
        self.place(id, session);
        id
    }

    /// Queues one epoch of owned positions for a streaming group; the batch is consumed by
    /// the next [`tick`](MonitoringEngine::tick) (batches queue FIFO, one per tick).
    ///
    /// # Errors
    /// Rejects updates for unknown / deregistered ids, batches whose size does not match the
    /// group, and sessions past their bounded horizon (their inbox would otherwise grow
    /// forever, unconsumed) — all without touching any session state, so a network front-end
    /// maps these to protocol-level error notifications instead of crashing the server.
    pub fn submit(&mut self, update: EpochUpdate) -> Result<(), SubmitError> {
        let EpochUpdate { group_id, positions } = update;
        let Some(&DirectoryEntry::Active { shard, slot }) = self.directory.get(group_id) else {
            return Err(SubmitError::UnknownGroup(group_id));
        };
        let session = self.shards[shard].cold[slot]
            .as_mut()
            .expect("an active directory entry has a session");
        if positions.len() != session.group_size() {
            return Err(SubmitError::WrongGroupSize {
                group_id,
                expected: session.group_size(),
                got: positions.len(),
            });
        }
        if session.is_finished() {
            return Err(SubmitError::Finished(group_id));
        }
        session.submit(positions);
        // Keep the hot mirror current: the next tick's active-set walk must see the queued
        // epoch without asking the session.
        self.shards[shard].hot[slot].pending = session.pending_epochs();
        Ok(())
    }

    /// Drains every session's protocol event log (sessions registered
    /// [`with_events`](GroupSession::with_events)), in shard order, tagged with the group id.
    ///
    /// Sessions without an event log contribute nothing; the
    /// [`MonitoringServer`](crate::server::MonitoringServer) turns these into wire responses
    /// after each tick.
    pub fn drain_events(&mut self) -> Vec<(GroupId, SessionEvent)> {
        let mut drained = Vec::new();
        for shard in &mut self.shards {
            for (entry, slot) in shard.hot.iter().zip(shard.cold.iter_mut()) {
                let Some(session) = slot else { continue };
                for event in session.take_events() {
                    drained.push((entry.id, event));
                }
            }
        }
        drained
    }

    /// Applies one POI world change and recomputes exactly the sessions it can break.
    ///
    /// The change is written into the engine's [`WorldView`] overlay first (bumping the
    /// world generation), then an invalidation pass fans out over the shards on the same
    /// executor path as [`tick`](MonitoringEngine::tick): every registered session evaluates
    /// the break predicate ([`GroupSession::world_change_invalidates`] — a deleted POI that
    /// participates in the answer or the cached §5.4 buffer, or an inserted POI whose
    /// best-case aggregate undercuts the optimum's worst case over the regions) and the
    /// affected sessions are force-recomputed against the new world, re-notifying their
    /// users through the normal metrics / traffic / [`SessionEvent`] path.  Unaffected
    /// sessions are untouched — their safe regions remain provably valid, so they recompute
    /// nothing.
    ///
    /// A delete of an unknown (or already-deleted) id is rejected gracefully: the summary
    /// reports `applied == false` and no session is examined.  After the pass the overlay is
    /// compacted back into the base index when it has outgrown its threshold (content and
    /// generation are preserved, so cached buffers stay valid).
    pub fn apply_world_change(&mut self, change: WorldChange) -> InvalidationSummary {
        let poi = match change {
            WorldChange::PoiInsert { location } => Some(self.world.insert(location)),
            WorldChange::PoiDelete { poi } => self.world.delete(poi).map(|_| poi),
        };
        if poi.is_none() {
            return InvalidationSummary {
                applied: false,
                poi: None,
                generation: self.world.generation(),
                groups_checked: 0,
                invalidated: 0,
                affected: Vec::new(),
                compacted: false,
            };
        }
        assert!(!self.world.is_empty(), "a POI delete may not empty the monitored world");

        let view = match self.cache.as_deref() {
            Some(cache) => self.world.view().with_cache(cache),
            None => self.world.view(),
        };
        let change = &change;
        let occupied: Vec<&mut Shard> =
            self.shards.iter_mut().filter(|s| s.occupancy() > 0).collect();
        let results: Vec<(usize, Vec<GroupId>)> = if occupied.len() <= 1 {
            occupied.into_iter().map(|shard| shard.invalidate_all(view, change)).collect()
        } else if let Some(pool) = &mut self.pool {
            let mut slots: Vec<Option<(usize, Vec<GroupId>)>> = vec![None; occupied.len()];
            pool.scoped(|scope| {
                for (shard, slot) in occupied.into_iter().zip(slots.iter_mut()) {
                    scope.execute(move || *slot = Some(shard.invalidate_all(view, change)));
                }
            });
            slots.into_iter().map(|t| t.expect("the scope barrier ran every job")).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = occupied
                    .into_iter()
                    .map(|shard| scope.spawn(move || shard.invalidate_all(view, change)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("invalidation shard thread panicked"))
                    .collect()
            })
        };

        let mut groups_checked = 0;
        let mut affected = Vec::new();
        for (checked, ids) in results {
            groups_checked += checked;
            affected.extend(ids);
        }
        let generation = self.world.generation();
        let compacted = self.world.maybe_compact();
        InvalidationSummary {
            applied: true,
            poi,
            generation,
            groups_checked,
            invalidated: affected.len(),
            affected,
            compacted,
        }
    }

    /// Inserts a fresh session for `id` on the least-loaded shard, reusing a vacant slot
    /// when that shard has one (so a churning fleet's slabs stay dense instead of growing
    /// without bound).  If the id carries a retired metrics record (it is being reused), the
    /// record is folded into the reclaimed-epochs aggregate so fleet-wide totals never
    /// shrink.
    fn place(&mut self, id: GroupId, session: GroupSession) {
        let shard = self.least_loaded_shard();
        let target = &mut self.shards[shard];
        let entry = HotEntry::new(id, &session);
        target.weight = target.weight.saturating_add(entry.weight);
        let slot = match target.free_slots.pop() {
            Some(slot) => {
                target.hot[slot] = entry;
                target.cold[slot] = Some(session);
                slot
            }
            None => {
                target.hot.push(entry);
                target.cold.push(Some(session));
                target.hot.len() - 1
            }
        };
        #[cfg(debug_assertions)]
        target.check_slab();
        if let DirectoryEntry::Retired(previous) =
            std::mem::replace(&mut self.directory[id], DirectoryEntry::Active { shard, slot })
        {
            self.reclaimed.group_size += previous.group_size;
            self.reclaimed.absorb(&previous);
        }
    }

    /// The shard with the least remaining work — occupancy weighted by remaining horizon,
    /// open-horizon sessions charged [`OPEN_HORIZON_WEIGHT`] (lowest index on ties).
    ///
    /// Reads the incrementally maintained per-shard weight counters, so placement costs
    /// O(shards) per registration regardless of fleet size.
    fn least_loaded_shard(&self) -> usize {
        #[cfg(debug_assertions)]
        for shard in &self.shards {
            debug_assert_eq!(
                shard.weight,
                shard.recompute_weight(),
                "cached shard weight drifted from its sessions"
            );
        }
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(_, shard)| shard.weight)
            .map(|(i, _)| i)
            .expect("an engine always has at least one shard")
    }

    /// Number of currently registered (active) groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.directory.len() - self.free_ids.len()
    }

    /// Number of deregistered groups whose retired metrics are still held.
    #[must_use]
    pub fn retired_count(&self) -> usize {
        self.free_ids.len()
    }

    /// Number of shards ticked in parallel.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The executor advancing live shards on each tick.
    #[must_use]
    pub fn executor(&self) -> TickExecutor {
        self.executor
    }

    /// Number of ticks executed so far.
    #[must_use]
    pub fn clock(&self) -> usize {
        self.clock
    }

    /// The longest horizon over all registered sessions: `Some(max)` when every session is
    /// bounded (0 for an empty fleet), `None` as soon as any registered session has an open
    /// horizon — the fleet then has no finite completion point.
    #[must_use]
    pub fn horizon(&self) -> Option<usize> {
        self.sessions().try_fold(0usize, |acc, s| s.horizon().map(|h| acc.max(h)))
    }

    /// Whether every registered session has consumed its whole bounded horizon.  A fleet
    /// holding any open-horizon streaming session is never finished.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.sessions().all(GroupSession::is_finished)
    }

    /// One coherent snapshot of the whole engine: clock, membership accounting, executor
    /// totals, query-cache counters, per-shard load and the merged fleet metrics — see
    /// [`EngineReport`] for what each field measures.
    ///
    /// This is the read path of the capacity harness, the loadgen examples and any future
    /// tooling; it replaces poking
    /// [`clock`](MonitoringEngine::clock)/[`exec_totals`](MonitoringEngine::exec_totals)/
    /// [`shard_loads`](MonitoringEngine::shard_loads)/[`fleet_metrics`](MonitoringEngine::fleet_metrics)
    /// one by one.  Cost is O(fleet + recorded updates) — snapshot at phase boundaries, not
    /// per tick.
    #[must_use]
    pub fn report(&self) -> EngineReport {
        EngineReport {
            ticks: self.clock,
            groups: self.group_count(),
            retired: self.retired_count(),
            reclaimed_users: self.reclaimed.group_size,
            exec: self.exec_totals,
            cache: self.cache.as_deref().map(QueryCache::stats),
            shards: self.shard_loads(),
            fleet: self.fleet_metrics(),
        }
    }

    /// Per-shard occupancy, idle-tick, starved-tick and remaining-work counters, in shard
    /// order.
    #[must_use]
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardLoad {
                shard,
                occupancy: s.occupancy(),
                live: s.hot.iter().filter(|h| !h.vacant && !h.finished).count(),
                idle_ticks: s.idle_ticks,
                starved_ticks: s.starved_ticks,
                weight: s.weight,
            })
            .collect()
    }

    /// Advances every live session one epoch, one pool worker (or scoped thread) per *live*
    /// shard.
    ///
    /// Shards whose sessions have all finished (or that hold none) are skipped without waking
    /// a worker — their [`idle_ticks`](ShardLoad::idle_ticks) counter is bumped instead — and
    /// a single live shard runs inline, so a winding-down fleet does not pay executor
    /// overhead.  Counters are deterministic: groups are independent, so the summary and all
    /// per-group metrics are identical to a serial replay regardless of shard count and
    /// executor.
    pub fn tick(&mut self) -> TickSummary {
        let cache_before = self.cache.as_deref().map(QueryCache::stats);
        let view = match self.cache.as_deref() {
            Some(cache) => self.world.view().with_cache(cache),
            None => self.world.view(),
        };
        let mut exec = TickExecCounters::default();
        let mut already_finished = 0usize;

        // Single-shard engines (the capacity harness's serial baseline) tick fully inline:
        // no live-shard vector, no tally vector, no executor bookkeeping.  Together with the
        // per-worker query scratch this makes a steady-state warm-cache tick allocate
        // nothing at all (`benches/micro.rs` asserts this under the `bench` feature).
        let tallies: Vec<TickSummary>;
        let mut summary = if self.shards.len() == 1 {
            let shard = &mut self.shards[0];
            if shard.has_live() {
                exec.batches = 1;
                shard.advance_all(view)
            } else {
                shard.idle_ticks += 1;
                already_finished += shard.occupancy();
                TickSummary::default()
            }
        } else {
            let mut live: Vec<&mut Shard> = Vec::with_capacity(self.shards.len());
            for shard in &mut self.shards {
                if shard.has_live() {
                    live.push(shard);
                } else {
                    shard.idle_ticks += 1;
                    already_finished += shard.occupancy();
                }
            }
            let stealing_batch = match self.executor {
                TickExecutor::WorkStealing { batch } => Some(batch.max(1)),
                _ => None,
            };
            tallies = if live.is_empty() {
                Vec::new()
            } else if let (Some(batch), Some(pool)) = (stealing_batch, self.pool.as_mut()) {
                // Work-stealing path: split every live shard into stealable batches of
                // hot/cold slot pairs.  A single live shard deliberately still goes through
                // the pool — that is exactly the skewed case where its batches must spread
                // over idle workers.
                let workers = pool.worker_count();
                let mut chunk_owner: Vec<usize> = Vec::new();
                let mut per_chunk: Vec<Option<(TickSummary, usize)>>;
                {
                    type SlotChunk<'s> = (&'s mut [HotEntry], &'s mut [Option<GroupSession>]);
                    let mut chunks: Vec<SlotChunk<'_>> = Vec::new();
                    for (owner, shard) in live.iter_mut().enumerate() {
                        let Shard { hot, cold, .. } = &mut **shard;
                        for pair in hot.chunks_mut(batch).zip(cold.chunks_mut(batch)) {
                            chunk_owner.push(owner);
                            chunks.push(pair);
                        }
                    }
                    per_chunk = vec![None; chunks.len()];
                    pool.scoped(|scope| {
                        for ((owner, (hot, cold)), slot) in
                            chunk_owner.iter().zip(chunks).zip(per_chunk.iter_mut())
                        {
                            scope.execute_on(owner % workers, move || {
                                *slot = Some(advance_chunk(hot, cold, view));
                            });
                        }
                    });
                }
                let stats = pool.last_scope_stats();
                exec.batches = stats.jobs;
                exec.steals = stats.steals;
                exec.imbalance = stats.imbalance();
                // Merge the chunk tallies back per shard: the shard's weight is the sum over
                // its chunks, and its starved-tick counter looks at the whole-shard tally.
                let mut merged: Vec<(TickSummary, usize)> =
                    vec![(TickSummary::default(), 0); live.len()];
                for (owner, slot) in chunk_owner.into_iter().zip(per_chunk) {
                    let (tally, weight) = slot.expect("the scope barrier ran every job");
                    let (acc, total_weight) = &mut merged[owner];
                    merge_counts(acc, &tally);
                    *total_weight = total_weight.saturating_add(weight);
                }
                merged
                    .into_iter()
                    .zip(live)
                    .map(|((tally, weight), shard)| {
                        shard.weight = weight;
                        shard.note_tick_outcome(&tally);
                        tally
                    })
                    .collect()
            } else if live.len() == 1 {
                exec.batches = 1;
                live.into_iter().map(|shard| shard.advance_all(view)).collect()
            } else if let Some(pool) = &mut self.pool {
                let mut slots: Vec<Option<TickSummary>> = vec![None; live.len()];
                pool.scoped(|scope| {
                    for (shard, slot) in live.into_iter().zip(slots.iter_mut()) {
                        scope.execute(move || *slot = Some(shard.advance_all(view)));
                    }
                });
                let stats = pool.last_scope_stats();
                exec.batches = stats.jobs;
                exec.steals = stats.steals;
                exec.imbalance = stats.imbalance();
                slots.into_iter().map(|t| t.expect("the scope barrier ran every job")).collect()
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = live
                        .into_iter()
                        .map(|shard| scope.spawn(move || shard.advance_all(view)))
                        .collect();
                    exec.batches = handles.len();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("monitoring shard thread panicked"))
                        .collect()
                })
            };
            tallies.into_iter().fold(TickSummary::default(), |mut acc, t| {
                merge_counts(&mut acc, &t);
                acc
            })
        };
        if let (Some(before), Some(cache)) = (cache_before, self.cache.as_deref()) {
            let delta = cache.stats().since(&before);
            exec.cache_hits = delta.hits;
            exec.cache_misses = delta.misses;
        }
        summary.exec = exec;
        self.exec_totals.absorb(&summary.exec);
        summary.finished += already_finished;
        summary.retired = self.retired_count();
        summary.tick = self.clock;
        self.clock += 1;
        summary
    }

    /// Ticks until every session has consumed its whole horizon; returns the tick count.
    ///
    /// This is a replay-fleet driver: every session must have a **bounded** horizon (an
    /// open-horizon streaming session never finishes) and epochs to consume on every tick
    /// (a feed, or pre-[`submit`](MonitoringEngine::submit)ted batches covering the
    /// horizon).
    ///
    /// # Panics
    /// Panics when a registered session has an open horizon, or when a tick makes no
    /// progress because every unfinished session starved — both would otherwise loop
    /// forever.
    pub fn run_to_completion(&mut self) -> usize {
        assert!(
            self.horizon().is_some(),
            "run_to_completion requires bounded horizons; open-horizon streaming sessions \
             only leave the fleet via deregister"
        );
        let mut ticks = 0;
        while !self.is_finished() {
            let summary = self.tick();
            ticks += 1;
            assert!(
                summary.advanced > 0 || self.is_finished(),
                "run_to_completion stalled: every unfinished session starved (no feed and no \
                 submitted epochs)"
            );
        }
        ticks
    }

    /// The session of one group.
    ///
    /// # Panics
    /// Panics on an unknown or deregistered id.
    #[must_use]
    pub fn group(&self, id: GroupId) -> &GroupSession {
        match &self.directory[id] {
            DirectoryEntry::Active { shard, slot } => self.shards[*shard].cold[*slot]
                .as_ref()
                .expect("the directory never points at a vacant slot"),
            DirectoryEntry::Retired(_) => panic!("group {id} has been deregistered"),
        }
    }

    /// The metrics of one group accumulated so far — a live group's running counters, or the
    /// retained record of a deregistered one.
    ///
    /// # Panics
    /// Panics on an unknown id.
    #[must_use]
    pub fn group_metrics(&self, id: GroupId) -> &MonitoringMetrics {
        match &self.directory[id] {
            DirectoryEntry::Active { shard, slot } => self.shards[*shard].cold[*slot]
                .as_ref()
                .expect("the directory never points at a vacant slot")
                .metrics(),
            DirectoryEntry::Retired(metrics) => metrics,
        }
    }

    /// Aggregate metrics of past epochs whose ids have been reused by
    /// [`register`](MonitoringEngine::register) / [`rejoin`](MonitoringEngine::rejoin): no
    /// longer attributable to a live id, but still part of the fleet's lifetime totals.
    #[must_use]
    pub fn reclaimed_metrics(&self) -> &MonitoringMetrics {
        &self.reclaimed
    }

    /// Fleet-wide metrics: every group's counters merged into one record, **including** the
    /// retained metrics of deregistered groups and the reclaimed epochs of reused ids (a
    /// long-lived server's totals must not shrink when a group leaves or its id is recycled).
    ///
    /// `group_size` is the total number of monitored users over the fleet's lifetime (each
    /// epoch of a churning group counts its users once).  Retained records are compacted, so
    /// compute-time *percentiles* of the merged record reflect only live sessions; all
    /// totals and means cover everything.
    #[must_use]
    pub fn fleet_metrics(&self) -> MonitoringMetrics {
        let retired = self.directory.iter().filter_map(|entry| match entry {
            DirectoryEntry::Retired(metrics) => Some(&**metrics),
            DirectoryEntry::Active { .. } => None,
        });
        let users = self.sessions().map(GroupSession::group_size).sum::<usize>()
            + retired.clone().map(|m| m.group_size).sum::<usize>()
            + self.reclaimed.group_size;
        let mut fleet = MonitoringMetrics::new(users);
        for session in self.sessions() {
            fleet.absorb(session.metrics());
        }
        for metrics in retired {
            fleet.absorb(metrics);
        }
        fleet.absorb(&self.reclaimed);
        fleet
    }

    /// Consumes the engine, returning every group's metrics by id (registration order):
    /// live sessions' accumulated counters plus the retained records of deregistered groups.
    /// Earlier epochs of reused ids are not per-id attributable — read them off
    /// [`reclaimed_metrics`](MonitoringEngine::reclaimed_metrics) before consuming the
    /// engine.
    #[must_use]
    pub fn into_group_metrics(mut self) -> Vec<MonitoringMetrics> {
        // `mem::take` instead of destructuring: the engine implements `Drop` (worker-pool
        // shutdown), so fields cannot be moved out of `self` directly.
        let shards = std::mem::take(&mut self.shards);
        let directory = std::mem::take(&mut self.directory);
        let mut by_id: Vec<Option<MonitoringMetrics>> = directory
            .into_iter()
            .map(|entry| match entry {
                DirectoryEntry::Retired(metrics) => Some(*metrics),
                DirectoryEntry::Active { .. } => None,
            })
            .collect();
        for shard in shards {
            for (entry, slot) in shard.hot.into_iter().zip(shard.cold) {
                if let Some(session) = slot {
                    by_id[entry.id] = Some(session.into_metrics());
                }
            }
        }
        by_id
            .into_iter()
            .map(|m| m.expect("every directory entry is either active or retired"))
            .collect()
    }

    fn sessions(&self) -> impl Iterator<Item = &GroupSession> {
        self.shards.iter().flat_map(|shard| shard.cold.iter().filter_map(Option::as_ref))
    }
}

impl Drop for MonitoringEngine {
    /// Shuts the worker pool down; in debug builds, asserts every worker joined cleanly (a
    /// hung or panicked worker here means a pool shutdown bug — surface it in tests rather
    /// than leaking threads).
    fn drop(&mut self) {
        if let Some(pool) = &mut self.pool {
            let clean = pool.shutdown();
            debug_assert!(clean, "monitoring engine dropped with unclean pool workers");
            debug_assert!(pool.is_shut_down(), "pool shutdown must join every worker");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::run_monitoring;
    use mpn_core::{Method, Objective};
    use mpn_mobility::poi::{clustered_pois, PoiConfig};
    use mpn_mobility::waypoint::{random_waypoint, WaypointConfig};
    use mpn_mobility::Trajectory;

    fn world(groups: usize) -> (Arc<RTree>, Vec<Vec<Trajectory>>) {
        let pois =
            clustered_pois(&PoiConfig { count: 700, domain: 1000.0, ..PoiConfig::default() }, 5);
        let tree = Arc::new(RTree::bulk_load(&pois));
        let config = WaypointConfig { domain: 1000.0, speed_limit: 6.0, timestamps: 120 };
        let fleet = (0..groups)
            .map(|g| (0..3).map(|i| random_waypoint(&config, (g * 13 + i) as u64)).collect())
            .collect();
        (tree, fleet)
    }

    fn feed(group: &[Trajectory]) -> TrajectoryFeed {
        TrajectoryFeed::from_group(group)
    }

    #[test]
    fn parallel_ticks_match_serial_replays() {
        let (tree, fleet) = world(6);
        let config = MonitorConfig::new(Objective::Max, Method::tile()).with_max_timestamps(80);

        let serial: Vec<_> = fleet.iter().map(|g| run_monitoring(&tree, g, &config)).collect();

        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 4);
        for group in &fleet {
            engine.register(feed(group), config);
        }
        let ticks = engine.run_to_completion();
        assert_eq!(ticks, 80, "80-timestamp horizon takes 80 ticks");
        let parallel = engine.into_group_metrics();

        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.updates, s.updates);
            assert_eq!(p.timestamps, s.timestamps);
            assert_eq!(p.traffic, s.traffic);
            assert_eq!(p.stats, s.stats);
        }
    }

    #[test]
    fn tick_summaries_account_for_every_session() {
        let (tree, fleet) = world(5);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(40);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        for group in &fleet {
            engine.register(feed(group), config);
        }
        assert_eq!(engine.group_count(), 5);
        assert_eq!(engine.horizon(), Some(40));

        let first = engine.tick();
        assert_eq!(first.tick, 0);
        assert_eq!(first.registered, 5, "first tick registers every group");
        assert_eq!(first.advanced, 5);
        assert_eq!(first.starved, 0, "replay feeds cover their horizon");

        let second = engine.tick();
        assert_eq!(second.tick, 1);
        assert_eq!(second.registered, 0);
        assert_eq!(second.advanced, 5);

        engine.run_to_completion();
        assert!(engine.is_finished());
        let summary = engine.tick();
        assert_eq!(summary.advanced, 0, "finished sessions do not advance");
        assert_eq!(summary.finished, 5);
        assert_eq!(summary.retired, 0);
    }

    #[test]
    fn fleet_metrics_merge_all_groups() {
        let (tree, fleet) = world(3);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(30);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 8);
        for group in &fleet {
            engine.register(feed(group), config);
        }
        engine.run_to_completion();
        let fleet_metrics = engine.fleet_metrics();
        assert_eq!(fleet_metrics.group_size, 9, "3 groups of 3 users");
        assert_eq!(fleet_metrics.timestamps, 3 * 29);
        let per_group: usize = (0..3).map(|id| engine.group_metrics(id).updates).sum();
        assert_eq!(fleet_metrics.updates, per_group);
    }

    #[test]
    fn heterogeneous_sessions_coexist() {
        let (tree, fleet) = world(2);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 3);
        let a = engine.register(
            feed(&fleet[0]),
            MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(20),
        );
        let b = engine.register(
            feed(&fleet[1]),
            MonitorConfig::new(Objective::Sum, Method::tile()).with_max_timestamps(50),
        );
        engine.run_to_completion();
        assert_eq!(engine.group_metrics(a).timestamps, 19);
        assert_eq!(engine.group_metrics(b).timestamps, 49);
        assert_eq!(engine.group(a).config().method.name(), "Circle");
        assert_eq!(engine.group(b).config().method.name(), "Tile");
    }

    #[test]
    fn late_registration_starts_from_the_groups_own_clock() {
        let (tree, fleet) = world(2);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(25);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        engine.register(feed(&fleet[0]), config);
        engine.tick();
        engine.tick();
        let late = engine.register(feed(&fleet[1]), config);
        let summary = engine.tick();
        assert_eq!(summary.registered, 1, "the late group registers on its first tick");
        engine.run_to_completion();
        assert_eq!(engine.group_metrics(late).timestamps, 24, "late groups replay fully");
    }

    #[test]
    fn deregistered_groups_keep_their_metrics_and_free_their_ids() {
        let (tree, fleet) = world(4);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(30);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        let ids: Vec<_> = fleet.iter().map(|g| engine.register(feed(g), config)).collect();
        for _ in 0..10 {
            engine.tick();
        }

        let departed = engine.deregister(ids[1]).expect("group 1 is registered");
        assert_eq!(departed.timestamps, 9, "10 ticks = registration + 9 monitored timestamps");
        assert_eq!(engine.group_count(), 3);
        assert_eq!(engine.retired_count(), 1);
        assert!(engine.deregister(ids[1]).is_none(), "deregistration is idempotent");
        // The retained record stays readable and feeds fleet accounting; it is compacted
        // (scalar totals only) while the returned record keeps the raw samples.
        assert_eq!(engine.group_metrics(ids[1]).timestamps, 9);
        assert_eq!(engine.group_metrics(ids[1]).updates, departed.updates);
        assert!(engine.group_metrics(ids[1]).update_times.is_empty());
        assert_eq!(departed.update_times.len(), departed.updates);
        assert!(engine.fleet_metrics().group_size >= departed.group_size);
        let fleet_before_reuse = engine.fleet_metrics();

        // The freed id is reused by the next registration; the old epoch moves into the
        // reclaimed aggregate so fleet totals never shrink.
        let reused = engine.register(feed(&fleet[1]), config);
        assert_eq!(reused, ids[1]);
        assert_eq!(engine.group_count(), 4);
        assert_eq!(engine.retired_count(), 0);
        assert_eq!(engine.reclaimed_metrics().updates, departed.updates);
        assert_eq!(engine.reclaimed_metrics().group_size, departed.group_size);
        let fleet_after_reuse = engine.fleet_metrics();
        assert_eq!(fleet_after_reuse.updates, fleet_before_reuse.updates);
        assert_eq!(fleet_after_reuse.group_size, fleet_before_reuse.group_size + 3);

        engine.run_to_completion();
        let all = engine.into_group_metrics();
        assert_eq!(all.len(), 4);
        assert_eq!(all[ids[1]].timestamps, 29, "the rejoined epoch replays its full horizon");
    }

    #[test]
    fn rejecting_an_empty_group_leaves_the_bookkeeping_intact() {
        let (tree, fleet) = world(1);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(10);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        engine.register(feed(&fleet[0]), config);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.register(TrajectoryFeed::from_group(&[]), config);
        }));
        assert!(panicked.is_err(), "empty groups are rejected");
        assert_eq!(engine.group_count(), 1, "the failed registration left no trace");
        assert_eq!(engine.retired_count(), 0);
        engine.run_to_completion();
        assert_eq!(engine.into_group_metrics().len(), 1);
    }

    #[test]
    fn rejoin_requires_a_freed_id_and_restarts_the_group() {
        let (tree, fleet) = world(2);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(20);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        let id = engine.register(feed(&fleet[0]), config);
        for _ in 0..5 {
            engine.tick();
        }
        engine.deregister(id).unwrap();
        let back = engine.rejoin(id, feed(&fleet[0]), config);
        assert_eq!(back, id);
        let summary = engine.tick();
        assert_eq!(summary.registered, 1, "a rejoined group re-registers on its next tick");
        engine.run_to_completion();
        assert_eq!(engine.group_metrics(id).timestamps, 19, "the new epoch starts from t = 0");
    }

    #[test]
    fn registration_fills_the_least_loaded_shard() {
        let (tree, fleet) = world(6);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(10);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 3);
        let ids: Vec<_> = fleet.iter().map(|g| engine.register(feed(g), config)).collect();
        let loads = engine.shard_loads();
        assert!(loads.iter().all(|l| l.occupancy == 2), "6 groups spread 2-2-2 over 3 shards");
        assert!(loads.iter().all(|l| l.weight == 20), "2 sessions x 10 remaining epochs");

        // Empty one shard, then register twice: both go to the emptied shard.
        engine.deregister(ids[0]).unwrap();
        engine.deregister(ids[3]).unwrap();
        let loads = engine.shard_loads();
        assert_eq!(loads[0].occupancy, 0, "ids 0 and 3 both lived on shard 0");
        let a = engine.register(feed(&fleet[0]), config);
        let b = engine.register(feed(&fleet[3]), config);
        let loads = engine.shard_loads();
        assert_eq!(loads[0].occupancy, 2, "both replacements fill the emptied shard");
        assert!(a != b);
    }

    #[test]
    fn placement_weights_occupancy_by_remaining_horizon() {
        let (tree, fleet) = world(3);
        let long = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(100);
        let short = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(10);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        // One long session lands on shard 0; five short sessions (50 epochs of total work)
        // are still lighter than it, so they all pile onto shard 1 — occupancy-only
        // placement would have alternated.
        engine.register(feed(&fleet[0]), long);
        for _ in 0..5 {
            engine.register(feed(&fleet[1]), short);
        }
        let loads = engine.shard_loads();
        assert_eq!(loads[0].occupancy, 1);
        assert_eq!(loads[1].occupancy, 5);
        assert_eq!(loads[0].weight, 100);
        assert_eq!(loads[1].weight, 50);
        // The sixth short session tips shard 1 to 60 — still the lighter shard.
        engine.register(feed(&fleet[2]), short);
        assert_eq!(engine.shard_loads()[1].occupancy, 6);

        // An open-horizon stream outweighs any bounded replay.
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        engine.register_stream(3, MonitorConfig::new(Objective::Max, Method::circle()));
        let loads = engine.shard_loads();
        assert_eq!(loads[0].weight, OPEN_HORIZON_WEIGHT);
        for _ in 0..4 {
            engine.register(feed(&fleet[0]), long);
        }
        let loads = engine.shard_loads();
        assert_eq!(loads[0].occupancy, 1, "bounded sessions avoid the stream's shard");
        assert_eq!(loads[1].occupancy, 4);
    }

    #[test]
    fn idle_shards_are_skipped_and_counted() {
        let (tree, fleet) = world(2);
        let short = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(5);
        let long = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(15);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        engine.register(feed(&fleet[0]), short);
        engine.register(feed(&fleet[1]), long);
        engine.run_to_completion();
        let loads = engine.shard_loads();
        assert_eq!(loads[0].idle_ticks, 10, "the short group's shard idles for 10 ticks");
        assert_eq!(loads[1].idle_ticks, 0);
        assert_eq!(loads[0].live, 0);
        assert_eq!(loads[0].weight, 0, "a finished shard has no remaining work");
    }

    #[test]
    fn submitted_epochs_drive_streaming_sessions_through_ticks() {
        let (tree, fleet) = world(2);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(30);
        let replay = run_monitoring(&tree, &fleet[0], &config);

        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        let id = engine.register_stream(fleet[0].len(), config);
        assert_eq!(engine.horizon(), Some(30), "a capped stream is bounded");

        let mut source = TrajectoryFeed::from_group(&fleet[0]);
        for tick in 0..30 {
            let positions = source.next_epoch().expect("the recording covers the horizon");
            engine.submit(EpochUpdate { group_id: id, positions }).expect("live group");
            let summary = engine.tick();
            assert_eq!(summary.advanced, 1);
            assert_eq!(summary.starved, 0);
            assert_eq!(summary.registered, usize::from(tick == 0));
        }
        assert!(engine.is_finished());
        assert_eq!(engine.group_metrics(id).updates, replay.updates);
        assert_eq!(engine.group_metrics(id).traffic, replay.traffic);
        assert_eq!(engine.group_metrics(id).stats, replay.stats);
    }

    #[test]
    fn starved_streams_are_counted_but_do_not_advance() {
        let (tree, fleet) = world(1);
        let config = MonitorConfig::new(Objective::Max, Method::circle());
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        let id = engine.register_stream(3, config);
        assert_eq!(engine.horizon(), None, "an uncapped stream has an open horizon");
        assert!(!engine.is_finished(), "open-horizon fleets are never finished");

        let summary = engine.tick();
        assert_eq!(summary.starved, 1);
        assert_eq!(summary.advanced, 0);
        assert_eq!(summary.finished, 0, "open-horizon sessions never count as finished");

        let positions: Vec<Point> = fleet[0].iter().map(|t| t.at(0)).collect();
        engine.submit(EpochUpdate { group_id: id, positions }).unwrap();
        let summary = engine.tick();
        assert_eq!(summary.registered, 1);
        assert_eq!(summary.starved, 0);
        assert_eq!(engine.group_metrics(id).updates, 1);
    }

    #[test]
    fn submit_rejects_unknown_groups_and_bad_batches() {
        let (tree, fleet) = world(1);
        let config = MonitorConfig::new(Objective::Max, Method::circle());
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        let id = engine.register_stream(3, config);

        let bad = engine.submit(EpochUpdate { group_id: 99, positions: vec![Point::ORIGIN; 3] });
        assert_eq!(bad, Err(SubmitError::UnknownGroup(99)));
        let bad = engine.submit(EpochUpdate { group_id: id, positions: vec![Point::ORIGIN] });
        assert_eq!(bad, Err(SubmitError::WrongGroupSize { group_id: id, expected: 3, got: 1 }));

        engine.deregister(id).unwrap();
        let positions: Vec<Point> = fleet[0].iter().map(|t| t.at(0)).collect();
        let bad = engine.submit(EpochUpdate { group_id: id, positions });
        assert_eq!(bad, Err(SubmitError::UnknownGroup(id)), "deregistered ids reject updates");

        // A bounded stream past its horizon rejects further epochs instead of queueing them
        // forever (its inbox would never be drained again).
        let capped = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(2);
        let done = engine.register_stream(3, capped);
        for _ in 0..2 {
            let positions: Vec<Point> = fleet[0].iter().map(|t| t.at(0)).collect();
            engine.submit(EpochUpdate { group_id: done, positions }).unwrap();
            engine.tick();
        }
        assert!(engine.group(done).is_finished());
        let positions: Vec<Point> = fleet[0].iter().map(|t| t.at(0)).collect();
        let bad = engine.submit(EpochUpdate { group_id: done, positions });
        assert_eq!(bad, Err(SubmitError::Finished(done)));
        assert_eq!(engine.group(done).pending_epochs(), 0, "nothing was queued");
    }

    #[test]
    fn run_to_completion_rejects_open_horizons() {
        let (tree, _) = world(1);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        engine.register_stream(3, MonitorConfig::new(Objective::Max, Method::circle()));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_to_completion();
        }));
        assert!(panicked.is_err(), "an open-horizon fleet can never run to completion");
    }

    #[test]
    fn drain_events_tags_session_events_with_group_ids() {
        let (tree, fleet) = world(2);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(20);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 2);
        let silent = engine.register(feed(&fleet[0]), config);
        let logged = engine
            .register_session(GroupSession::replay(feed(&fleet[1]), config).with_events(true));
        engine.tick();
        let events = engine.drain_events();
        assert!(events.iter().all(|(id, _)| *id == logged), "only logged sessions emit");
        assert_eq!(
            events.len(),
            engine.group(logged).group_size(),
            "registration assigns every user"
        );
        assert!(events.iter().any(|(_, e)| matches!(e, SessionEvent::Assigned { .. })));
        let _ = silent;
        assert!(engine.drain_events().is_empty(), "draining is destructive");
    }

    #[test]
    fn scoped_thread_executor_is_still_available() {
        let (tree, fleet) = world(4);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(25);
        let mut engine =
            MonitoringEngine::with_executor(Arc::clone(&tree), 4, TickExecutor::ScopedThreads);
        assert_eq!(engine.executor(), TickExecutor::ScopedThreads);
        for group in &fleet {
            engine.register(feed(group), config);
        }
        engine.run_to_completion();
        for (id, group) in fleet.iter().enumerate() {
            let serial = run_monitoring(&tree, group, &config);
            assert_eq!(engine.group_metrics(id).updates, serial.updates);
        }
    }

    #[test]
    fn engine_shutdown_joins_the_pool_workers() {
        let (tree, fleet) = world(4);
        let config = MonitorConfig::new(Objective::Max, Method::circle()).with_max_timestamps(10);
        let mut engine = MonitoringEngine::new(Arc::clone(&tree), 4);
        for group in &fleet {
            engine.register(feed(group), config);
        }
        engine.tick();
        engine.tick();
        // Dropping mid-run must join the parked workers promptly (a hang here shows up as a
        // timeout under `cargo test -- --test-threads=1`); the debug assertions in `Drop`
        // check the workers exited cleanly.
        drop(engine);

        // An engine that never ticked in parallel (single shard: no pool) also drops cleanly.
        let mut serial = MonitoringEngine::new(Arc::clone(&tree), 1);
        serial.register(feed(&fleet[0]), config);
        serial.run_to_completion();
        drop(serial);
    }
}
